"""Figure 18 — aggregation compute/communication tradeoff over beta.

Paper reference: for many topologies some beta attains both normalized
LoadCost and CommCost below ~40% of their maxima (curves bow toward
the origin).
"""

from repro.experiments import format_fig18, run_fig18


def test_fig18_beta_tradeoff(benchmark, save_result):
    series = benchmark.pedantic(run_fig18, iterations=1, rounds=1)
    save_result("fig18_beta_tradeoff", format_fig18(series))
    good = 0
    for s in series:
        load, comm = s.best_point()
        # The curve always beats the corners.
        assert load < 1.0 + 1e-9
        assert comm < 1.0 + 1e-9
        if load < 0.7 and comm < 0.7:
            good += 1
        # Monotone tradeoff along the sweep (up to solver noise).
        assert all(b >= a - 1e-6
                   for a, b in zip(s.load_costs, s.load_costs[1:]))
        assert all(b <= a * (1 + 1e-9) + 1e-6
                   for a, b in zip(s.comm_costs, s.comm_costs[1:]))
    # "For many topologies" both costs drop well below their maxima.
    assert good >= len(series) // 2
