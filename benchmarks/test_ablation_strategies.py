"""Ablation — the Figure 8 split strategies at trace scale.

Paper reference: the source-level split is both correct and
communication-minimal; flow-level must ship full tuples to avoid
over-counting; destination-level is correct but reports one row per
(node, source).
"""

from repro.experiments import format_strategies, run_strategy_ablation
from repro.nids.aggregator import SplitStrategy


def test_ablation_split_strategies(benchmark, save_result):
    rows = benchmark.pedantic(run_strategy_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_strategies", format_strategies(rows))
    by = {r.strategy: r for r in rows}
    # Correctness: all three strategies flag identical scanners.
    alerts = {r.alerts for r in rows}
    assert len(alerts) == 1
    assert len(rows[0].alerts) >= 1  # the injected scanners are found
    # Cost ordering: source-level ships the least data.
    source = by[SplitStrategy.SOURCE_LEVEL]
    flow = by[SplitStrategy.FLOW_LEVEL]
    dest = by[SplitStrategy.DESTINATION_LEVEL]
    assert source.encoded_byte_hops <= flow.encoded_byte_hops
    assert source.encoded_byte_hops <= dest.encoded_byte_hops
    assert source.record_hops <= dest.record_hops
