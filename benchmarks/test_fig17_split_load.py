"""Figure 17 — max compute load vs forward/reverse route overlap.

Paper reference: Ingress-only shows deceptively low load (it ignores
most traffic); the DC architecture's load is highest at low-to-mid
overlap where the link budget constrains offloading, then falls; the
path-only architecture pays a high load to squeeze coverage out of the
few common nodes.
"""

from repro.experiments import format_fig17


def test_fig17_split_load(benchmark, save_result, asymmetry_points):
    result = benchmark.pedantic(lambda: asymmetry_points,
                                iterations=1, rounds=1)
    save_result("fig17_split_load", format_fig17(result))
    by = {(p.config, p.theta): p for p in result}
    thetas = sorted({p.theta for p in result})
    low, high = thetas[0], thetas[-1]
    # Path-only pays the concentration penalty at low overlap.
    assert by[("path", low)].max_load > by[("path", high)].max_load
    # The DC architecture stays cheaper than path-only at low overlap.
    assert by[("dc-0.4", low)].max_load < by[("path", low)].max_load
    # Ingress load grows with overlap (it observes more reverse
    # traffic), reaching its calibrated ceiling of ~1.
    assert by[("ingress", high)].max_load <= 1.0 + 1e-6
    assert by[("ingress", low)].max_load <= \
        by[("ingress", high)].max_load + 1e-9
