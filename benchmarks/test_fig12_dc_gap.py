"""Figure 12 — DCLoad minus MaxNIDSLoad across four configurations.

Paper reference: at MaxLinkLoad 0.1 with a 10x DC the datacenter is
underutilized (strongly negative gap); at 0.4 or with a 2x DC the gap
closes to ~zero (the DC is as stressed as the busiest interior node).
"""

from repro.experiments import format_fig12, run_fig12


def test_fig12_dc_gap(benchmark, save_result):
    rows = benchmark.pedantic(run_fig12, iterations=1, rounds=1)
    save_result("fig12_dc_gap", format_fig12(rows))
    for row in rows:
        # The DC never exceeds the interior max by more than noise.
        assert all(gap <= 1e-6 for gap in row.gaps.values())
        # Underutilization is worst at (low budget, big DC).
        starved = row.gaps[(0.1, 10.0)]
        fed = row.gaps[(0.4, 10.0)]
        assert fed >= starved - 1e-9
    # At (0.4, 2x) the small DC saturates (gap ~ 0) on most topologies.
    near_zero = sum(1 for row in rows
                    if row.gaps[(0.4, 2.0)] > -0.05)
    assert near_zero >= len(rows) // 2
