"""Figure 10 — per-node work in the emulated Internet2 deployment.

Paper reference: with a DC at 8x capacity and MaxLinkLoad 0.4,
replication cuts the maximally loaded non-DC node's CPU usage ~2x vs
pure on-path distribution, and the emulated result matches the LP
(trace-driven) prediction.
"""

from repro.experiments import format_fig10, run_fig10
from repro.experiments.common import full_scale


def test_fig10_emulated_internet2(benchmark, save_result):
    sessions = 20_000 if full_scale() else 4_000
    result = benchmark.pedantic(
        run_fig10, kwargs={"total_sessions": sessions},
        iterations=1, rounds=1)
    save_result("fig10_emulation", format_fig10(result))
    assert result.max_work_reduction() > 1.3
    # Replication must not lose detections: the same trace yields at
    # least as many signature alerts (every packet still inspected).
    assert result.alerts_replicate == result.alerts_no_replicate
