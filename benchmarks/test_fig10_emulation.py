"""Figure 10 — per-node work in the emulated Internet2 deployment.

Paper reference: with a DC at 8x capacity and MaxLinkLoad 0.4,
replication cuts the maximally loaded non-DC node's CPU usage ~2x vs
pure on-path distribution, and the emulated result matches the LP
(trace-driven) prediction.
"""

import pathlib
import re

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments import format_fig10, run_fig10
from repro.experiments.common import full_scale, setup_topology
from repro.simulation.metrics import (
    predicted_work_shares,
    share_rms,
    work_shares,
)

RECORDED = pathlib.Path(__file__).parent / "results" / \
    "fig10_emulation.txt"


@pytest.fixture(scope="module")
def fig10_result():
    sessions = 20_000 if full_scale() else 4_000
    return run_fig10(total_sessions=sessions)


def test_fig10_emulated_internet2(benchmark, save_result,
                                  fig10_result):
    # Time a small re-run for the throughput record; the assertions
    # use the module-scoped full result.
    benchmark.pedantic(run_fig10, kwargs={"total_sessions": 500},
                       iterations=1, rounds=1)
    save_result("fig10_emulation", format_fig10(fig10_result))
    assert fig10_result.max_work_reduction() > 1.3
    # Replication must not lose detections: the same trace yields at
    # least as many signature alerts (every packet still inspected).
    assert fig10_result.alerts_replicate == \
        fig10_result.alerts_no_replicate


def _recorded_replicate_work():
    """Parse the per-node Path,Replicate work column out of the
    committed benchmark record."""
    work = {}
    for line in RECORDED.read_text().splitlines():
        match = re.match(r"^(\w+)\s+(\d+)\s+(\d+)\s*$", line)
        if match:
            work[match.group(1)] = float(match.group(3))
    return work


def test_fig10_lp_agreement_no_worse_than_recorded(fig10_result):
    """Pin the emulation/LP agreement: RMS error between emulated and
    LP-predicted work shares must stay at or under the agreement in
    the committed ``fig10_emulation.txt`` record (small slack for
    trace-size differences)."""
    recorded_work = _recorded_replicate_work()
    assert len(recorded_work) >= 12, "could not parse recorded table"

    state = setup_topology("internet2", dc_capacity_factor=8.0).state
    lp = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    predicted = predicted_work_shares(state, lp)

    recorded_rms = share_rms(work_shares(recorded_work), predicted)
    fresh_rms = share_rms(work_shares(fig10_result.work_replicate),
                          predicted)
    assert fresh_rms <= recorded_rms * 1.25 + 0.005, (
        f"emulation/LP agreement regressed: RMS {fresh_rms:.5f} vs "
        f"recorded {recorded_rms:.5f}")
    # Absolute sanity bound: shares agree to within a few percent.
    assert fresh_rms < 0.05
