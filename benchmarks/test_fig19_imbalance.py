"""Figure 19 — max/average load ratio with vs without aggregation.

Paper reference: aggregation reduces the load imbalance substantially
— up to 2.7x — compared with ingress-constrained Scan detection.
"""

from repro.experiments import format_fig19, run_fig19


def test_fig19_load_imbalance(benchmark, save_result):
    rows = benchmark.pedantic(run_fig19, iterations=1, rounds=1)
    save_result("fig19_imbalance", format_fig19(rows))
    for row in rows:
        assert row.improvement >= 1.0 - 1e-9
    # Substantial reduction on the best topology.
    assert max(row.improvement for row in rows) > 1.5
