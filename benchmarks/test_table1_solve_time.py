"""Table 1 — LP solve time for replication and aggregation.

Paper reference (CPLEX, 2012 hardware): replication 0.05s (Internet2)
to 1.59s (NTT); aggregation 0.01-0.11s. The reproduction should land in
the same order of magnitude with HiGHS.
"""

from repro.experiments import format_table1, run_table1
from repro.topology import builtin_topology_names


def test_table1_solve_times(benchmark, save_result):
    rows = benchmark.pedantic(
        run_table1, kwargs={"topologies": builtin_topology_names()},
        iterations=1, rounds=1)
    save_result("table1_solve_time", format_table1(rows))
    # The paper's headline: recomputation is well within reconfiguration
    # timescales (minutes); assert a generous ceiling.
    assert all(r.replication_solve_s < 60.0 for r in rows)
    assert all(r.aggregation_solve_s < 60.0 for r in rows)
    # Aggregation LPs are smaller and solve faster than replication.
    totals = [(r.aggregation_solve_s, r.replication_solve_s)
              for r in rows]
    faster = sum(1 for agg, rep in totals if agg <= rep)
    assert faster >= len(rows) - 1
