"""Ablation benches for the Section 9 extensions.

These cover the design points the paper discusses without evaluating:
slack provisioning, the soft piecewise link cost, NIPS rerouting, and
the combined replication+aggregation formulation.
"""

from repro.experiments import (
    format_combined,
    format_link_cost,
    format_nips,
    format_slack,
    run_combined_ablation,
    run_link_cost_ablation,
    run_nips_ablation,
    run_slack_ablation,
)


def test_ablation_slack_provisioning(benchmark, save_result):
    rows = benchmark.pedantic(run_slack_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_slack", format_slack(rows))
    for row in rows:
        # Slack provisioning never has a worse worst case.
        assert row.improvement >= 1.0 - 1e-9


def test_ablation_piecewise_link_cost(benchmark, save_result):
    rows = benchmark.pedantic(run_link_cost_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_link_cost", format_link_cost(rows))
    for row in rows:
        # The soft penalty trades a bit of link headroom for load:
        # load must not exceed the hard variant's by much, and links
        # stay out of the congestion regime (< 1).
        assert row.soft_load <= row.hard_load + 0.15
        assert row.soft_worst_link < 1.0


def test_ablation_nips_rerouting(benchmark, save_result):
    rows = benchmark.pedantic(run_nips_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_nips", format_nips(rows))
    for row in rows:
        budgets = sorted(row.nips_loads)
        loads = [row.nips_loads[b] for b in budgets]
        # Looser latency budgets never hurt.
        assert all(b <= a + 1e-9 for a, b in zip(loads, loads[1:]))
        # NIPS can never beat NIDS replication (rerouting is a
        # restriction: it must respect latency and link conservation).
        assert min(loads) >= row.nids_load - 1e-6


def test_ablation_combined_formulation(benchmark, save_result):
    rows = benchmark.pedantic(run_combined_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_combined", format_combined(rows))
    for row in rows:
        # Strict generalization of Figure 9.
        assert row.combined_objective <= row.pure_objective + 1e-9
        assert row.combined_load <= row.pure_load + 1e-9
