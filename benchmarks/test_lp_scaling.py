"""LP build/solve microbenchmarks (repeated-timing companions to
Table 1's one-shot measurements)."""

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments.common import setup_topology


@pytest.fixture(scope="module")
def internet2_state():
    return setup_topology("internet2", dc_capacity_factor=10.0).state


def test_replication_model_build(benchmark, internet2_state):
    def build():
        problem = ReplicationProblem(
            internet2_state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4)
        return problem.build_model()

    model = benchmark(build)
    assert model.num_variables > 0


def test_replication_solve(benchmark, internet2_state):
    def solve():
        return ReplicationProblem(
            internet2_state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()

    result = benchmark(solve)
    assert result.load_cost < 1.0
