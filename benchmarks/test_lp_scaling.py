"""LP build/solve microbenchmarks (repeated-timing companions to
Table 1's one-shot measurements)."""

import json
import pathlib
import time

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments.common import setup_topology

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def internet2_state():
    return setup_topology("internet2", dc_capacity_factor=10.0).state


def test_replication_model_build(benchmark, internet2_state):
    def build():
        problem = ReplicationProblem(
            internet2_state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4)
        return problem.build_model()

    model = benchmark(build)
    assert model.num_variables > 0


def test_replication_solve(benchmark, internet2_state):
    def solve():
        return ReplicationProblem(
            internet2_state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()

    result = benchmark(solve)
    assert result.load_cost < 1.0


def test_resolve_warm_vs_cold():
    """Incremental re-solve must beat a cold build+solve by >= 2x.

    Uses the largest evaluation topology (tinet, ~11.5k variables) —
    the instance where the Figure 11 sweep actually spends its time —
    and records the measured speedup as a JSON artifact so CI can
    archive the trend.
    """
    state = setup_topology("tinet", dc_capacity_factor=10.0).state

    def cold_once(limit):
        start = time.perf_counter()
        ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=limit).solve()
        return time.perf_counter() - start

    problem = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4)
    problem.solve()  # prime the compiled structure

    def warm_once(limit):
        start = time.perf_counter()
        problem.resolve(max_link_load=limit)
        return time.perf_counter() - start

    # Alternate the link budget so every warm step really patches and
    # re-solves; min-of-3 filters scheduler noise.
    limits = (0.3, 0.4, 0.35)
    cold = min(cold_once(limit) for limit in limits)
    warm = min(warm_once(limit) for limit in limits)
    speedup = cold / warm

    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "benchmark": "resolve_warm_vs_cold",
        "topology": "tinet",
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": speedup,
    }
    path = RESULTS_DIR / "lp_resolve_speedup.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwarm re-solve speedup: {speedup:.2f}x "
          f"(cold {cold:.3f}s, warm {warm:.3f}s) [saved to {path}]")

    assert speedup >= 2.0, (
        f"warm re-solve only {speedup:.2f}x faster than cold")
