"""Emulation replay throughput: vectorized batch engine vs the scalar
oracle (companion to benchmarks/test_lp_scaling.py's re-solve pin)."""

import json
import pathlib
import time

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments.common import setup_topology
from repro.shim.config import build_replication_configs
from repro.simulation.emulation import Emulation
from repro.simulation.tracegen import TraceGenerator, TraceSpec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_fast_replay_speedup():
    """Batch replay must beat the scalar engine by >= 10x.

    The measured quantity is the replay engine itself: the columnar
    trace is built once (the designed workflow — ``generate_batch``
    produces it directly), then both engines replay the identical
    trace and the reports are compared field-for-field. Min-of-3
    filters scheduler noise, mirroring the LP re-solve benchmark, and
    the measured speedup lands in a JSON artifact for CI to archive.
    """
    state = setup_topology("internet2", dc_capacity_factor=8.0).state
    spec = TraceSpec(total_sessions=25_000)
    seed = 7

    generator = TraceGenerator(state.topology.nodes, state.classes,
                               spec=spec, seed=seed)
    sessions = generator.generate(with_payloads=True)

    build_start = time.perf_counter()
    batch = TraceGenerator(
        state.topology.nodes, state.classes, spec=spec,
        seed=seed).generate_batch(tuple(state.nids_nodes))
    build_seconds = time.perf_counter() - build_start
    packets = int(batch.session_of_packet.size)
    assert packets >= 100_000, (
        f"trace too small to be representative: {packets} packets")

    result = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(state, result)
    emulation = Emulation(state, configs, generator.classifier)

    def scalar_once():
        start = time.perf_counter()
        report = emulation.run_signature(sessions)
        return time.perf_counter() - start, report

    def fast_once():
        start = time.perf_counter()
        report = emulation.run_signature(batch, fast=True)
        return time.perf_counter() - start, report

    scalar_runs = [scalar_once() for _ in range(3)]
    fast_runs = [fast_once() for _ in range(3)]
    scalar_seconds = min(seconds for seconds, _ in scalar_runs)
    fast_seconds = min(seconds for seconds, _ in fast_runs)
    speedup = scalar_seconds / fast_seconds

    scalar_report = scalar_runs[0][1]
    for _, report in fast_runs:
        assert report == scalar_report, (
            "fast replay diverged from the scalar oracle")

    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "benchmark": "emulation_fast_replay",
        "topology": "internet2",
        "packets": packets,
        "batch_build_seconds": build_seconds,
        "scalar_seconds": scalar_seconds,
        "fast_seconds": fast_seconds,
        "speedup": speedup,
    }
    path = RESULTS_DIR / "emulation_throughput.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nfast replay speedup: {speedup:.1f}x "
          f"(scalar {scalar_seconds:.3f}s, fast {fast_seconds:.3f}s, "
          f"{packets} packets, batch build {build_seconds:.3f}s) "
          f"[saved to {path}]")

    assert speedup >= 10.0, (
        f"fast replay only {speedup:.2f}x faster than scalar")
