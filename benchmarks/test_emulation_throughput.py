"""Emulation replay throughput: vectorized batch engine vs the scalar
oracle, and direct columnar synthesis vs the Session-materializing
build (companion to benchmarks/test_lp_scaling.py's re-solve pin)."""

import json
import pathlib
import time

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments.common import setup_topology
from repro.shim.config import build_replication_configs
from repro.simulation.emulation import Emulation
from repro.simulation.tracegen import TraceGenerator, TraceSpec
from repro.simulation.tracestore import trace_fingerprint

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _min_of(repeats, fn):
    """Min-of-N wall time plus the last return value (noise filter
    mirroring the LP re-solve benchmark)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.fixture(scope="module")
def bench():
    """Build the trace both ways, replay it both ways, and persist the
    honest numbers (build seconds, replay seconds, packets/s, bytes/s)
    to the JSON artifact CI archives. Tests assert pins against the
    returned record so the artifact always matches what was enforced.
    """
    state = setup_topology("internet2", dc_capacity_factor=8.0).state
    spec = TraceSpec(total_sessions=25_000)
    seed = 7
    node_order = tuple(state.nids_nodes)

    def session_build():
        return TraceGenerator(
            state.topology.nodes, state.classes, spec=spec,
            seed=seed).generate_batch(node_order, direct=False)

    def direct_build():
        return TraceGenerator(
            state.topology.nodes, state.classes, spec=spec,
            seed=seed).generate_batch(node_order, direct=True)

    session_seconds, session_batch = _min_of(3, session_build)
    direct_seconds, batch = _min_of(3, direct_build)

    packets = int(batch.session_of_packet.size)
    bytes_total = float(batch.size_bytes.sum())
    assert packets >= 100_000, (
        f"trace too small to be representative: {packets} packets")
    assert trace_fingerprint(batch) == trace_fingerprint(session_batch), (
        "direct synthesis diverged from the Session-materializing build")

    generator = TraceGenerator(state.topology.nodes, state.classes,
                               spec=spec, seed=seed)
    sessions = generator.generate(with_payloads=True)
    result = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(state, result)
    emulation = Emulation(state, configs, generator.classifier)

    scalar_seconds, scalar_report = _min_of(
        3, lambda: emulation.run_signature(sessions))
    fast_seconds, fast_report = _min_of(
        3, lambda: emulation.run_signature(batch, fast=True))
    assert fast_report == scalar_report, (
        "fast replay diverged from the scalar oracle")

    record = {
        "benchmark": "emulation_fast_replay",
        "topology": "internet2",
        "packets": packets,
        "bytes": bytes_total,
        "session_build_seconds": session_seconds,
        "batch_build_seconds": direct_seconds,
        "build_speedup": session_seconds / direct_seconds,
        "scalar_seconds": scalar_seconds,
        "fast_seconds": fast_seconds,
        "speedup": scalar_seconds / fast_seconds,
        "end_to_end_speedup": ((session_seconds + scalar_seconds)
                               / (direct_seconds + fast_seconds)),
        "packets_per_second": packets / fast_seconds,
        "bytes_per_second": bytes_total / fast_seconds,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "emulation_throughput.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nfast replay {record['speedup']:.1f}x "
          f"(scalar {scalar_seconds:.3f}s, fast {fast_seconds:.3f}s); "
          f"direct build {record['build_speedup']:.1f}x "
          f"(session {session_seconds:.3f}s, direct {direct_seconds:.3f}s); "
          f"{packets} packets, "
          f"{record['packets_per_second']:,.0f} pkt/s, "
          f"{record['bytes_per_second']:,.0f} B/s "
          f"[saved to {path}]")
    return record


def test_fast_replay_speedup(bench):
    """Batch replay must beat the scalar engine by >= 10x on the same
    trace (reports compared field-for-field in the fixture)."""
    assert bench["speedup"] >= 10.0, (
        f"fast replay only {bench['speedup']:.2f}x faster than scalar")


def test_direct_build_speedup(bench):
    """Direct columnar synthesis must beat the Session-materializing
    build by >= 5x while producing a bit-identical trace (fingerprint
    equality checked in the fixture)."""
    assert bench["build_speedup"] >= 5.0, (
        f"direct build only {bench['build_speedup']:.2f}x faster "
        f"than the Session-materializing path")
