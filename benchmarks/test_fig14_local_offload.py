"""Figure 14 — local one- and two-hop replication vs pure on-path.

Paper reference: one-hop offload reduces max load by up to 5x across
topologies; two hops add little beyond one — a replication-enhanced
architecture helps even without adding a datacenter.
"""

from repro.experiments import format_fig14, run_fig14


def test_fig14_local_offload(benchmark, save_result):
    rows = benchmark.pedantic(run_fig14, iterations=1, rounds=1)
    save_result("fig14_local_offload", format_fig14(rows))
    for row in rows:
        assert row.one_hop_gain() >= 1.0 - 1e-9
        # "Two hops does not add significant value beyond one-hop."
        assert row.two_hop_extra_gain() < 1.2
    # At least one topology shows a clear one-hop win.
    assert max(row.one_hop_gain() for row in rows) > 1.2
