"""Figure 11 — max compute load vs MaxLinkLoad (DC = 10x).

Paper reference: diminishing returns beyond MaxLinkLoad = 0.4 — the
40%-utilization budget already achieves near-optimal load reduction.
"""

from repro.experiments import format_fig11, run_fig11


def test_fig11_linkload_sweep(benchmark, save_result):
    series = benchmark.pedantic(run_fig11, iterations=1, rounds=1)
    save_result("fig11_linkload_sweep", format_fig11(series))
    for s in series:
        # Load never increases as the link budget grows.
        assert all(b <= a + 1e-6
                   for a, b in zip(s.max_loads, s.max_loads[1:]))
        # The paper's knee: little improvement left beyond 0.4.
        assert s.knee_gain(0.4) < 0.12
