"""Ablation — busiest-node failure and controller recovery.

Not a paper figure, but the operational story behind the paper's
min-max objective ("overload is a common cause of appliance failure"):
after losing the hottest interior node, the replication architecture
re-solves in milliseconds and the surviving network absorbs the
rerouted traffic without breaching its provisioning.
"""

from repro.experiments import format_failures, run_failure_ablation


def test_ablation_node_failure_recovery(benchmark, save_result):
    rows = benchmark.pedantic(run_failure_ablation, iterations=1,
                              rounds=1)
    save_result("ablation_failure", format_failures(rows))
    assert rows, "every quick-scale topology's busiest node was a cut " \
                 "vertex (unexpected)"
    for row in rows:
        # The re-solved surviving network stays within provisioning.
        assert row.load_after <= 1.0 + 1e-6
        # Recomputation is well within reconfiguration timescales.
        assert row.solve_seconds < 30.0
        # Something was actually affected by the failure.
        assert row.rerouted_classes > 0 or row.lost_fraction > 0
