"""Shim overhead microbenchmarks (Section 8.1, "Shim overhead").

The paper's shim adds no packet drops up to 1 Gbps because the per-
packet work is one lightweight hash plus a range lookup. These
benchmarks measure that per-packet cost in the reproduction — the one
place pytest-benchmark's repeated timing is the point, rather than a
one-shot experiment run.
"""

from repro.obs import MetricsRegistry, use_registry
from repro.shim import (
    FiveTuple,
    HashRange,
    Shim,
    ShimAction,
    ShimConfig,
    ShimRule,
    session_hash,
)

TUPLES = [FiveTuple(6, 0x0A010000 + i, 1024 + i, 0x0A020000 + i, 80)
          for i in range(512)]


def _shim_config():
    rules = {
        "c": [ShimRule("c", HashRange("p", 0.0, 0.5),
                       ShimAction.PROCESS),
              ShimRule("c", HashRange("o", 0.5, 1.0),
                       ShimAction.REPLICATE, target="DC")],
    }
    return ShimConfig(node="N1", rules=rules)


def test_session_hash_throughput(benchmark):
    def hash_batch():
        total = 0.0
        for tup in TUPLES:
            total += session_hash(tup)
        return total

    result = benchmark(hash_batch)
    assert 0.0 < result < len(TUPLES)


def test_shim_decision_throughput(benchmark):
    """Full per-packet path: classify, hash, range lookup, decide.

    Runs with metrics disabled (the default null registry), so this
    is the number the zero-overhead-when-disabled guarantee protects.
    """
    shim = Shim(_shim_config(), classifier=lambda t: "c")
    # The observability layer must not have installed its per-packet
    # wrapper: the hot path is the plain class method.
    assert "handle" not in shim.__dict__

    def decide_batch():
        processed = 0
        for tup in TUPLES:
            if shim.handle(tup, "fwd", 1500.0).is_process:
                processed += 1
        return processed

    processed = benchmark(decide_batch)
    # Roughly half the hash space processes locally.
    assert 0.3 * len(TUPLES) < processed < 0.7 * len(TUPLES)


def test_shim_decision_throughput_instrumented(benchmark):
    """The same per-packet path with a recording registry installed
    (decision counters + hash-lookup timing) — quantifies the cost of
    opting in to metrics."""
    with use_registry(MetricsRegistry()) as registry:
        shim = Shim(_shim_config(), classifier=lambda t: "c")

        def decide_batch():
            processed = 0
            for tup in TUPLES:
                if shim.handle(tup, "fwd", 1500.0).is_process:
                    processed += 1
            return processed

        processed = benchmark(decide_batch)
    assert 0.3 * len(TUPLES) < processed < 0.7 * len(TUPLES)
    assert registry.counter_value("shim.packets") >= len(TUPLES)
