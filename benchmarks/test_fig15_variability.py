"""Figure 15 — peak load distribution under traffic variability.

Paper reference: across 100 time-varying matrices the replication
architectures (DC-only, DC + one-hop) outperform Ingress and on-path
distribution significantly; the no-replication worst cases exceed
load 1 while replication keeps the maximum tamed (>20x peak-load
reduction quoted in the abstract for the best cases).
"""

from repro.core import ArchitectureKind
from repro.experiments import format_fig15, run_fig15


def test_fig15_traffic_variability(benchmark, save_result):
    rows = benchmark.pedantic(
        run_fig15, kwargs={"include_augmented": True},
        iterations=1, rounds=1)
    save_result("fig15_variability", format_fig15(rows))
    by_key = {(r.topology, r.architecture): r.summary for r in rows}
    topologies = {r.topology for r in rows}
    augmented_penalties = []
    for name in topologies:
        ingress = by_key[(name, ArchitectureKind.INGRESS)]
        dc_only = by_key[(name, ArchitectureKind.PATH_REPLICATE)]
        combo = by_key[(name, ArchitectureKind.DC_PLUS_ONE_HOP)]
        augmented = by_key[(name, ArchitectureKind.PATH_AUGMENTED)]
        # Replication dominates at the median and the worst case.
        assert dc_only["median"] < ingress["median"]
        assert dc_only["max"] < ingress["max"]
        assert combo["median"] <= dc_only["median"] + 1e-9
        augmented_penalties.append(augmented["max"] / combo["max"])
    # The paper's aside: the Augmented strategy's worst case is
    # markedly worse than the replication-enabled architectures' on
    # some topologies (it cannot shift load when a hotspot moves).
    assert max(augmented_penalties) > 1.1
