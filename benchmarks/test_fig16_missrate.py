"""Figure 16 — detection miss rate vs forward/reverse route overlap.

Paper reference: Ingress-only misses >85% of traffic under strong
asymmetry and stays high across the range; the Section 5 formulation
with a datacenter (DC-0.4) drives the miss rate to ~zero.
"""

from repro.experiments import format_fig16


def test_fig16_miss_rate(benchmark, save_result, asymmetry_points):
    result = benchmark.pedantic(lambda: asymmetry_points,
                                iterations=1, rounds=1)
    save_result("fig16_missrate", format_fig16(result))
    by = {(p.config, p.theta): p for p in result}
    thetas = sorted({p.theta for p in result})
    # DC-0.4 achieves (near-)zero misses everywhere.
    assert all(by[("dc-0.4", t)].miss_rate < 0.02 for t in thetas)
    # Ingress-only misses heavily under strong asymmetry.
    assert by[("ingress", thetas[0])].miss_rate > 0.5
    # Path-only misses more than DC wherever common nodes are scarce.
    assert by[("path", thetas[0])].miss_rate >= \
        by[("dc-0.4", thetas[0])].miss_rate - 1e-9
