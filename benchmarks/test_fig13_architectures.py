"""Figure 13 — max compute load per NIDS architecture.

Paper reference: Path-Replicate reduces max load up to 10x vs today's
Ingress-only deployments and up to 3x vs on-path distribution [29],
and stays competitive with spreading the same extra capacity evenly
(Path-Augmented).
"""

import pytest

from repro.core import ArchitectureKind
from repro.experiments import format_fig13, run_fig13


def test_fig13_architecture_comparison(benchmark, save_result):
    rows = benchmark.pedantic(run_fig13, iterations=1, rounds=1)
    save_result("fig13_architectures", format_fig13(rows))
    gains_vs_ingress = []
    for row in rows:
        assert row.max_loads[ArchitectureKind.INGRESS] == \
            pytest.approx(1.0)
        assert (row.max_loads[ArchitectureKind.PATH_REPLICATE] <=
                row.max_loads[ArchitectureKind.PATH_NO_REPLICATE] + 1e-9)
        gains_vs_ingress.append(row.replication_gain_vs_ingress())
    # "Up to 10x" vs Ingress: the best topology shows a large gain.
    assert max(gains_vs_ingress) > 3.0
