"""Ablation — datacenter capacity knee (Section 8.2).

Paper reference: diminishing returns when growing the DC beyond
8-10x, with the knee occurring earlier at lower MaxLinkLoad (a starved
link budget can't feed a bigger cluster).
"""

from repro.experiments import format_dc_capacity, run_dc_capacity_ablation


def test_ablation_dc_capacity(benchmark, save_result):
    series = benchmark.pedantic(run_dc_capacity_ablation,
                                iterations=1, rounds=1)
    save_result("ablation_dc_capacity", format_dc_capacity(series))
    for s in series:
        # More DC capacity never hurts.
        assert all(b <= a + 1e-6
                   for a, b in zip(s.max_loads, s.max_loads[1:]))
    # Knee comparison per topology: the 0.1-budget knee is at or below
    # the 0.4-budget knee.
    by_topology = {}
    for s in series:
        by_topology.setdefault(s.topology, {})[s.max_link_load] = s
    for name, pair in by_topology.items():
        assert pair[0.1].knee_capacity() <= \
            pair[0.4].knee_capacity() + 1e-9
