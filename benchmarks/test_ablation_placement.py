"""Ablation — datacenter placement strategies (Section 8.2).

Paper reference: "for most topologies the gap between the different
placement strategies is very small and placing the datacenter at the
PoP that observes the most traffic works best across all topologies."
"""

from repro.experiments import format_placement, run_placement_ablation


def test_ablation_dc_placement(benchmark, save_result):
    rows = benchmark.pedantic(run_placement_ablation,
                              iterations=1, rounds=1)
    save_result("ablation_placement", format_placement(rows))
    for row in rows:
        # The spread across strategies is small relative to load 1.
        assert row.spread() < 0.3
        # "Observed" is (near-)best: within 10% of the best strategy.
        best = min(row.max_loads.values())
        assert row.max_loads["observed"] <= best * 1.10 + 1e-9
