"""Sketch update throughput and the streaming estimator's memory win.

The ingest daemon's value proposition is quantitative: folding a
trace into count-min sketches must keep up with the packet stream
(vectorized lookup3 scatter-adds, no per-key Python loop) while
holding orders of magnitude less state than the trace it summarizes.
This benchmark pins both and persists the honest numbers to the JSON
artifact CI archives.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.experiments.common import setup_topology
from repro.ingest import IngestDaemon, chunk_resident_bytes
from repro.simulation.tracegen import TraceGenerator, TraceSpec
from repro.simulation.tracestore import ChunkedReplay

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _min_of(repeats, fn):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.fixture(scope="module")
def bench():
    state = setup_topology("tinet", dc_capacity_factor=1.0).state
    generator = TraceGenerator(
        state.topology.nodes, state.classes,
        spec=TraceSpec(total_sessions=25_000), seed=7)
    batch = generator.generate_batch(tuple(state.nids_nodes),
                                     with_payloads=False, direct=True)
    class_names = [cls.name for cls in state.classes]
    chunks = list(ChunkedReplay(batch, 2048))

    def stream_once():
        daemon = IngestDaemon(class_names, width=2048, depth=4,
                              seed=11, workers=2)
        for chunk in chunks:
            daemon.consume(chunk)
        return daemon

    seconds, daemon = _min_of(3, stream_once)
    snapshot = daemon.snapshot()

    # Raw count-min update rate on synthetic keys (the sketch layer
    # alone, no batch bookkeeping).
    from repro.sketch import CountMinSketch

    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**32, size=1_000_000, dtype=np.uint32)
    sketch = CountMinSketch(2048, 4, seed=5)
    raw_seconds, _ = _min_of(3, lambda: sketch.update(keys))

    trace_bytes = sum(chunk_resident_bytes(c) for c in chunks)
    record = {
        "benchmark": "sketch_throughput",
        "topology": "tinet",
        "sessions": int(batch.sessions.num_sessions),
        "packets": int(batch.num_packets),
        "chunks": len(chunks),
        "stream_seconds": seconds,
        "packets_per_second": batch.num_packets / seconds,
        "sessions_per_second":
            batch.sessions.num_sessions / seconds,
        "raw_update_keys_per_second": len(keys) / raw_seconds,
        "sketch_state_bytes": snapshot.state_bytes,
        "trace_bytes": trace_bytes,
        "compression_ratio": trace_bytes / snapshot.state_bytes,
        "max_resident_bytes": daemon.stats.max_resident_bytes,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "sketch_throughput.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nsketch ingest {record['packets_per_second']:,.0f} "
          f"pkt/s ({record['sessions_per_second']:,.0f} sessions/s); "
          f"raw update {record['raw_update_keys_per_second']:,.0f} "
          f"keys/s; state {snapshot.state_bytes:,} B vs trace "
          f"{trace_bytes:,} B ({record['compression_ratio']:.0f}x) "
          f"[saved to {path}]")
    return record


def test_stream_keeps_up(bench):
    """Chunked ingest must fold >= 100k packets/s of trace — far
    above the simulated epoch rates the scenarios replay."""
    assert bench["packets_per_second"] >= 100_000, (
        f"ingest too slow: {bench['packets_per_second']:,.0f} pkt/s")


def test_raw_update_rate(bench):
    """The vectorized count-min update path must sustain >= 1M
    key-updates/s (no per-key Python loop)."""
    assert bench["raw_update_keys_per_second"] >= 1_000_000, (
        f"raw sketch updates only "
        f"{bench['raw_update_keys_per_second']:,.0f} keys/s")


def test_sketch_state_is_small(bench):
    """The sketch must summarize the trace in <= 1/10 of its bytes
    (it is ~27x on tinet at width 2048) while resident state stays
    bounded by sketches + one chunk."""
    assert bench["compression_ratio"] >= 10.0
    assert bench["max_resident_bytes"] < bench["trace_bytes"]
