"""Benchmark harness support.

Each benchmark regenerates one of the paper's tables/figures and saves
the rendered table under ``benchmarks/results/`` (also echoed to
stdout) so EXPERIMENTS.md can be checked against fresh runs.

Run quick versions by default; set ``REPRO_SCALE=full`` for the
paper-scale parameterizations (all eight topologies, 100 variability
matrices, 50 configurations per overlap point).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def asymmetry_points():
    """Shared Figure 16/17 sweep (one run feeds both figures)."""
    from repro.experiments import run_fig16_17

    return run_fig16_17()


@pytest.fixture
def save_result():
    """Write a rendered experiment table to benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
