# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples results clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do \
		echo "==== $$script ===="; \
		$(PYTHON) $$script || exit 1; \
	done

results:
	$(PYTHON) -m repro experiment all

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache \
		benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
