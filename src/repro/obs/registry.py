"""The metrics registry: counters, gauges, histograms, timing spans.

The controller of Figure 6 "periodically collects traffic and routing
feeds, runs the optimization, and pushes configurations" — this module
gives every stage of that loop something to report into. Two registry
flavors share one interface:

- :class:`NullRegistry` — the default. Every operation is a no-op and
  ``enabled`` is False, so instrumented call sites that bind their
  fast paths at construction time (e.g., :class:`~repro.shim.shim.Shim`)
  add zero per-packet work when metrics are off.
- :class:`MetricsRegistry` — in-memory accumulation of counters,
  gauges, and histograms (with p50/p95/p99 summaries), plus
  context-manager timing spans.

The process-wide registry is managed by :func:`get_registry` /
:func:`set_registry` / :func:`use_registry`; see
:mod:`repro.obs.export` for the JSONL snapshot format.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile of unsorted samples (NaN when
    empty); ``q`` in [0, 100]."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    weight = rank - lo
    return ordered[lo] * (1.0 - weight) + ordered[hi] * weight


class HistogramStats:
    """Accumulated observations for one histogram metric."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return float("nan")
        return self.total / len(self.samples)

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean plus p50/p95/p99."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.total,
            "min": min(self.samples) if self.samples else float("nan"),
            "max": max(self.samples) if self.samples else float("nan"),
            "mean": self.mean,
        }
        for q in _PERCENTILES:
            out[f"p{q:g}"] = percentile(self.samples, q)
        return out


class _NullSpan:
    """A reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Times a ``with`` block into ``<name>.seconds``."""

    __slots__ = ("_registry", "_name", "_start", "elapsed")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._registry.observe(f"{self._name}.seconds", self.elapsed)


class NullRegistry:
    """Do-nothing registry; the zero-overhead default.

    Instrumented code may call any recording method unconditionally;
    hot paths should instead check :attr:`enabled` once (at setup
    time) and skip instrumentation entirely.
    """

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""

    def span(self, name: str) -> "Union[_NullSpan, _Span]":
        """Context manager timing its block into ``<name>.seconds``."""
        return _NULL_SPAN

    # -- read side (all empty) -------------------------------------------

    def counter_value(self, name: str) -> float:
        return 0.0

    def gauge_value(self, name: str) -> float:
        return float("nan")

    def histogram(self, name: str) -> Optional[HistogramStats]:
        return None

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        """Drop all accumulated measurements."""


class MetricsRegistry(NullRegistry):
    """In-memory metrics accumulator (process-local, not thread-safe
    beyond CPython dict-op atomicity — matching the single-threaded
    controller/emulation loops it instruments)."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStats] = {}

    # -- write side -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramStats()
        hist.observe(value)

    def span(self, name: str) -> "_Span":
        return _Span(self, name)

    # -- read side --------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float:
        return self.gauges.get(name, float("nan"))

    def histogram(self, name: str) -> Optional[HistogramStats]:
        return self.histograms.get(name)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view: counters, gauges, histogram summaries."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: hist.summary()
                           for name, hist in self.histograms.items()},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


NULL_REGISTRY = NullRegistry()

_registry: NullRegistry = NULL_REGISTRY


def get_registry() -> NullRegistry:
    """The process-wide registry (the null registry by default)."""
    return _registry


def set_registry(registry: Optional[NullRegistry]) -> NullRegistry:
    """Install ``registry`` globally; ``None`` restores the null
    registry. Returns the previously installed registry."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: NullRegistry) -> Iterator[NullRegistry]:
    """Temporarily install a registry (tests, CLI one-shots)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
