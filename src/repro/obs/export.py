"""JSON-lines export of a registry snapshot.

The schema (versioned, documented in ``docs/observability.md``) is one
JSON object per line:

- ``{"type": "meta", "schema": 1, "ts": <unix seconds>}`` — always the
  first line.
- ``{"type": "counter", "name": str, "value": number}``
- ``{"type": "gauge", "name": str, "value": number}``
- ``{"type": "histogram", "name": str, "count": int, "sum": number,
  "min": number, "max": number, "mean": number, "p50": number,
  "p95": number, "p99": number}``

A second, timeline-oriented flavor serves the runtime layer
(:mod:`repro.runtime.scenario`): one record per simulation epoch, each
carrying that epoch's metric values, so downstream tooling can plot
per-epoch series without re-aggregating histograms:

- ``{"type": "timeline-meta", "schema": 1, "ts": <unix seconds>,
  "source": str}`` — always the first line.
- ``{"type": "epoch", "epoch": int, "t": number,
  "metrics": {str: number|null}}`` — one line per epoch, ``t`` is the
  epoch's simulated start time in seconds.

Non-finite numbers (empty-histogram NaNs) are serialized as ``null``
so every line is strict RFC 8259 JSON. :func:`validate_record` /
:func:`validate_timeline_record` are the authoritative schema checks,
shared by the test suite.
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, Iterable, List, Optional, TextIO, Union

from repro.obs.registry import NullRegistry

SCHEMA_VERSION = 1

_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean",
                     "p50", "p95", "p99")


def _clean(value: float) -> Optional[float]:
    """JSON-safe number: NaN/inf become None (strict-JSON null)."""
    return value if math.isfinite(value) else None


def snapshot_records(registry: NullRegistry,
                     timestamp: Optional[float] = None) -> List[Dict]:
    """Flatten a registry snapshot into schema records (meta first,
    then counters/gauges/histograms, each sorted by name)."""
    snap = registry.snapshot()
    records: List[Dict] = [{
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "ts": time.time() if timestamp is None else timestamp,
    }]
    for name in sorted(snap["counters"]):
        records.append({"type": "counter", "name": name,
                        "value": _clean(snap["counters"][name])})
    for name in sorted(snap["gauges"]):
        records.append({"type": "gauge", "name": name,
                        "value": _clean(snap["gauges"][name])})
    for name in sorted(snap["histograms"]):
        record: Dict = {"type": "histogram", "name": name}
        summary = snap["histograms"][name]
        for field in _HISTOGRAM_FIELDS:
            record[field] = _clean(summary[field])
        record["count"] = int(summary["count"])
        records.append(record)
    return records


def write_jsonl(registry: NullRegistry, out: Union[str, TextIO],
                timestamp: Optional[float] = None) -> int:
    """Write the snapshot as JSONL to a path or stream; returns the
    number of records written."""
    records = snapshot_records(registry, timestamp=timestamp)
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as handle:
            return write_jsonl(registry, handle, timestamp=timestamp)
    for record in records:
        out.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def validate_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the schema."""
    kind = record.get("type")
    if kind == "meta":
        if record.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"bad schema version: {record!r}")
        if not isinstance(record.get("ts"), (int, float)):
            raise ValueError(f"meta record missing ts: {record!r}")
        return
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"record missing name: {record!r}")
    if kind in ("counter", "gauge"):
        value = record.get("value")
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(f"non-numeric value: {record!r}")
        return
    if kind == "histogram":
        for field in _HISTOGRAM_FIELDS:
            if field not in record:
                raise ValueError(
                    f"histogram missing {field!r}: {record!r}")
            value = record[field]
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(
                    f"non-numeric {field!r}: {record!r}")
        if not isinstance(record["count"], int):
            raise ValueError(f"histogram count not int: {record!r}")
        return
    raise ValueError(f"unknown record type: {record!r}")


def read_jsonl(lines: Iterable[str]) -> List[Dict]:
    """Parse and validate JSONL lines (blank lines are skipped)."""
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        validate_record(record)
        records.append(record)
    return records


# -- per-epoch timeline flavor ---------------------------------------------


def timeline_records(rows: Iterable[Dict], source: str = "",
                     timestamp: Optional[float] = None) -> List[Dict]:
    """Build timeline records from per-epoch rows.

    Each row must carry ``epoch`` (int), ``t`` (simulated seconds),
    and ``metrics`` (name → number); metric values are cleaned to
    strict JSON (NaN/inf → null).
    """
    records: List[Dict] = [{
        "type": "timeline-meta",
        "schema": SCHEMA_VERSION,
        "ts": time.time() if timestamp is None else timestamp,
        "source": source,
    }]
    for row in rows:
        metrics = {
            name: (_clean(float(value)) if value is not None else None)
            for name, value in sorted(row["metrics"].items())
        }
        records.append({"type": "epoch",
                        "epoch": int(row["epoch"]),
                        "t": float(row["t"]),
                        "metrics": metrics})
    return records


def write_timeline_jsonl(rows: Iterable[Dict],
                         out: Union[str, TextIO], source: str = "",
                         timestamp: Optional[float] = None) -> int:
    """Write per-epoch rows as timeline JSONL to a path or stream;
    returns the number of records written (epochs + the meta line)."""
    records = timeline_records(rows, source=source,
                               timestamp=timestamp)
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            return len(records)
    for record in records:
        out.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def validate_timeline_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the timeline
    schema."""
    kind = record.get("type")
    if kind == "timeline-meta":
        if record.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"bad schema version: {record!r}")
        if not isinstance(record.get("ts"), (int, float)):
            raise ValueError(f"meta record missing ts: {record!r}")
        if not isinstance(record.get("source"), str):
            raise ValueError(f"meta record missing source: {record!r}")
        return
    if kind == "epoch":
        if not isinstance(record.get("epoch"), int):
            raise ValueError(f"epoch record missing epoch: {record!r}")
        if not isinstance(record.get("t"), (int, float)):
            raise ValueError(f"epoch record missing t: {record!r}")
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError(
                f"epoch record missing metrics: {record!r}")
        for name, value in metrics.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"bad metric name: {record!r}")
            if value is not None and \
                    not isinstance(value, (int, float)):
                raise ValueError(
                    f"non-numeric metric {name!r}: {record!r}")
        return
    raise ValueError(f"unknown timeline record type: {record!r}")


def read_timeline_jsonl(lines: Iterable[str]) -> List[Dict]:
    """Parse and validate timeline JSONL lines."""
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        validate_timeline_record(record)
        records.append(record)
    return records
