"""Observability: metrics registry, instrumentation plumbing, JSONL
export.

By default the process-wide registry is the no-op
:class:`NullRegistry`, so the instrumented hot paths (LP solve phases,
shim per-packet decisions, controller refreshes, emulation replay) add
no measurable work. Opt in either programmatically::

    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as reg:
        ...  # run a solve / emulation
        print(reg.snapshot())

or through the environment: setting ``REPRO_METRICS=path.jsonl``
before importing :mod:`repro` installs a recording registry and writes
a JSONL snapshot to that path at interpreter exit (see
:mod:`repro.obs.export` for the schema). That makes any existing
entry point — ``python -m repro``, the benchmark suite, an experiment
script — emit machine-readable measurement trajectories without code
changes.
"""

from __future__ import annotations

import atexit
import os
from typing import Mapping, Optional

from repro.obs.export import (
    SCHEMA_VERSION,
    read_jsonl,
    read_timeline_jsonl,
    snapshot_records,
    timeline_records,
    validate_record,
    validate_timeline_record,
    write_jsonl,
    write_timeline_jsonl,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    HistogramStats,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    percentile,
    set_registry,
    use_registry,
)

ENV_VAR = "REPRO_METRICS"

__all__ = [
    "ENV_VAR",
    "HistogramStats",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SCHEMA_VERSION",
    "configure_from_env",
    "get_registry",
    "percentile",
    "read_jsonl",
    "read_timeline_jsonl",
    "set_registry",
    "snapshot_records",
    "timeline_records",
    "use_registry",
    "validate_record",
    "validate_timeline_record",
    "write_jsonl",
    "write_timeline_jsonl",
]


def configure_from_env(environ: Optional[Mapping[str, str]] = None,
                       register_atexit: bool = True
                       ) -> Optional[MetricsRegistry]:
    """Install a recording registry when ``REPRO_METRICS`` is set.

    Args:
        environ: environment mapping (defaults to ``os.environ``;
            injectable for tests).
        register_atexit: write the JSONL snapshot to the configured
            path at interpreter exit (the production hook). Tests pass
            False and export explicitly.

    Returns:
        The installed :class:`MetricsRegistry`, or ``None`` when the
        variable is unset/empty (the null registry stays in place).
    """
    environ = os.environ if environ is None else environ
    path = environ.get(ENV_VAR, "").strip()
    if not path:
        return None
    registry = MetricsRegistry()
    set_registry(registry)
    if register_atexit:
        atexit.register(write_jsonl, registry, path)
    return registry


# The import-time hook: importing any repro module that uses metrics
# pulls this package in, so REPRO_METRICS=out.jsonl works for every
# entry point without explicit wiring.
configure_from_env()
