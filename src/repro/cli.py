"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``topologies`` — list the built-in evaluation topologies.
- ``solve`` — run one formulation on one topology and print the
  assignment summary (the controller's one-shot operation).
- ``compare`` — Figure 13-style architecture comparison for one
  topology.
- ``experiment`` — regenerate one of the paper's tables/figures.
- ``stats`` — run one instrumented controller cycle plus a trace
  replay and report the collected metrics (optionally as JSONL).
- ``budget-sweep`` — sweep the per-class TCAM rule budget and report
  coverage-error and realized-load curves (optionally as JSON).
- ``shard-gap`` — compare the sharded control plane (regional LPs +
  coordinator) against the global LP: optimality gap, coordination
  rounds, and wall-time speedup per region count (optionally as
  JSON).
- ``sketch-gap`` — sweep count-min sketch widths against the
  LoadCost gap of the streaming estimator vs the exact-matrix
  oracle (optionally as JSON).
- ``scenario`` — play a canned closed-loop scenario through the
  discrete-event runtime and print the epoch timeline (optionally
  writing the full report and a per-epoch timeline as JSON/JSONL).
- ``trace`` — ``pack`` a synthesized trace into a zero-copy on-disk
  store, ``info`` its manifest, or ``replay`` it through the
  signature emulation in bounded-memory chunks (``--follow``
  streams it through the ingest daemon's sketch estimator
  instead, as a live-feed fixture).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.core import (
    AggregationProblem,
    ArchitectureEvaluator,
    ArchitectureKind,
    CombinedProblem,
    MirrorPolicy,
    NIPSProblem,
    ReplicationProblem,
    SplitTrafficProblem,
)
from repro.experiments import (
    format_dc_capacity,
    format_fig10,
    format_fig11,
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_fig17,
    format_fig18,
    format_fig19,
    format_placement,
    format_table,
    format_table1,
    run_dc_capacity_ablation,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16_17,
    run_fig18,
    run_fig19,
    run_placement_ablation,
    run_table1,
    setup_topology,
)
from repro.topology import builtin_topology, builtin_topology_names

_MIRROR_CHOICES = {
    "none": MirrorPolicy.none,
    "dc": MirrorPolicy.datacenter,
    "one-hop": lambda: MirrorPolicy.neighbors(1),
    "two-hop": lambda: MirrorPolicy.neighbors(2),
    "dc+one-hop": lambda: MirrorPolicy.datacenter_plus_neighbors(1),
}

# Every runner takes the --jobs value; only the sweep-style
# experiments (fig10's architectures, fig15's topologies) fan out —
# the rest ignore it.
_EXPERIMENTS = {
    "table1": lambda jobs: format_table1(run_table1()),
    "fig10": lambda jobs: format_fig10(run_fig10(jobs=jobs)),
    "fig11": lambda jobs: format_fig11(run_fig11()),
    "fig12": lambda jobs: format_fig12(run_fig12()),
    "fig13": lambda jobs: format_fig13(run_fig13()),
    "fig14": lambda jobs: format_fig14(run_fig14()),
    "fig15": lambda jobs: format_fig15(run_fig15(jobs=jobs)),
    "fig16": lambda jobs: format_fig16(run_fig16_17()),
    "fig17": lambda jobs: format_fig17(run_fig16_17()),
    "fig18": lambda jobs: format_fig18(run_fig18()),
    "fig19": lambda jobs: format_fig19(run_fig19()),
    "placement": lambda jobs: format_placement(
        run_placement_ablation()),
    "dc-capacity": lambda jobs: format_dc_capacity(
        run_dc_capacity_ablation()),
    "slack": lambda jobs: _fmt_slack(),
    "link-cost": lambda jobs: _fmt_link_cost(),
    "nips": lambda jobs: _fmt_nips(),
    "combined": lambda jobs: _fmt_combined(),
    "strategies": lambda jobs: _fmt_strategies(),
}


def _fmt_slack():
    from repro.experiments import format_slack, run_slack_ablation

    return format_slack(run_slack_ablation())


def _fmt_link_cost():
    from repro.experiments import (format_link_cost,
                                   run_link_cost_ablation)

    return format_link_cost(run_link_cost_ablation())


def _fmt_nips():
    from repro.experiments import format_nips, run_nips_ablation

    return format_nips(run_nips_ablation())


def _fmt_combined():
    from repro.experiments import (format_combined,
                                   run_combined_ablation)

    return format_combined(run_combined_ablation())


def _fmt_strategies():
    from repro.experiments import (format_strategies,
                                   run_strategy_ablation)

    return format_strategies(run_strategy_ablation())


def _build_parser() -> argparse.ArgumentParser:
    from repro.lpsolve import available_backends

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network-wide NIDS load balancing (CoNEXT'12 "
                    "reproduction)")
    parser.add_argument(
        "--solver", default=None, choices=available_backends(),
        help="LP solver backend for every formulation (default: the "
             "REPRO_SOLVER env var, falling back to scipy/HiGHS)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies",
                   help="list built-in evaluation topologies")

    solve = sub.add_parser("solve", help="run one formulation")
    solve.add_argument("topology", choices=builtin_topology_names())
    solve.add_argument("--formulation", default="replication",
                       choices=["replication", "aggregation", "split",
                                "nips", "combined"])
    solve.add_argument("--mirror", default="dc",
                       choices=sorted(_MIRROR_CHOICES))
    solve.add_argument("--max-link-load", type=float, default=0.4)
    solve.add_argument("--dc-capacity", type=float, default=10.0)
    solve.add_argument("--beta", type=float, default=None,
                       help="aggregation comm-cost weight "
                            "(default: scale-matched)")
    solve.add_argument("--top", type=int, default=10,
                       help="show the N most loaded nodes")

    compare = sub.add_parser(
        "compare", help="compare architectures on one topology")
    compare.add_argument("topology", choices=builtin_topology_names())
    compare.add_argument("--max-link-load", type=float, default=0.4)
    compare.add_argument("--dc-capacity", type=float, default=10.0)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name",
                            choices=sorted(_EXPERIMENTS) + ["all"])
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep-style experiments "
             "(fig10, fig15); results are identical to --jobs 1")

    stats = sub.add_parser(
        "stats",
        help="run an instrumented optimize+replay cycle and report "
             "the collected metrics")
    stats.add_argument("topology", nargs="?", default="internet2",
                       choices=builtin_topology_names())
    stats.add_argument("--mirror", default="dc",
                       choices=sorted(_MIRROR_CHOICES))
    stats.add_argument("--max-link-load", type=float, default=0.4)
    stats.add_argument("--dc-capacity", type=float, default=8.0)
    stats.add_argument("--sessions", type=int, default=1000,
                       help="synthetic trace size for the replay")
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also write the metrics snapshot as "
                            "JSON lines to PATH")

    budget = sub.add_parser(
        "budget-sweep",
        help="sweep the per-class TCAM rule budget and report "
             "coverage error and realized load curves")
    budget.add_argument("--topology", action="append", default=None,
                        choices=builtin_topology_names(),
                        metavar="NAME", dest="topologies",
                        help="topology to sweep (repeatable; "
                             "default: tinet and sprint)")
    budget.add_argument("--budgets", default=None, metavar="LIST",
                        help="comma-separated rule budgets; 'inf' "
                             "means unbounded (default: "
                             "1,2,3,4,8,16,inf)")
    budget.add_argument("--mirror", default="dc+one-hop",
                        choices=sorted(_MIRROR_CHOICES))
    budget.add_argument("--max-link-load", type=float, default=0.4)
    budget.add_argument("--dc-capacity", type=float, default=10.0)
    budget.add_argument("--json", default=None, metavar="PATH",
                        help="write the sweep curves as JSON "
                             "('-' for stdout)")

    shard = sub.add_parser(
        "shard-gap",
        help="compare the sharded control plane against the global "
             "LP: optimality gap, rounds, and speedup")
    shard.add_argument("--topology", action="append", default=None,
                       choices=builtin_topology_names(),
                       metavar="NAME", dest="topologies",
                       help="topology to compare (repeatable; "
                            "default: sprint, level3 and ntt)")
    shard.add_argument("--regions", default=None, metavar="LIST",
                       help="comma-separated region counts "
                            "(default: 2,3,4)")
    shard.add_argument("--mirror", default="dc",
                       choices=sorted(_MIRROR_CHOICES))
    shard.add_argument("--max-link-load", type=float, default=0.4)
    shard.add_argument("--dc-capacity", type=float, default=1.0)
    shard.add_argument("--seed", type=int, default=0,
                       help="region partitioner seed")
    shard.add_argument("--jobs", type=int, default=None,
                       help="concurrent per-region solves (default: "
                            "one per region up to the CPU count)")
    shard.add_argument("--json", default=None, metavar="PATH",
                       help="write the comparison as JSON "
                            "('-' for stdout)")

    sketch = sub.add_parser(
        "sketch-gap",
        help="sweep count-min sketch widths against the streaming "
             "estimator's LoadCost gap vs the exact-matrix oracle")
    sketch.add_argument("--topology", action="append", default=None,
                        choices=builtin_topology_names(),
                        metavar="NAME", dest="topologies",
                        help="topology to sweep (repeatable; "
                             "default: tinet — many classes, so "
                             "collisions actually bite)")
    sketch.add_argument("--widths", default=None, metavar="LIST",
                        help="comma-separated count-min widths "
                             "(default: 512,1024,2048,4096)")
    sketch.add_argument("--depth", type=int, default=4,
                        help="count-min depth (rows)")
    sketch.add_argument("--mirror", default="dc",
                        choices=sorted(_MIRROR_CHOICES))
    sketch.add_argument("--max-link-load", type=float, default=0.4)
    sketch.add_argument("--dc-capacity", type=float, default=1.0)
    sketch.add_argument("--sessions", type=int, default=6000,
                        help="sampled sessions in the shared epoch "
                             "trace")
    sketch.add_argument("--chunk", type=int, default=512,
                        help="packets per streaming ingest slab")
    sketch.add_argument("--workers", type=int, default=2,
                        help="per-worker sketches merged on snapshot")
    sketch.add_argument("--seed", type=int, default=0)
    sketch.add_argument("--json", default=None, metavar="PATH",
                        help="write the sweep as JSON "
                             "('-' for stdout)")

    from repro.runtime.scenario import CANNED_SCENARIOS

    scenario = sub.add_parser(
        "scenario",
        help="play a closed-loop runtime scenario and print the "
             "per-epoch timeline")
    scenario.add_argument("name", choices=sorted(CANNED_SCENARIOS))
    scenario.add_argument("--topology", default="internet2",
                          choices=builtin_topology_names())
    scenario.add_argument("--epochs", type=int, default=None,
                          help="override the scenario's epoch count")
    scenario.add_argument("--seed", type=int, default=None,
                          help="override the scenario's seed")
    from repro.runtime.rollout import RolloutDriver

    scenario.add_argument("--strategy", default=None,
                          choices=RolloutDriver.STRATEGIES,
                          help="override the scenario's rollout "
                               "strategy (e.g. 'delta' for "
                               "incremental diff rollouts)")
    scenario.add_argument("--json", default=None, metavar="PATH",
                          help="write the full ScenarioReport as JSON")
    scenario.add_argument("--timeline", default=None, metavar="PATH",
                          help="write the per-epoch metric timeline "
                               "as JSON lines")

    trace = sub.add_parser(
        "trace",
        help="pack, inspect, and replay zero-copy columnar trace "
             "stores (memmap-backed slabs)")
    trace_sub = trace.add_subparsers(dest="trace_command",
                                     required=True)

    pack = trace_sub.add_parser(
        "pack",
        help="synthesize a trace (vectorized direct build) and pack "
             "it into an on-disk trace store")
    pack.add_argument("path", metavar="DIR",
                      help="directory for the trace store")
    pack.add_argument("--topology", default="internet2",
                      choices=builtin_topology_names())
    pack.add_argument("--sessions", type=int, default=5000)
    pack.add_argument("--seed", type=int, default=7)
    pack.add_argument("--scanners", type=int, default=0,
                      help="injected scanner sources")
    pack.add_argument("--payload-sigma", type=float, default=0.0,
                      help="lognormal payload-size spread (0 = fixed)")
    pack.add_argument("--dc-capacity", type=float, default=8.0)

    info = trace_sub.add_parser(
        "info", help="print a trace store's manifest summary")
    info.add_argument("path", metavar="DIR")
    info.add_argument("--verify", action="store_true",
                      help="recompute the content fingerprint "
                           "(reads every column)")

    replay = trace_sub.add_parser(
        "replay",
        help="stream a stored trace through the signature emulation "
             "in bounded-memory chunks")
    replay.add_argument("path", metavar="DIR")
    replay.add_argument("--chunk", type=int, default=65536,
                        help="target packets per replay slab")
    replay.add_argument("--mirror", default="dc",
                        choices=sorted(_MIRROR_CHOICES))
    replay.add_argument("--max-link-load", type=float, default=0.4)
    replay.add_argument("--topology", default=None,
                        choices=builtin_topology_names(),
                        help="override the topology recorded in the "
                             "store manifest")
    replay.add_argument("--dc-capacity", type=float, default=None,
                        help="override the DC capacity recorded in "
                             "the store manifest")
    replay.add_argument("--follow", action="store_true",
                        help="stream the store through the ingest "
                             "daemon's sketch estimator on the event "
                             "loop (a live-feed fixture) instead of "
                             "the signature emulation")
    replay.add_argument("--width", type=int, default=1024,
                        help="count-min width for --follow")
    replay.add_argument("--depth", type=int, default=4,
                        help="count-min depth for --follow")
    replay.add_argument("--workers", type=int, default=2,
                        help="ingest workers for --follow")
    replay.add_argument("--interval", type=float, default=0.05,
                        help="simulated seconds between chunk "
                             "arrivals for --follow")
    replay.add_argument("--seed", type=int, default=1,
                        help="sketch hash seed for --follow")

    lint = sub.add_parser(
        "lint",
        help="run the domain-aware static-analysis rules over the "
             "source tree (see docs/static-analysis.md)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to scan (default: "
                           "the repository's src/ tree)")
    lint.add_argument("--json", default=None, metavar="PATH",
                      help="write findings as JSON to PATH "
                           "('-' for stdout)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="suppress findings recorded in this "
                           "baseline file (default: "
                           "lint-baseline.json at the repo root, "
                           "when present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record the current findings into the "
                           "baseline file and exit 0")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule ids to run "
                           "(default: all)")
    lint.add_argument("--fix", action="store_true",
                      help="auto-fix mechanical findings in place "
                           "(HYG003 unused imports) before scanning")
    lint.add_argument("--check-baseline", action="store_true",
                      help="fail when the baseline contains entries "
                           "that no longer fire, so suppressions "
                           "cannot rot")

    racecheck = sub.add_parser(
        "racecheck",
        help="replay canned scenarios under schedule-perturbation "
             "seeds and assert fingerprint invariance (the dynamic "
             "side of the RACE/ORD lint rules)")
    racecheck.add_argument("scenarios", nargs="*", metavar="NAME",
                           help="canned scenario names (default: "
                                "all)")
    racecheck.add_argument("--seeds", type=int, default=8,
                           help="number of perturbation seeds "
                                "(default: 8)")
    racecheck.add_argument("--seed-base", type=int, default=0,
                           help="offset for the derived perturbation "
                                "seeds")
    racecheck.add_argument("--epochs", type=int, default=None,
                           help="override every scenario's epoch "
                                "count (smoke runs)")
    racecheck.add_argument("--topology", default=None,
                           help="override every scenario's topology "
                                "(e.g. tinet for smoke runs)")
    racecheck.add_argument("--json", default=None, metavar="PATH",
                           help="write the invariance report as "
                                "JSON to PATH ('-' for stdout)")
    racecheck.add_argument("--static", action="store_true",
                           help="also run the RACE/ORD/DET003 "
                                "static rules over src/ and embed "
                                "the findings in the report")
    racecheck.add_argument("--quiet", action="store_true",
                           help="suppress per-replay progress lines")
    return parser


def _cmd_topologies() -> int:
    rows = []
    for name in builtin_topology_names():
        topo = builtin_topology(name)
        mean_degree = 2.0 * topo.num_links / topo.num_nodes
        rows.append([name, topo.num_nodes, topo.num_links,
                     f"{mean_degree:.2f}", topo.diameter(),
                     f"{topo.mean_path_length():.2f}"])
    print(format_table(
        ["Topology", "PoPs", "Links", "Mean degree", "Diameter",
         "Mean path"],
        rows, title="Built-in evaluation topologies"))
    return 0


def _needs_dc(args) -> bool:
    return (args.formulation in ("split", "combined") or
            args.mirror in ("dc", "dc+one-hop"))


def _cmd_solve(args) -> int:
    dc_factor = args.dc_capacity if _needs_dc(args) else None
    setup = setup_topology(args.topology,
                           dc_capacity_factor=dc_factor)
    state = setup.state
    mirror = _MIRROR_CHOICES[args.mirror]()

    if args.formulation == "replication":
        result = ReplicationProblem(
            state, mirror_policy=mirror,
            max_link_load=args.max_link_load).solve()
        extra = [f"replicated classes: "
                 f"{sum(1 for c in state.classes if result.replicated_fraction(c.name) > 1e-6)}"]
    elif args.formulation == "nips":
        result = NIPSProblem(
            state, mirror_policy=mirror,
            max_link_load=args.max_link_load).solve()
        extra = [f"mean detour: {result.mean_extra_hops:.2f} hops"]
    elif args.formulation == "split":
        result = SplitTrafficProblem(
            state, max_link_load=args.max_link_load).solve()
        extra = [f"miss rate: {result.miss_rate:.2%}"]
    elif args.formulation == "aggregation":
        problem = AggregationProblem(state)
        beta = args.beta if args.beta is not None else \
            problem.suggested_beta()
        result = AggregationProblem(state, beta=beta).solve()
        extra = [f"beta: {beta:.3g}",
                 f"comm cost: {result.comm_cost:,.0f} byte-hops"]
    else:  # combined
        problem = CombinedProblem(state)
        beta = args.beta if args.beta is not None else \
            AggregationProblem(state).suggested_beta()
        result = CombinedProblem(
            state, beta=beta,
            max_link_load=args.max_link_load).solve()
        extra = [f"beta: {beta:.3g}",
                 f"comm cost: {result.comm_cost:,.0f} byte-hops"]

    print(f"{args.formulation} on {args.topology}: "
          f"LoadCost = {result.load_cost:.4f}")
    for line in extra:
        print(f"  {line}")
    print(f"  LP: {result.stats.num_variables} vars, "
          f"{result.stats.num_constraints} constraints, "
          f"solved in {result.stats.solve_seconds:.3f}s")
    loads = sorted(result.node_loads["cpu"].items(),
                   key=lambda kv: kv[1], reverse=True)[:args.top]
    print(format_table(
        ["Node", "Load"],
        [[node, f"{load:.4f}"] for node, load in loads],
        title=f"top {len(loads)} node loads"))
    return 0


def _cmd_compare(args) -> int:
    setup = setup_topology(args.topology)
    evaluator = ArchitectureEvaluator(
        setup.topology, setup.classes,
        dc_capacity_factor=args.dc_capacity,
        max_link_load=args.max_link_load)
    rows = []
    for kind in (ArchitectureKind.INGRESS,
                 ArchitectureKind.PATH_NO_REPLICATE,
                 ArchitectureKind.PATH_AUGMENTED,
                 ArchitectureKind.ONE_HOP,
                 ArchitectureKind.PATH_REPLICATE,
                 ArchitectureKind.DC_PLUS_ONE_HOP):
        result = evaluator.evaluate(kind)
        rows.append([kind.value, f"{result.load_cost:.4f}",
                     f"{result.dc_load():.4f}"])
    print(format_table(
        ["Architecture", "Max load", "DC load"], rows,
        title=f"architecture comparison on {args.topology} "
              f"(DC {args.dc_capacity:g}x, MaxLinkLoad "
              f"{args.max_link_load:g})"))
    return 0


def _cmd_stats(args) -> int:
    from repro.core.controller import NIDSController
    from repro.obs import MetricsRegistry, use_registry, write_jsonl
    from repro.simulation.emulation import Emulation
    from repro.simulation.tracegen import TraceGenerator, TraceSpec

    dc_factor = (args.dc_capacity
                 if args.mirror in ("dc", "dc+one-hop") else None)
    setup = setup_topology(args.topology,
                           dc_capacity_factor=dc_factor)
    state = setup.state
    with use_registry(MetricsRegistry()) as metrics:
        controller = NIDSController(
            state, mirror_policy=_MIRROR_CHOICES[args.mirror](),
            max_link_load=args.max_link_load)
        rollout = controller.refresh()
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=args.sessions),
            seed=args.seed)
        sessions = generator.generate(with_payloads=True)
        emulation = Emulation(state, rollout.configs,
                              generator.classifier)
        emulation.run_signature(sessions)

        snap = metrics.snapshot()
        print(format_table(
            ["Counter", "Value"],
            [[name, f"{value:g}"]
             for name, value in sorted(snap["counters"].items())],
            title=f"counters ({args.topology}, "
                  f"{args.sessions} sessions)"))
        print(format_table(
            ["Gauge", "Value"],
            [[name, f"{value:g}"]
             for name, value in sorted(snap["gauges"].items())],
            title="gauges"))
        rows = []
        for name, summary in sorted(snap["histograms"].items()):
            rows.append([name, f"{summary['count']:g}",
                         f"{summary['mean']:.6g}",
                         f"{summary['p50']:.6g}",
                         f"{summary['p95']:.6g}",
                         f"{summary['p99']:.6g}"])
        print(format_table(
            ["Histogram", "Count", "Mean", "p50", "p95", "p99"],
            rows, title="histograms"))
        if args.jsonl:
            try:
                count = write_jsonl(metrics, args.jsonl)
            except OSError as exc:
                print(f"error: cannot write {args.jsonl}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote {count} JSONL records to {args.jsonl}")
    return 0


def _parse_budgets(text: Optional[str]):
    if text is None:
        return None
    budgets = []
    for token in text.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token in ("inf", "none", "unbounded"):
            budgets.append(None)
            continue
        value = int(token)
        if value < 1:
            raise ValueError(f"budget {value} must be >= 1")
        budgets.append(value)
    if not budgets:
        raise ValueError("no budgets given")
    return budgets


def _parse_regions(text: Optional[str]):
    if text is None:
        return None
    regions = []
    for chunk in text.split(","):
        value = chunk.strip()
        if not value:
            continue
        count = int(value)
        if count < 1:
            raise ValueError(f"region count {count} must be >= 1")
        regions.append(count)
    if not regions:
        raise ValueError("no region counts given")
    return regions


def _cmd_shard_gap(args) -> int:
    from repro.experiments import (format_shard_gap, run_shard_gap,
                                   shard_gap_to_json)

    try:
        regions = _parse_regions(args.regions)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = {
        "topologies": args.topologies,
        "mirror": args.mirror,
        "max_link_load": args.max_link_load,
        "dc_capacity_factor": args.dc_capacity,
        "seed": args.seed,
        "jobs": args.jobs,
    }
    if regions is not None:
        kwargs["regions"] = regions
    series = run_shard_gap(**kwargs)
    print(format_shard_gap(series))
    if args.json:
        payload = shard_gap_to_json(series)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write {args.json}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote shard-gap comparison to {args.json}")
    return 0


def _parse_widths(text: Optional[str]):
    if text is None:
        return None
    widths = []
    for chunk in text.split(","):
        value = chunk.strip()
        if not value:
            continue
        width = int(value)
        if width < 1:
            raise ValueError(f"sketch width {width} must be >= 1")
        widths.append(width)
    if not widths:
        raise ValueError("no sketch widths given")
    return widths


def _cmd_sketch_gap(args) -> int:
    from repro.experiments import (format_sketch_gap, run_sketch_gap,
                                   sketch_gap_to_json)

    try:
        widths = _parse_widths(args.widths)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = {
        "topologies": args.topologies,
        "depth": args.depth,
        "mirror": args.mirror,
        "max_link_load": args.max_link_load,
        "dc_capacity_factor": args.dc_capacity,
        "sessions": args.sessions,
        "chunk_packets": args.chunk,
        "seed": args.seed,
        "workers": args.workers,
    }
    if widths is not None:
        kwargs["widths"] = widths
    series = run_sketch_gap(**kwargs)
    print(format_sketch_gap(series))
    if args.json:
        payload = sketch_gap_to_json(series)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write {args.json}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote sketch-gap sweep to {args.json}")
    return 0


def _cmd_budget_sweep(args) -> int:
    from repro.experiments import (format_budget_sweep,
                                   run_budget_sweep, sweep_to_json)

    try:
        budgets = _parse_budgets(args.budgets)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = {
        "topologies": args.topologies,
        "mirror": args.mirror,
        "max_link_load": args.max_link_load,
        "dc_capacity_factor": args.dc_capacity,
    }
    if budgets is not None:
        kwargs["budgets"] = budgets
    series = run_budget_sweep(**kwargs)
    print(format_budget_sweep(series))
    if args.json:
        payload = sweep_to_json(series)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write {args.json}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote sweep curves to {args.json}")
    return 0


def _cmd_scenario(args) -> int:
    from repro.obs import write_timeline_jsonl
    from repro.runtime.scenario import CANNED_SCENARIOS, run_scenario

    kwargs = {"topology": args.topology}
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    if args.seed is not None:
        kwargs["seed"] = args.seed
    scenario = CANNED_SCENARIOS[args.name](**kwargs)
    if args.strategy is not None:
        scenario = dataclasses.replace(scenario,
                                       strategy=args.strategy)
    report = run_scenario(scenario)

    rows = []
    for rec in report.records:
        rows.append([
            rec.epoch,
            rec.refresh_reason or "-",
            "; ".join(rec.faults) or "-",
            "ok" if rec.solve_ok else "FAIL",
            f"{rec.lp_load_cost:.4f}" if rec.lp_load_cost is not None
            else "-",
            f"{rec.coverage_min:.3f}",
            f"{rec.miss_rate:.4f}",
            f"{rec.duplication_max:.3f}",
            f"{rec.rollout_latency:.1f}s"
            if rec.rollout_latency is not None else "-",
            f"{rec.emulated_max_work:,.0f}",
        ])
    print(format_table(
        ["Epoch", "Refresh", "Faults", "Solve", "LoadCost",
         "MinCov", "Miss", "MaxDup", "Rollout", "MaxWork"],
        rows,
        title=f"scenario {scenario.name!r} on {scenario.topology} "
              f"({scenario.epochs} epochs, seed {scenario.seed})"))
    summary = report.summary()
    print(f"  refreshes: {summary['refreshes']}  "
          f"faults: {summary['faults_injected']}  "
          f"min coverage: {summary['min_coverage']:.3f}  "
          f"max duplication: {summary['max_duplication']:.3f}")
    print(f"  fingerprint: {report.fingerprint()[:16]}")

    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote report to {args.json}")
    if args.timeline:
        try:
            count = write_timeline_jsonl(
                report.timeline_rows(), args.timeline,
                source=f"scenario:{scenario.name}")
        except OSError as exc:
            print(f"error: cannot write {args.timeline}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {count} timeline records to {args.timeline}")
    return 0


def _follow_store(store, args) -> int:
    """``trace replay --follow``: the packed store as a live feed.

    Streams the store's chunks through an
    :class:`~repro.ingest.daemon.IngestDaemon` on the event loop at
    a fixed simulated inter-chunk interval, then reports the merged
    sketch's view against the store's exact per-class counts — the
    demo/test fixture for the streaming estimation path.
    """
    import numpy as np

    from repro.ingest import IngestDaemon
    from repro.obs import MetricsRegistry, use_registry
    from repro.runtime.events import EventLoop
    from repro.simulation.tracestore import ChunkedReplay

    batch = store.batch()
    class_names = list(batch.sessions.class_names)
    class_id = np.asarray(batch.sessions.class_id)
    counts = np.bincount(class_id[class_id >= 0],
                         minlength=len(class_names))
    exact = {name: float(count)
             for name, count in zip(class_names, counts)}

    replay = ChunkedReplay(batch, args.chunk)
    with use_registry(MetricsRegistry()):
        ingest = IngestDaemon(class_names, width=args.width,
                              depth=args.depth, seed=args.seed,
                              workers=args.workers)
        loop = EventLoop()
        ingest.stream(loop, iter(replay), start=0.0,
                      interval=args.interval)
        loop.run_all()
        snapshot = ingest.snapshot()
    errors = snapshot.estimate_errors(exact)
    stats = ingest.stats

    volumes = snapshot.class_volumes()
    top = sorted(zip(class_names, volumes),
                 key=lambda kv: kv[1], reverse=True)[:5]
    print(f"followed {stats.packets} packets "
          f"({stats.sessions} sessions) in {stats.chunks} chunk(s) "
          f"of <= {args.chunk} (+session alignment), one per "
          f"{args.interval}s of sim time")
    print(f"  sketch: width {args.width} x depth {args.depth}, "
          f"{args.workers} worker(s), {snapshot.state_bytes:,} "
          f"bytes of state")
    print(f"  resident high-water: "
          f"{stats.max_resident_bytes:,} bytes "
          f"(sketches + one chunk)")
    print(f"  estimate error: L1 {100.0 * errors['l1_rel']:.2f}% "
          f"relative, Linf {errors['linf']:.0f} sessions")
    print(format_table(
        ["Class", "Estimated sessions", "Exact"],
        [[name, f"{volume:,.0f}", f"{exact.get(name, 0.0):,.0f}"]
         for name, volume in top],
        title="top 5 estimated classes"))
    return 0


def _cmd_trace(args) -> int:
    from repro.simulation.tracestore import TraceStore, TraceStoreError

    if args.trace_command == "pack":
        from repro.simulation.tracegen import TraceGenerator, TraceSpec

        setup = setup_topology(args.topology,
                               dc_capacity_factor=args.dc_capacity)
        state = setup.state
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=args.sessions,
                           payload_sigma=args.payload_sigma,
                           scanner_count=args.scanners),
            seed=args.seed)
        batch = generator.generate_batch(tuple(state.nids_nodes),
                                         direct=True)
        try:
            store = TraceStore.pack(batch, args.path, meta={
                "topology": args.topology,
                "seed": str(args.seed),
                "sessions": str(args.sessions),
                "dc_capacity": str(args.dc_capacity),
            })
        except OSError as exc:
            print(f"error: cannot write {args.path}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"packed {store.num_packets} packets "
              f"({store.num_sessions} sessions, "
              f"{store.payload_bytes:,} payload bytes) "
              f"into {store.path}")
        print(f"  fingerprint: {store.fingerprint[:16]}")
        return 0

    try:
        store = TraceStore.open(args.path)
    except (TraceStoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.trace_command == "info":
        meta = store.manifest.get("meta", {})
        print(f"trace store {store.path}")
        print(f"  format: {store.manifest['format']} "
              f"v{store.manifest['version']}")
        print(f"  fingerprint: {store.fingerprint}")
        print(f"  sessions: {store.num_sessions}  "
              f"packets: {store.num_packets}  "
              f"payload bytes: {store.payload_bytes:,}")
        print(f"  classes: {len(store.manifest['class_names'])}  "
              f"nodes: {len(store.manifest['node_order'])}  "
              f"paths: {len(store.manifest['paths'])}  "
              f"hash seed: {store.manifest['hash_seed']}")
        if meta:
            pairs = ", ".join(f"{k}={v}"
                              for k, v in sorted(meta.items()))
            print(f"  meta: {pairs}")
        if args.verify:
            if store.verify():
                print("  verify: fingerprint OK")
            else:
                print("  verify: FINGERPRINT MISMATCH",
                      file=sys.stderr)
                return 1
        return 0

    # replay
    from repro.obs import MetricsRegistry, use_registry
    from repro.simulation.emulation import Emulation
    from repro.simulation.tracegen import PrefixClassifier
    from repro.simulation.tracestore import ChunkedReplay
    from repro.shim.config import build_replication_configs

    meta = store.manifest.get("meta", {})
    topology = args.topology or meta.get("topology")
    if topology is None:
        print("error: store manifest records no topology; pass "
              "--topology", file=sys.stderr)
        return 2
    dc_capacity = args.dc_capacity
    if dc_capacity is None:
        dc_capacity = float(meta.get("dc_capacity", 8.0))
    setup = setup_topology(topology, dc_capacity_factor=dc_capacity)
    state = setup.state
    if tuple(store.manifest["node_order"]) != \
            tuple(state.nids_nodes):
        print(f"error: store node order does not match topology "
              f"{topology!r} (was it packed against a different "
              f"topology or DC setting?)", file=sys.stderr)
        return 2
    if args.follow:
        return _follow_store(store, args)
    result = ReplicationProblem(
        state, mirror_policy=_MIRROR_CHOICES[args.mirror](),
        max_link_load=args.max_link_load).solve()
    configs = build_replication_configs(state, result)
    classifier = PrefixClassifier(state.topology.nodes, state.classes)
    emulation = Emulation(state, configs, classifier,
                          hash_seed=int(store.manifest["hash_seed"]))
    replay = ChunkedReplay(store.batch(), args.chunk)
    with use_registry(MetricsRegistry()) as metrics:
        report = emulation.run_signature_chunked(replay)
        pps = metrics.gauge_value("emulation.packets_per_second")
        bps = metrics.gauge_value("emulation.bytes_per_second")
    top = sorted(report.work_units.items(), key=lambda kv: kv[1],
                 reverse=True)[:5]
    print(f"replayed {report.packets_total} packets in "
          f"{replay.num_chunks} chunk(s) of <= {args.chunk} "
          f"(+session alignment)")
    print(f"  alerts: {report.alerts}  replicated: "
          f"{report.replicated_bytes:,.0f} bytes")
    print(f"  throughput: {pps:,.0f} packets/s, {bps:,.0f} bytes/s")
    print(format_table(
        ["Node", "Work units"],
        [[node, f"{work:,.0f}"] for node, work in top],
        title="top 5 node work"))
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        LintEngine,
        Severity,
        filter_baseline,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )

    # The installed package lives at <root>/src/repro; the project
    # root anchors both the default scan paths and the docs lookup.
    project_root = Path(__file__).resolve().parents[2]
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [project_root / "src"]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if args.fix:
        from repro.analysis import fix_file, iter_python_files

        fixed_files = 0
        removed_total = 0
        for file_path in iter_python_files(paths):
            result = fix_file(file_path)
            if result.changed:
                fixed_files += 1
                removed_total += len(result.removed)
                names = ", ".join(result.removed)
                print(f"fixed {file_path}: removed {names}")
        print(f"--fix removed {removed_total} unused import(s) "
              f"across {fixed_files} file(s)")

    rule_ids = (None if args.rules is None
                else [r.strip() for r in args.rules.split(",")])
    engine = LintEngine(project_root=project_root, rule_ids=rule_ids)
    findings = engine.run(paths)

    baseline_path = (Path(args.baseline) if args.baseline
                     else project_root / "lint-baseline.json")
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"recorded {len(findings)} finding(s) into "
              f"{baseline_path}")
        return 0

    stale: List[str] = []
    if baseline_path.exists():
        findings, stale = filter_baseline(
            findings, load_baseline(baseline_path))

    if args.json is not None:
        payload = render_json(findings)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n",
                                       encoding="utf-8")
            print(f"wrote {len(findings)} finding(s) to {args.json}")
    if args.json != "-":
        hint = ", ".join(str(p) for p in paths)
        print(render_text(findings, files_hint=hint))
    for key in stale:
        print(f"note: stale baseline entry (fixed? shrink the "
              f"baseline): {key}", file=sys.stderr)
    errors = sum(1 for f in findings
                 if f.severity is Severity.ERROR)
    if args.check_baseline and stale:
        print(f"error: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} no longer "
              "fire(s); remove them (repro lint --write-baseline "
              "regenerates the file)", file=sys.stderr)
        return 1
    return 1 if errors else 0


def _cmd_racecheck(args) -> int:
    from pathlib import Path

    from repro.runtime.racecheck import (
        concurrency_findings,
        racecheck_canned,
    )

    progress = None
    if not args.quiet:
        def progress(message: str) -> None:
            print(f"  {message}", file=sys.stderr)

    try:
        report = racecheck_canned(
            names=args.scenarios or None, seeds=args.seeds,
            seed_base=args.seed_base, epochs=args.epochs,
            topology=args.topology, progress=progress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.static:
        project_root = Path(__file__).resolve().parents[2]
        report.static_findings = concurrency_findings(project_root)

    payload = report.to_json()
    if args.json == "-":
        print(payload)
    elif args.json is not None:
        Path(args.json).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote racecheck report to {args.json}")
    if args.json != "-":
        rows = []
        for result in report.scenarios:
            status = ("invariant" if result.invariant else
                      f"DIVERGED under seeds {result.divergent_seeds}")
            rows.append([result.name, result.topology,
                         str(result.epochs),
                         result.baseline_fingerprint[:12], status])
        print(format_table(
            ["Scenario", "Topology", "Epochs", "Fingerprint",
             f"Across {len(report.seeds)} perturbation seeds"],
            rows, title="schedule-perturbation racecheck"))
        if report.static_findings is not None:
            print(f"static RACE/ORD/DET003 findings: "
                  f"{len(report.static_findings)}")
    if not report.all_invariant:
        print("error: scenario fingerprints diverged under "
              "schedule perturbation — a same-timestamp ordering "
              "race is live (cross-check the RACE/ORD lint rules)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_experiment(args) -> int:
    if args.name == "all":
        for name in sorted(_EXPERIMENTS):
            print(f"==== {name} ====")
            print(_EXPERIMENTS[name](args.jobs))
            print()
        return 0
    print(_EXPERIMENTS[args.name](args.jobs))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.solver is not None:
        from repro.lpsolve import set_default_backend

        set_default_backend(args.solver)
    if args.command == "topologies":
        return _cmd_topologies()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "budget-sweep":
        return _cmd_budget_sweep(args)
    if args.command == "shard-gap":
        return _cmd_shard_gap(args)
    if args.command == "sketch-gap":
        return _cmd_sketch_gap(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "racecheck":
        return _cmd_racecheck(args)
    return _cmd_experiment(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
