"""Discrete-event control-plane runtime.

Closed-loop simulation of a network-wide NIDS deployment over a
multi-epoch horizon: a controller daemon re-optimizing on periodic,
drift, and structural triggers; per-node agents receiving configs over
a lossy delayed channel; staged rollouts (overlap / two-phase /
direct) with transient-window coverage accounting; and a seeded fault
schedule. See :mod:`repro.runtime.scenario` for the entry point.
"""

from repro.runtime.agents import (
    Ack,
    ConfigMessage,
    MessageKind,
    NodeAgent,
    build_agents,
)
from repro.runtime.daemon import ControllerDaemon, RefreshRecord
from repro.runtime.events import Event, EventLoop, EventQueue, SimClock
from repro.runtime.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NetworkFaultState,
    cascading_failure_schedule,
    flash_crowd_schedule,
)
from repro.runtime.rollout import (
    ChannelSpec,
    ConfigChannel,
    CoverageReport,
    RolloutDriver,
    RolloutOutcome,
    RolloutSession,
    coverage_report,
)
from repro.runtime.scenario import (
    CANNED_SCENARIOS,
    EpochRecord,
    Scenario,
    ScenarioReport,
    cascading_failure_scenario,
    flash_crowd_scenario,
    run_scenario,
    steady_drift_scenario,
)

__all__ = [
    "Ack",
    "CANNED_SCENARIOS",
    "ChannelSpec",
    "ConfigChannel",
    "ConfigMessage",
    "ControllerDaemon",
    "CoverageReport",
    "EpochRecord",
    "Event",
    "EventLoop",
    "EventQueue",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "MessageKind",
    "NetworkFaultState",
    "NodeAgent",
    "RefreshRecord",
    "RolloutDriver",
    "RolloutOutcome",
    "RolloutSession",
    "Scenario",
    "ScenarioReport",
    "SimClock",
    "build_agents",
    "cascading_failure_schedule",
    "cascading_failure_scenario",
    "coverage_report",
    "flash_crowd_schedule",
    "flash_crowd_scenario",
    "run_scenario",
    "steady_drift_scenario",
]
