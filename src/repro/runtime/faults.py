"""Fault injection for scenario runs.

The paper motivates the whole controller loop with exactly these
events — routing changes, traffic shifts, appliance overload/failure
(Section 9). This module turns them into a declarative, seeded
schedule the runtime replays:

- ``NODE_DOWN`` / ``NODE_UP`` — an appliance dies (its classes are
  rerouted or dropped via :func:`repro.core.failures.fail_node`) and
  later recovers clean.
- ``DC_OUTAGE`` — the datacenter node dies: every mirror target
  vanishes at once, the worst case for replication architectures.
- ``LINK_CUT`` — a link is removed and its classes rerouted
  (:func:`repro.core.failures.fail_link`).
- ``TRAFFIC_SURGE`` — a flash crowd: classes matching a name prefix
  are scaled by a factor for a bounded number of epochs (the
  operational counterpart of the Section 9 slack discussion in
  :mod:`repro.core.robustness`).
- ``CONTROLLER_DOWN`` — a *regional controller* dies (sharded control
  plane only): the data plane is untouched, but the region's shard
  must be adopted by a neighboring controller and re-solved. The
  target names the dead region (``region-N``) or any node inside it.

:class:`NetworkFaultState` folds the currently active faults over a
baseline :class:`~repro.core.inputs.NetworkState`; the daemon detects
*structural* changes (node/link set changed) through
:meth:`NetworkFaultState.structural_signature` and rebuilds its
optimizer accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.failures import FailureImpact, fail_link, fail_node
from repro.core.inputs import NetworkState
from repro.topology.topology import canonical_link
from repro.traffic.classes import TrafficClass


class FaultKind(enum.Enum):
    """Supported injected events."""

    NODE_DOWN = "node-down"
    NODE_UP = "node-up"
    DC_OUTAGE = "dc-outage"
    LINK_CUT = "link-cut"
    TRAFFIC_SURGE = "traffic-surge"
    CONTROLLER_DOWN = "controller-down"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Args:
        epoch: epoch index at whose start the fault fires.
        kind: what happens.
        target: node name (``NODE_DOWN``/``NODE_UP``), ``"A|B"`` link
            spec (``LINK_CUT``), a class-name prefix — ``"*"`` for
            all classes — (``TRAFFIC_SURGE``), or a region/node name
            (``CONTROLLER_DOWN``). ``DC_OUTAGE`` needs no target.
        factor: surge multiplier (> 0).
        duration_epochs: surge lifetime; 0 means until the run ends.
    """

    epoch: int
    kind: FaultKind
    target: Optional[str] = None
    factor: float = 1.0
    duration_epochs: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")
        if self.kind is FaultKind.TRAFFIC_SURGE and self.factor <= 0:
            raise ValueError("surge factor must be positive")
        if self.kind in (FaultKind.NODE_DOWN, FaultKind.NODE_UP,
                         FaultKind.LINK_CUT,
                         FaultKind.CONTROLLER_DOWN) and not self.target:
            raise ValueError(f"{self.kind.value} needs a target")

    def describe(self) -> str:
        if self.kind is FaultKind.TRAFFIC_SURGE:
            scope = self.target or "*"
            life = (f" for {self.duration_epochs} epochs"
                    if self.duration_epochs else "")
            return f"surge x{self.factor:g} on {scope!r}{life}"
        if self.kind is FaultKind.DC_OUTAGE:
            return "datacenter outage"
        return f"{self.kind.value} {self.target}"


class FaultSchedule:
    """An ordered list of fault events, indexed by epoch."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events = sorted(events, key=lambda e: e.epoch)

    def __len__(self) -> int:
        return len(self.events)

    def at_epoch(self, epoch: int) -> List[FaultEvent]:
        """Events firing at the start of ``epoch`` (stable order)."""
        return [e for e in self.events if e.epoch == epoch]

    def last_epoch(self) -> int:
        return self.events[-1].epoch if self.events else 0


@dataclass
class _Surge:
    target: str
    factor: float
    until_epoch: Optional[int]  # exclusive; None = forever


@dataclass
class NetworkFaultState:
    """The cumulative effect of fired faults, foldable over a baseline."""

    dead_nodes: List[str] = field(default_factory=list)
    cut_links: List[Tuple[str, str]] = field(default_factory=list)
    surges: List[_Surge] = field(default_factory=list)
    dead_controllers: List[str] = field(default_factory=list)

    def apply(self, fault: FaultEvent,
              baseline: NetworkState) -> None:
        """Fold one fired fault into the state."""
        if fault.kind is FaultKind.NODE_DOWN:
            if fault.target not in self.dead_nodes:
                self.dead_nodes.append(fault.target)
        elif fault.kind is FaultKind.DC_OUTAGE:
            dc = baseline.dc_node
            if dc is None:
                raise ValueError(
                    "DC_OUTAGE on a state with no datacenter")
            if dc not in self.dead_nodes:
                self.dead_nodes.append(dc)
        elif fault.kind is FaultKind.NODE_UP:
            if fault.target in self.dead_nodes:
                self.dead_nodes.remove(fault.target)
        elif fault.kind is FaultKind.LINK_CUT:
            a, _, b = fault.target.partition("|")
            link = canonical_link(a, b)
            if link not in self.cut_links:
                self.cut_links.append(link)
        elif fault.kind is FaultKind.TRAFFIC_SURGE:
            until = (fault.epoch + fault.duration_epochs
                     if fault.duration_epochs else None)
            self.surges.append(_Surge(fault.target or "*",
                                      fault.factor, until))
        elif fault.kind is FaultKind.CONTROLLER_DOWN:
            # Control-plane only: no topology/traffic effect and no
            # entry in the structural signature — the runtime handles
            # shard adoption through the daemon.
            if fault.target not in self.dead_controllers:
                self.dead_controllers.append(fault.target)
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    def expire(self, epoch: int) -> None:
        """Drop surges whose lifetime ended before ``epoch``."""
        self.surges = [s for s in self.surges
                       if s.until_epoch is None or
                       epoch < s.until_epoch]

    def structural_signature(self
                             ) -> Tuple[FrozenSet[str],
                                        FrozenSet[Tuple[str, str]]]:
        """Changes iff the surviving node/link set changes — the
        daemon's trigger for a full optimizer rebuild."""
        return frozenset(self.dead_nodes), frozenset(self.cut_links)

    # -- folding over a baseline ------------------------------------------

    def surge_factor(self, class_name: str) -> float:
        factor = 1.0
        for surge in self.surges:
            if surge.target == "*" or \
                    class_name.startswith(surge.target):
                factor *= surge.factor
        return factor

    def scale_classes(self, classes: Sequence[TrafficClass]
                      ) -> List[TrafficClass]:
        """Apply active surge multipliers to a class list."""
        if not self.surges:
            return list(classes)
        return [cls.scaled(self.surge_factor(cls.name))
                for cls in classes]

    def materialize(self, state: NetworkState
                    ) -> Tuple[NetworkState, List[FailureImpact]]:
        """Fold dead nodes and cut links over ``state``.

        ``state`` should already carry the epoch's traffic (drift and
        surge applied), so the dropped/rerouted class accounting in the
        returned impacts reflects current volumes.

        Raises:
            ValueError: when a failure disconnects a class — the
                scenario is infeasible and should be redesigned.
        """
        impacts: List[FailureImpact] = []
        for node in sorted(self.dead_nodes):
            if node not in state.topology.nodes:
                continue
            state, impact = fail_node(state, node)
            impacts.append(impact)
        for link in sorted(self.cut_links):
            if link not in state.topology.links:
                continue
            state, impact = fail_link(state, *link)
            impacts.append(impact)
        return state, impacts


# -- canned schedule builders ----------------------------------------------


def cascading_failure_schedule(nodes: Sequence[str],
                               start_epoch: int = 2,
                               spacing: int = 2,
                               recover_epoch: Optional[int] = None
                               ) -> FaultSchedule:
    """Nodes dying one after another, optionally all recovering later."""
    events = [FaultEvent(start_epoch + i * spacing,
                         FaultKind.NODE_DOWN, node)
              for i, node in enumerate(nodes)]
    if recover_epoch is not None:
        events.extend(FaultEvent(recover_epoch, FaultKind.NODE_UP,
                                 node) for node in nodes)
    return FaultSchedule(events)


def flash_crowd_schedule(prefix: str, factor: float,
                         start_epoch: int,
                         duration_epochs: int) -> FaultSchedule:
    """A bounded traffic surge on classes matching ``prefix``."""
    return FaultSchedule([FaultEvent(
        start_epoch, FaultKind.TRAFFIC_SURGE, prefix,
        factor=factor, duration_epochs=duration_epochs)])
