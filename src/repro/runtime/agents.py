"""Per-node NIDS agents: config mailboxes and install semantics.

Each PoP's shim is represented by a :class:`NodeAgent` that the
simulated control plane talks to through :class:`ConfigMessage`
deliveries. The agent owns the node's *actual* running configuration
— which, because messages propagate with delay and loss, can lag the
controller's notion of "current". The emulation ground truth replays
each epoch against :meth:`NodeAgent.effective_config`, so the transient
windows the paper worries about (Section 9, "Consistent
configurations") are visible in measured coverage, not just asserted.

Install semantics mirror :mod:`repro.core.transitions`:

- ``INSTALL`` — switch to the new config immediately (bootstrap and
  structural rollouts, where there is no old config worth honoring).
- ``OVERLAP_INSTALL`` / ``RETIRE`` — the overlap protocol: on install
  the agent runs the *union* of its running and new rules; on retire it
  drops the old half.
- ``PREPARE`` / ``COMMIT`` / ``ABORT`` — two-phase commit: prepare
  stages without activating (voting NO when the staged config exceeds
  the agent's rule capacity), commit switches atomically per node.
- ``DELTA_INSTALL`` / ``DELTA_RETIRE`` — incremental rollouts: the
  controller ships only the rule-level difference from the previous
  epoch (:mod:`repro.shim.diff`). Installs are added to the running
  table (growing it, overlap-style, so coverage never drops);
  retires are applied only after the driver saw every node
  acknowledge. An agent with *no* running table refuses a delta
  (``ok=False``) — there is nothing to patch — and the driver falls
  back to a full install for that node.

Dead agents (see :mod:`repro.runtime.faults`) acknowledge nothing;
the channel's retransmission timer keeps trying until recovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.transitions import union_config
from repro.shim.config import ShimConfig
from repro.shim.diff import ConfigDelta, apply_delta


class MessageKind(enum.Enum):
    """Control-plane message types an agent understands."""

    INSTALL = "install"
    OVERLAP_INSTALL = "overlap-install"
    RETIRE = "retire"
    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"
    DELTA_INSTALL = "delta-install"
    DELTA_RETIRE = "delta-retire"


@dataclass(frozen=True)
class ConfigMessage:
    """One config-distribution message addressed to one node.

    ``version`` is the controller's rollout generation; retransmitted
    duplicates share a version, so agents can apply idempotently.
    Full-table messages carry ``config``; incremental messages carry
    ``delta`` instead.
    """

    kind: MessageKind
    version: int
    node: str
    config: Optional[ShimConfig] = None
    delta: Optional[ConfigDelta] = None


@dataclass(frozen=True)
class Ack:
    """An agent's acknowledgement of an applied message."""

    node: str
    version: int
    kind: MessageKind
    ok: bool
    time: float


@dataclass
class MailboxEntry:
    """One delivered message, for timeline accounting."""

    time: float
    message: ConfigMessage
    applied: bool


class NodeAgent:
    """The control-plane endpoint at one NIDS node.

    Args:
        name: node name.
        capacity: finite per-resource capacity ``Cap_j^r`` (used by the
            scenario accounting to normalize measured work).
        config: the initially running configuration, if any.
        rule_capacity: maximum installable rule count; a config (or
            union) exceeding it is refused — the agent acks ``ok=False``
            or votes NO, modeling the paper's unreachable/out-of-memory
            participant.
    """

    def __init__(self, name: str, capacity: Dict[str, float],
                 config: Optional[ShimConfig] = None,
                 rule_capacity: Optional[int] = None) -> None:
        self.name = name
        self.capacity = dict(capacity)
        self.alive = True
        self.rule_capacity = rule_capacity
        self._active: Optional[ShimConfig] = config
        self._overlap_new: Optional[ShimConfig] = None
        self._staged: Optional[ShimConfig] = None
        self._applied_versions: Dict[MessageKind, int] = {}
        self.mailbox: List[MailboxEntry] = []
        self.installs = 0

    # -- liveness ---------------------------------------------------------

    def fail(self) -> None:
        """The node dies: it stops processing messages. Its installed
        configuration is lost (appliances reboot clean)."""
        self.alive = False
        self._active = None
        self._overlap_new = None
        self._staged = None

    def recover(self, config: Optional[ShimConfig] = None) -> None:
        """Bring the node back, optionally with a baseline config."""
        self.alive = True
        self._active = config

    # -- what the data plane runs ----------------------------------------

    def effective_config(self) -> Optional[ShimConfig]:
        """The configuration the node's shim currently enforces.

        During an overlap transient this is the old/new union; a dead
        node enforces nothing.
        """
        if not self.alive:
            return None
        if self._overlap_new is not None:
            if self._active is None:
                return self._overlap_new
            return union_config(self._active, self._overlap_new)
        return self._active

    @property
    def running_rules(self) -> int:
        config = self.effective_config()
        return config.num_rules if config is not None else 0

    def _fits(self, config: ShimConfig) -> bool:
        return (self.rule_capacity is None or
                config.num_rules <= self.rule_capacity)

    # -- message handling -------------------------------------------------

    def deliver(self, message: ConfigMessage, now: float
                ) -> Optional[Ack]:
        """Apply one message; returns the ack, or ``None`` when dead.

        Duplicate deliveries of an already-applied (kind, version) are
        re-acked without re-applying, so lossy-channel retransmissions
        are harmless.
        """
        if not self.alive:
            return None
        if message.node != self.name:
            raise ValueError(
                f"message for {message.node!r} delivered to "
                f"{self.name!r}")
        already = self._applied_versions.get(message.kind)
        if already is not None and already >= message.version:
            self.mailbox.append(MailboxEntry(now, message, False))
            return Ack(self.name, message.version, message.kind,
                       True, now)
        ok = self._apply(message)
        if ok:
            self._applied_versions[message.kind] = message.version
        self.mailbox.append(MailboxEntry(now, message, ok))
        return Ack(self.name, message.version, message.kind, ok, now)

    def _apply(self, message: ConfigMessage) -> bool:
        kind = message.kind
        if kind is MessageKind.INSTALL:
            if message.config is None or not self._fits(message.config):
                return False
            self._active = message.config
            self._overlap_new = None
            self.installs += 1
            return True
        if kind is MessageKind.OVERLAP_INSTALL:
            if message.config is None:
                return False
            union_rules = message.config.num_rules + (
                self._active.num_rules if self._active else 0)
            if (self.rule_capacity is not None and
                    union_rules > self.rule_capacity):
                return False
            self._overlap_new = message.config
            self.installs += 1
            return True
        if kind is MessageKind.RETIRE:
            if self._overlap_new is not None:
                self._active = self._overlap_new
                self._overlap_new = None
            return True
        if kind is MessageKind.PREPARE:
            if message.config is None or not self._fits(message.config):
                return False
            self._staged = message.config
            return True
        if kind is MessageKind.COMMIT:
            if self._staged is None:
                return False
            self._active = self._staged
            self._staged = None
            self.installs += 1
            return True
        if kind is MessageKind.ABORT:
            self._staged = None
            return True
        if kind is MessageKind.DELTA_INSTALL:
            if message.delta is None or self._active is None:
                # No base table to patch (fresh/recovered node):
                # refuse so the driver falls back to a full install.
                return False
            grown = apply_delta(
                self._active,
                ConfigDelta(node=self.name,
                            installs=message.delta.installs))
            if not self._fits(grown):
                return False
            self._active = grown
            self.installs += 1
            return True
        if kind is MessageKind.DELTA_RETIRE:
            if message.delta is None:
                return False
            if self._active is not None:
                self._active = apply_delta(
                    self._active,
                    ConfigDelta(node=self.name,
                                retires=message.delta.retires))
            return True
        raise ValueError(f"unknown message kind {kind!r}")


def build_agents(node_capacity: Dict[str, Dict[str, float]],
                 configs: Optional[Dict[str, ShimConfig]] = None,
                 rule_capacity: Optional[int] = None
                 ) -> Dict[str, NodeAgent]:
    """One agent per node of a ``{resource: {node: cap}}`` capacity map."""
    nodes = sorted({node for caps in node_capacity.values()
                    for node in caps})
    agents = {}
    for node in nodes:
        capacity = {resource: caps[node]
                    for resource, caps in node_capacity.items()
                    if node in caps}
        config = configs.get(node) if configs else None
        agents[node] = NodeAgent(node, capacity, config,
                                 rule_capacity=rule_capacity)
    return agents
