"""Schedule-perturbation determinism verification (``repro racecheck``).

The runtime's bit-reproducibility rests on two legs: every random
draw descends from ``Scenario.seed``, and same-timestamp events fire
in insertion (``seq``) order. The second leg is fragile — it holds
only as long as no observable depends on *which* same-instant event
fires first. This module stress-tests that contract dynamically: it
replays a scenario once on the standard :class:`~repro.runtime.events.EventLoop`
and then under N :class:`~repro.runtime.events.PerturbedEventLoop`
seeds, each of which shuffles same-instant events into a different
legal order, and asserts every run produces the identical
:meth:`~repro.runtime.scenario.ScenarioReport.fingerprint`.

A divergence means some event handler communicates through ordering —
a shared accumulator, a sequence-consumed RNG, a last-writer-wins
config install — and must correspond to a static finding from the
concurrency rule pack (:mod:`repro.analysis.rules.concurrency`);
conversely every RACE/ORD finding that is *not* pragma-justified
should be reproducible here. The CI ``racecheck-smoke`` job runs all
canned scenarios under 8 perturbation seeds and publishes the JSON
report as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import get_registry
from repro.runtime.events import EventLoop, PerturbedEventLoop
from repro.runtime.scenario import (
    CANNED_SCENARIOS,
    Scenario,
    run_scenario,
)

#: perturbation seeds are derived from this stride so scenario seeds
#: and perturbation seeds never collide by construction
PERTURB_SEED_STRIDE = 7741


def perturbation_seeds(count: int, base: int = 0) -> List[int]:
    """``count`` distinct perturbation seeds starting at ``base``."""
    if count < 1:
        raise ValueError("need at least one perturbation seed")
    return [base + i * PERTURB_SEED_STRIDE + 1 for i in range(count)]


@dataclass
class ScenarioRacecheck:
    """Fingerprint invariance evidence for one scenario."""

    name: str
    topology: str
    epochs: int
    scenario_seed: int
    baseline_fingerprint: str
    perturbed_fingerprints: Dict[int, str] = field(default_factory=dict)

    @property
    def divergent_seeds(self) -> List[int]:
        """Perturbation seeds whose run diverged from the baseline."""
        return sorted(
            seed for seed, fingerprint
            in self.perturbed_fingerprints.items()
            if fingerprint != self.baseline_fingerprint)

    @property
    def invariant(self) -> bool:
        """True when every perturbed replay reproduced the baseline."""
        return not self.divergent_seeds

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "epochs": self.epochs,
            "scenario_seed": self.scenario_seed,
            "baseline_fingerprint": self.baseline_fingerprint,
            "perturbed_fingerprints": {
                str(seed): fingerprint for seed, fingerprint
                in sorted(self.perturbed_fingerprints.items())},
            "divergent_seeds": self.divergent_seeds,
            "invariant": self.invariant,
        }


@dataclass
class RacecheckReport:
    """The full verifier outcome across scenarios."""

    seeds: List[int]
    scenarios: List[ScenarioRacecheck]
    static_findings: Optional[List[Dict]] = None

    @property
    def all_invariant(self) -> bool:
        return all(s.invariant for s in self.scenarios)

    def to_dict(self) -> Dict:
        out: Dict = {
            "schema": 1,
            "perturbation_seeds": list(self.seeds),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "all_invariant": self.all_invariant,
        }
        if self.static_findings is not None:
            out["static_findings"] = self.static_findings
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)


def racecheck_scenario(scenario: Scenario,
                       seeds: Sequence[int],
                       progress: Optional[Callable[[str], None]] = None
                       ) -> ScenarioRacecheck:
    """Replay one scenario under every perturbation seed.

    The baseline run uses the standard seq-tie-break loop; each
    perturbed run swaps in a :class:`PerturbedEventLoop` whose
    same-instant ordering is shuffled by ``seed``. All runs share the
    scenario's own seed, so any fingerprint difference is attributable
    purely to event ordering.
    """
    metrics = get_registry()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    note(f"{scenario.name}: baseline replay")
    baseline = run_scenario(scenario, loop_factory=EventLoop)
    result = ScenarioRacecheck(
        name=scenario.name,
        topology=scenario.topology,
        epochs=scenario.epochs,
        scenario_seed=scenario.seed,
        baseline_fingerprint=baseline.fingerprint())
    for seed in seeds:
        note(f"{scenario.name}: perturbation seed {seed}")

        def make_loop(perturb_seed: int = seed) -> EventLoop:
            return PerturbedEventLoop(perturb_seed)

        report = run_scenario(scenario, loop_factory=make_loop)
        result.perturbed_fingerprints[seed] = report.fingerprint()
        metrics.inc("racecheck.replays")
    if not result.invariant:
        metrics.inc("racecheck.divergences",
                    len(result.divergent_seeds))
    return result


def racecheck_canned(names: Optional[Sequence[str]] = None,
                     seeds: int = 8,
                     seed_base: int = 0,
                     epochs: Optional[int] = None,
                     topology: Optional[str] = None,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> RacecheckReport:
    """Run the verifier over the canned scenario library.

    Args:
        names: scenario names (default: every canned scenario).
        seeds: how many perturbation seeds to replay under.
        seed_base: offset for the derived perturbation seeds.
        epochs: optional epoch-count override (smoke runs).
        topology: optional topology override, forwarded to each
            scenario factory.
        progress: optional per-replay progress callback.
    """
    chosen = sorted(CANNED_SCENARIOS) if names is None else list(names)
    unknown = [name for name in chosen
               if name not in CANNED_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; "
            f"choose from {sorted(CANNED_SCENARIOS)}")
    seed_list = perturbation_seeds(seeds, seed_base)
    results = []
    for name in chosen:
        kwargs: Dict = {}
        if topology is not None:
            kwargs["topology"] = topology
        if epochs is not None:
            kwargs["epochs"] = epochs
        scenario = CANNED_SCENARIOS[name](**kwargs)
        results.append(racecheck_scenario(scenario, seed_list,
                                          progress=progress))
    return RacecheckReport(seeds=seed_list, scenarios=results)


def concurrency_findings(project_root) -> List[Dict]:
    """The static half of the cross-check: RACE/ORD/DET003 findings
    over ``src/`` as plain dicts (empty on a clean tree)."""
    from pathlib import Path

    from repro.analysis import LintEngine
    from repro.analysis.rules.concurrency import CONCURRENCY_RULE_IDS

    root = Path(project_root)
    engine = LintEngine(project_root=root,
                        rule_ids=list(CONCURRENCY_RULE_IDS))
    return [finding.to_json()
            for finding in engine.run([root / "src"])]
