"""Config distribution: lossy delayed channel + staged rollouts.

Pushing a new assignment to every shim is not atomic (Section 9). This
module models the push: a :class:`ConfigChannel` with per-message
propagation delay, jitter-induced reordering, loss, and
timeout-retransmission; and a :class:`RolloutDriver` that moves a
controller refresh through one of three strategies:

- ``overlap`` — the paper's preferred transition: ship
  ``OVERLAP_INSTALL`` (node runs old+new union), and once every node
  acknowledged, ship ``RETIRE``. Coverage never drops; duplicated work
  during the transient is measured, not assumed.
- ``two-phase`` — classic 2PC (``PREPARE``/``COMMIT``): no duplicated
  work, but per-node commit instants differ, so hash ranges that moved
  between nodes are transiently unowned — the coverage gap the paper
  warns about, made observable.
- ``direct`` — fire-and-forget ``INSTALL``, used for bootstrap and
  structural (node-set-changing) rollouts where there is no old
  configuration worth honoring.
- ``delta`` — the incremental variant of ``overlap``: instead of
  full tables, each node receives only the rule-level difference
  from its previous config (:mod:`repro.shim.diff`) — installs
  first (the running table only grows, so coverage never drops),
  retires after every node acknowledged. Nodes whose tables are
  already exact are skipped outright; a node that cannot patch
  (e.g. rebooted clean) refuses and gets a full install instead.
  Strictly fewer rules cross the channel on steady drift, shrinking
  both rollout traffic and the vulnerable transient window.

:func:`coverage_report` is the accounting half: given the *actually
installed* per-node configs at any instant, it computes each class's
covered fraction of hash space and the duplicated-work fraction, both
traffic-weighted — the quantities the scenario timeline records during
transient windows.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.transitions import OverlapTransition, TransitionPhase
from repro.obs import get_registry
from repro.runtime.agents import (
    Ack,
    ConfigMessage,
    MessageKind,
    NodeAgent,
)
from repro.runtime.events import EventLoop
from repro.shim.config import ShimConfig
from repro.shim.diff import ConfigDelta, diff_configs
from repro.traffic.classes import TrafficClass


@dataclass(frozen=True)
class ChannelSpec:
    """Propagation model for the controller-to-shim channel.

    Args:
        base_delay: minimum one-way latency in simulated seconds.
        jitter: extra uniform latency in ``[0, jitter)`` — unequal
            draws reorder messages sent back-to-back.
        loss: per-message drop probability (forward path; acks ride a
            reliable path, retransmission covers lost installs).
        retransmit_timeout: how long the sender waits for an ack
            before re-sending.
        max_retries: retransmissions per message before giving up
            (a node dead longer than ``max_retries * timeout`` misses
            the rollout; the next refresh will cover it).
    """

    base_delay: float = 1.0
    jitter: float = 0.0
    loss: float = 0.0
    retransmit_timeout: float = 10.0
    max_retries: int = 50

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be positive")


#: stable per-kind indices for the keyed message RNG (enum definition
#: order; appending new kinds keeps old keys stable)
_KIND_INDEX = {kind: index for index, kind in enumerate(MessageKind)}


class ConfigChannel:
    """Seeded message transport between controller and agents.

    All randomness (latency draws, loss coin-flips) is *keyed*, not
    streamed: every ``(message, attempt)`` derives its own generator
    from ``(channel seed, node, version, kind, attempt)``, counter-mode
    style. A shared generator consumed in dispatch order would make
    delivery schedules depend on how same-timestamp events happen to
    be ordered — exactly the seq-tie-break race ``repro racecheck``
    perturbs for — whereas keyed draws give every retransmission the
    same coin flips no matter which of its same-instant siblings fired
    first. Replays with the same channel seed produce the identical
    delivery schedule under *any* legal event ordering.
    """

    def __init__(self, spec: ChannelSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.sent = 0
        self.lost = 0
        self.retransmits = 0

    def _message_rng(self, message: ConfigMessage,
                     attempt: int) -> np.random.Generator:
        """The keyed generator for one delivery attempt."""
        node_key = zlib.crc32(message.node.encode("utf-8"))
        return np.random.default_rng(
            [self.seed & 0xFFFFFFFF, node_key, message.version,
             _KIND_INDEX[message.kind], attempt])

    def _latency(self, rng: np.random.Generator) -> float:
        if self.spec.jitter <= 0:
            return self.spec.base_delay
        return self.spec.base_delay + float(
            rng.uniform(0.0, self.spec.jitter))

    def send(self, loop: EventLoop, agent: NodeAgent,
             message: ConfigMessage,
             on_ack: Callable[[Ack], None],
             _attempt: int = 0) -> None:
        """Ship one message; ``on_ack`` fires when the ack returns.

        Lost messages and deliveries to dead nodes are retransmitted
        after the timeout, up to ``max_retries`` attempts.
        """
        self.sent += 1
        if _attempt > 0:
            self.retransmits += 1
            get_registry().inc("runtime.channel.retransmits")

        # All three draws happen up front from the keyed stream so a
        # delivery's fate is fixed at send time, independent of how
        # same-instant events interleave.
        rng = self._message_rng(message, _attempt)
        dropped = (self.spec.loss > 0 and
                   float(rng.random()) < self.spec.loss)
        latency = self._latency(rng)
        ack_latency = self._latency(rng)

        def _retry() -> None:
            if _attempt < self.spec.max_retries:
                self.send(loop, agent, message, on_ack,
                          _attempt=_attempt + 1)

        if dropped:
            self.lost += 1
            get_registry().inc("runtime.channel.lost")
            loop.schedule_in(self.spec.retransmit_timeout, _retry)
            return

        def _deliver() -> None:
            ack = agent.deliver(message, loop.now)
            if ack is None:  # dead node: wait and re-send
                loop.schedule_in(self.spec.retransmit_timeout, _retry)
                return
            loop.schedule_in(ack_latency, lambda: on_ack(ack))

        loop.schedule_in(latency, _deliver)


class RolloutOutcome(enum.Enum):
    IN_FLIGHT = "in-flight"
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass
class RolloutSession:
    """Progress record of one rollout through the channel."""

    version: int
    strategy: str
    started_at: float
    completed_at: Optional[float] = None
    retired_at: Optional[float] = None
    outcome: RolloutOutcome = RolloutOutcome.IN_FLIGHT
    acked_nodes: Set[str] = field(default_factory=set)
    refused_nodes: Set[str] = field(default_factory=set)
    #: rules carried by the messages this rollout sent (full tables
    #: for install/overlap/prepare, rule-level deltas for the delta
    #: strategy) — the churn a rollout puts on the control channel.
    rules_shipped: int = 0
    #: rules *installed* into agent tables (shipped minus retires —
    #: the table-write churn; for full-table strategies the two
    #: counts coincide).
    rules_installed: int = 0
    #: delta strategy only: total install+retire rules across nodes.
    delta_rules: Optional[int] = None
    #: delta strategy only: rules a full-table rollout would ship.
    full_rules: Optional[int] = None
    #: delta-strategy nodes that refused the patch and were re-sent
    #: their full table.
    fallback_nodes: Set[str] = field(default_factory=set)

    @property
    def latency(self) -> Optional[float]:
        """Simulated seconds from start to completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class RolloutDriver:
    """Runs rollouts over a channel, one strategy per driver."""

    STRATEGIES = ("overlap", "two-phase", "direct", "delta")

    def __init__(self, channel: ConfigChannel,
                 strategy: str = "overlap") -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"choose from {self.STRATEGIES}")
        self.channel = channel
        self.strategy = strategy
        self._version = 0

    def start(self, loop: EventLoop, agents: Dict[str, NodeAgent],
              configs: Dict[str, ShimConfig],
              transition: Optional[OverlapTransition] = None,
              on_complete: Optional[Callable[[RolloutSession],
                                             None]] = None
              ) -> RolloutSession:
        """Begin distributing ``configs`` to ``agents``.

        ``transition`` (from :meth:`NIDSController.refresh`) selects
        the overlap protocol when the driver's strategy is ``overlap``
        and there is an old configuration; bootstrap/structural pushes
        (``transition is None``) always go direct.
        """
        self._version += 1
        strategy = self.strategy
        if transition is None and strategy in ("overlap", "delta"):
            strategy = "direct"
        session = RolloutSession(version=self._version,
                                 strategy=strategy,
                                 started_at=loop.now)
        targets = sorted(set(configs) & set(agents))

        def _finish(outcome: RolloutOutcome) -> None:
            session.outcome = outcome
            session.completed_at = loop.now
            metrics = get_registry()
            metrics.observe("runtime.rollout.seconds",
                            session.completed_at - session.started_at)
            metrics.inc("runtime.rollouts")
            if on_complete is not None:
                on_complete(session)

        if strategy == "direct":
            self._run_direct(loop, agents, configs, targets, session,
                             _finish)
        elif strategy == "overlap":
            assert transition is not None
            self._run_overlap(loop, agents, configs, targets, session,
                              transition, _finish)
        elif strategy == "delta":
            assert transition is not None
            self._run_delta(loop, agents, configs, targets, session,
                            transition, _finish)
        else:
            self._run_two_phase(loop, agents, configs, targets,
                                session, _finish)
        return session

    # -- strategies -------------------------------------------------------

    def _run_direct(self, loop, agents, configs, targets, session,
                    finish) -> None:
        pending = set(targets)

        def on_ack(ack: Ack) -> None:
            if not ack.ok:
                session.refused_nodes.add(ack.node)
            session.acked_nodes.add(ack.node)
            pending.discard(ack.node)
            if not pending and session.completed_at is None:
                finish(RolloutOutcome.COMPLETED)

        for node in targets:
            session.rules_shipped += configs[node].num_rules
            session.rules_installed += configs[node].num_rules
            self.channel.send(loop, agents[node], ConfigMessage(
                MessageKind.INSTALL, session.version, node,
                configs[node]), on_ack)
        if not targets:
            finish(RolloutOutcome.COMPLETED)

    def _run_overlap(self, loop, agents, configs, targets, session,
                     transition, finish) -> None:
        if transition.phase is TransitionPhase.IDLE:
            transition.begin()

        def on_retire_ack(ack: Ack) -> None:
            session.acked_nodes.discard(ack.node)
            if not session.acked_nodes and session.retired_at is None:
                session.retired_at = loop.now

        def on_ack(ack: Ack) -> None:
            if not ack.ok:
                session.refused_nodes.add(ack.node)
                return  # refused installs keep the transition open
            if ack.node in session.acked_nodes:
                return
            session.acked_nodes.add(ack.node)
            if ack.node in transition.pending_nodes:
                transition.acknowledge(ack.node)
            if transition.phase is TransitionPhase.COMPLETE and \
                    session.completed_at is None:
                finish(RolloutOutcome.COMPLETED)
                # Every node confirmed the new config; old rules can
                # now be dropped everywhere.
                for node in sorted(session.acked_nodes):
                    self.channel.send(loop, agents[node], ConfigMessage(
                        MessageKind.RETIRE, session.version, node),
                        on_retire_ack)

        for node in targets:
            session.rules_shipped += configs[node].num_rules
            session.rules_installed += configs[node].num_rules
            self.channel.send(loop, agents[node], ConfigMessage(
                MessageKind.OVERLAP_INSTALL, session.version, node,
                configs[node]), on_ack)

    def _run_delta(self, loop, agents, configs, targets, session,
                   transition, finish) -> None:
        """Incremental overlap: ship per-node rule deltas, installs
        first; retires go out only after every node acknowledged, so
        no hash point loses its owner mid-rollout."""
        if transition.phase is TransitionPhase.IDLE:
            transition.begin()
        deltas = diff_configs(
            {node: transition.old_configs[node] for node in targets
             if node in transition.old_configs},
            {node: configs[node] for node in targets})
        session.delta_rules = sum(d.num_rules
                                  for d in deltas.values())
        session.full_rules = sum(configs[node].num_rules
                                 for node in targets)

        def on_retire_ack(ack: Ack) -> None:
            session.acked_nodes.discard(ack.node)
            if not session.acked_nodes and session.retired_at is None:
                session.retired_at = loop.now

        def _acknowledge(node: str) -> None:
            if node in session.acked_nodes:
                return
            session.acked_nodes.add(node)
            if node in transition.pending_nodes:
                transition.acknowledge(node)
            if transition.phase is TransitionPhase.COMPLETE and \
                    session.completed_at is None:
                finish(RolloutOutcome.COMPLETED)
                # Everyone runs the new rules; old rules can go. A
                # node that fell back to a full overlap install holds
                # old+new tables and needs a plain RETIRE promote; the
                # rest retire their stale rules by delta.
                for node in sorted(session.acked_nodes):
                    if node in session.fallback_nodes:
                        self.channel.send(
                            loop, agents[node],
                            ConfigMessage(MessageKind.RETIRE,
                                          session.version, node),
                            on_retire_ack)
                        continue
                    delta = deltas[node]
                    if not delta.retires:
                        on_retire_ack(Ack(node, session.version,
                                          MessageKind.DELTA_RETIRE,
                                          True, loop.now))
                        continue
                    session.rules_shipped += len(delta.retires)
                    self.channel.send(
                        loop, agents[node],
                        ConfigMessage(
                            MessageKind.DELTA_RETIRE,
                            session.version, node,
                            delta=ConfigDelta(
                                node=node,
                                retires=delta.retires)),
                        on_retire_ack)

        def on_full_ack(ack: Ack) -> None:
            if not ack.ok:
                session.refused_nodes.add(ack.node)
                return
            _acknowledge(ack.node)

        def on_ack(ack: Ack) -> None:
            if not ack.ok:
                # The node could not patch (no base table, or the
                # grown table overflows capacity): fall back to one
                # full-table overlap install for this node.
                if ack.node in session.fallback_nodes:
                    session.refused_nodes.add(ack.node)
                    return
                session.fallback_nodes.add(ack.node)
                session.rules_shipped += configs[ack.node].num_rules
                session.rules_installed += configs[ack.node].num_rules
                self.channel.send(loop, agents[ack.node],
                                  ConfigMessage(
                                      MessageKind.OVERLAP_INSTALL,
                                      session.version, ack.node,
                                      configs[ack.node]),
                                  on_full_ack)
                return
            _acknowledge(ack.node)

        for node in targets:
            delta = deltas[node]
            if delta.is_empty:
                # The table is already exact — nothing to ship.
                _acknowledge(node)
                continue
            session.rules_shipped += len(delta.installs)
            session.rules_installed += len(delta.installs)
            self.channel.send(
                loop, agents[node],
                ConfigMessage(MessageKind.DELTA_INSTALL,
                              session.version, node,
                              delta=ConfigDelta(
                                  node=node,
                                  installs=delta.installs)),
                on_ack)

    def _run_two_phase(self, loop, agents, configs, targets, session,
                       finish) -> None:
        votes: Dict[str, bool] = {}
        committed: Set[str] = set()

        def on_commit_ack(ack: Ack) -> None:
            committed.add(ack.node)
            session.acked_nodes.add(ack.node)
            if len(committed) == len(targets) and \
                    session.completed_at is None:
                finish(RolloutOutcome.COMPLETED)

        def on_abort_ack(ack: Ack) -> None:
            return None

        def on_vote(ack: Ack) -> None:
            if ack.node in votes:
                return
            votes[ack.node] = ack.ok
            if not ack.ok:
                session.refused_nodes.add(ack.node)
            if len(votes) < len(targets):
                return
            if all(votes.values()):
                for node in targets:
                    self.channel.send(loop, agents[node],
                                      ConfigMessage(MessageKind.COMMIT,
                                                    session.version,
                                                    node),
                                      on_commit_ack)
            else:
                for node in targets:
                    self.channel.send(loop, agents[node],
                                      ConfigMessage(MessageKind.ABORT,
                                                    session.version,
                                                    node),
                                      on_abort_ack)
                finish(RolloutOutcome.ABORTED)

        for node in targets:
            session.rules_shipped += configs[node].num_rules
            session.rules_installed += configs[node].num_rules
            self.channel.send(loop, agents[node], ConfigMessage(
                MessageKind.PREPARE, session.version, node,
                configs[node]), on_vote)
        if not targets:
            finish(RolloutOutcome.COMPLETED)


# -- coverage accounting ---------------------------------------------------


@dataclass
class CoverageReport:
    """Hash-space ownership at one instant, per class and aggregate.

    ``coverage`` is the traffic-weighted fraction of (class, hash)
    space owned by at least one on-path rule; ``duplication`` the
    traffic-weighted fraction owned more than once (extra work beyond
    single ownership, e.g. during an overlap transient).
    """

    class_coverage: Dict[str, float]
    class_duplication: Dict[str, float]
    coverage: float
    duplication: float

    @property
    def gap(self) -> float:
        """1 - coverage: the transiently unprotected traffic share."""
        return 1.0 - self.coverage


def _class_intervals(cls: TrafficClass,
                     node_configs: Dict[str, Optional[ShimConfig]]
                     ) -> List[Tuple[float, float]]:
    """Hash intervals owned for one class by its on-path nodes.

    Only nodes that actually observe the class's packets count
    (forward or reverse path); a mirror's PROCESS rule over a
    replicated range is backed by the on-path REPLICATE rule that
    feeds it, which is already included.
    """
    observers = set(cls.path) | set(cls.rev_nodes)
    intervals: List[Tuple[float, float]] = []
    for node in observers:
        config = node_configs.get(node)
        if config is None:
            continue
        for rule in config.rules_for(cls.name):
            if rule.hash_range.width > 0:
                intervals.append((rule.hash_range.start,
                                  rule.hash_range.end))
    return intervals


def _union_length(intervals: Sequence[Tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    ordered = sorted(intervals)
    total = 0.0
    cur_start, cur_end = ordered[0]
    for start, end in ordered[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    total += cur_end - cur_start
    return min(total, 1.0)


def coverage_report(classes: Sequence[TrafficClass],
                    node_configs: Dict[str, Optional[ShimConfig]]
                    ) -> CoverageReport:
    """Measure ownership of the hash space under installed configs.

    Args:
        classes: current traffic classes (weights = session counts).
        node_configs: what each node is *actually* running right now
            (``NodeAgent.effective_config()``; ``None`` = dead node).
    """
    class_cov: Dict[str, float] = {}
    class_dup: Dict[str, float] = {}
    weighted_cov = 0.0
    weighted_dup = 0.0
    total_weight = 0.0
    for cls in classes:
        intervals = _class_intervals(cls, node_configs)
        union = _union_length(intervals)
        total = sum(end - start for start, end in intervals)
        duplication = max(0.0, total - union)
        class_cov[cls.name] = union
        class_dup[cls.name] = duplication
        weight = cls.num_sessions
        weighted_cov += weight * union
        weighted_dup += weight * duplication
        total_weight += weight
    if total_weight > 0:
        coverage = weighted_cov / total_weight
        duplication = weighted_dup / total_weight
    else:
        coverage, duplication = 1.0, 0.0
    return CoverageReport(class_coverage=class_cov,
                          class_duplication=class_dup,
                          coverage=coverage,
                          duplication=duplication)
