"""Scenario specs, the multi-epoch runner, and timeline reports.

A :class:`Scenario` declares everything about a closed-loop run — the
topology, traffic-drift model, channel characteristics, rollout
strategy, fault schedule, and epoch horizon — and
:func:`run_scenario` plays it: every epoch it injects due faults,
evolves traffic (per-entry factors drawn from the Section 8.2
variability model), lets the :class:`~repro.runtime.daemon.ControllerDaemon`
decide whether to re-optimize, drains the event loop (config
deliveries, acks, retransmissions) while tracking hash-space coverage
after *every* event, and replays a synthetic epoch trace through the
fast batch emulation as ground truth against whatever configurations
the agents are actually running.

Everything is derived from ``Scenario.seed``; two runs of the same
scenario produce bit-identical :class:`ScenarioReport` timelines. The
only nondeterministic quantity — wall-clock solve latency — is kept in
a field explicitly excluded from :meth:`ScenarioReport.fingerprint`.

Three canned scenarios (see :data:`CANNED_SCENARIOS`) exercise the
regimes the paper's Section 9 sketches: steady-state traffic drift,
a flash-crowd surge, and a cascading node failure with recovery.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mirrors import MirrorPolicy
from repro.lpsolve.errors import LPError
from repro.obs import get_registry
from repro.runtime.agents import NodeAgent, build_agents
from repro.runtime.daemon import ControllerDaemon, RefreshRecord
from repro.runtime.events import EventLoop
from repro.runtime.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NetworkFaultState,
    cascading_failure_schedule,
    flash_crowd_schedule,
)
from repro.runtime.rollout import (
    ChannelSpec,
    ConfigChannel,
    RolloutDriver,
    coverage_report,
)
from repro.shim.config import ShimConfig
from repro.traffic.variability import TrafficVariabilityModel

MIRROR_CHOICES: Dict[str, Callable[[], MirrorPolicy]] = {
    "none": MirrorPolicy.none,
    "dc": MirrorPolicy.datacenter,
    "one-hop": lambda: MirrorPolicy.neighbors(1),
    "two-hop": lambda: MirrorPolicy.neighbors(2),
    "dc+one-hop": lambda: MirrorPolicy.datacenter_plus_neighbors(1),
}


@dataclass
class Scenario:
    """Declarative spec of one closed-loop control-plane run."""

    name: str
    topology: str = "internet2"
    seed: int = 7
    epochs: int = 8
    epoch_seconds: float = 300.0
    mirror: str = "dc"
    dc_capacity_factor: Optional[float] = 10.0
    max_link_load: float = 0.4
    drift_threshold: float = 0.2
    refresh_period_epochs: Optional[int] = 3
    strategy: str = "overlap"
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    drift_sigma: float = 0.0
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    sessions_per_epoch: int = 300
    rule_capacity: Optional[int] = None
    planner: str = "global"
    regions: int = 2
    estimator: Optional[str] = None
    sketch_width: int = 1024
    sketch_depth: int = 4
    chunk_packets: int = 256
    ingest_workers: int = 2

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.mirror not in MIRROR_CHOICES:
            raise ValueError(f"unknown mirror {self.mirror!r}")
        if self.drift_sigma < 0:
            raise ValueError("drift_sigma must be non-negative")
        if self.planner not in ("global", "sharded"):
            raise ValueError(f"unknown planner {self.planner!r}")
        if self.regions < 1:
            raise ValueError("regions must be >= 1")
        if self.estimator not in (None, "sketch"):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if self.sketch_width < 1 or self.sketch_depth < 1:
            raise ValueError("sketch shape must be >= 1x1")
        if self.chunk_packets < 1:
            raise ValueError("chunk_packets must be >= 1")
        if self.ingest_workers < 1:
            raise ValueError("ingest_workers must be >= 1")
        for fault in self.faults.events:
            if fault.kind is FaultKind.CONTROLLER_DOWN:
                if self.planner != "sharded":
                    raise ValueError(
                        "controller-down faults need the sharded "
                        "planner")
                if fault.epoch < 1:
                    raise ValueError(
                        "controller-down faults must fire after the "
                        "bootstrap epoch")

    @property
    def refresh_period(self) -> Optional[float]:
        if self.refresh_period_epochs is None:
            return None
        return self.refresh_period_epochs * self.epoch_seconds

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "topology": self.topology,
            "seed": self.seed,
            "epochs": self.epochs,
            "epoch_seconds": self.epoch_seconds,
            "mirror": self.mirror,
            "dc_capacity_factor": self.dc_capacity_factor,
            "max_link_load": self.max_link_load,
            "drift_threshold": self.drift_threshold,
            "refresh_period_epochs": self.refresh_period_epochs,
            "strategy": self.strategy,
            "channel": {
                "base_delay": self.channel.base_delay,
                "jitter": self.channel.jitter,
                "loss": self.channel.loss,
                "retransmit_timeout": self.channel.retransmit_timeout,
                "max_retries": self.channel.max_retries,
            },
            "drift_sigma": self.drift_sigma,
            "faults": [
                {"epoch": f.epoch, "kind": f.kind.value,
                 "target": f.target, "factor": f.factor,
                 "duration_epochs": f.duration_epochs}
                for f in self.faults.events
            ],
            "sessions_per_epoch": self.sessions_per_epoch,
            "rule_capacity": self.rule_capacity,
            "planner": self.planner,
            "regions": self.regions,
            "estimator": self.estimator,
            "sketch_width": self.sketch_width,
            "sketch_depth": self.sketch_depth,
            "chunk_packets": self.chunk_packets,
            "ingest_workers": self.ingest_workers,
        }


@dataclass
class EpochRecord:
    """One epoch's row in the scenario timeline.

    All fields except ``solve_wall_seconds`` are pure functions of the
    scenario (deterministic across runs); wall-clock solve latency is
    reported for operators but excluded from the fingerprint.
    """

    epoch: int
    sim_time: float
    faults: List[str]
    refresh_reason: Optional[str]
    solve_ok: bool
    solve_error: Optional[str]
    lp_load_cost: Optional[float]
    coverage_min: float
    coverage_end: float
    duplication_max: float
    miss_rate: float
    rollout_latency: Optional[float]
    emulated_max_work: float
    emulated_alerts: int
    events_fired: int
    solve_wall_seconds: Optional[float] = None
    rules_shipped: Optional[int] = None
    rules_installed: Optional[int] = None
    # Estimator-mode fields (None when estimator is off). Byte and
    # chunk counts are pure functions of the seeded trace, so they
    # belong to the deterministic fingerprint.
    estimate_l1_rel: Optional[float] = None
    estimator_state_bytes: Optional[int] = None
    ingest_chunks: Optional[int] = None
    ingest_max_resident_bytes: Optional[int] = None

    def deterministic_dict(self) -> Dict:
        out = {
            "epoch": self.epoch,
            "sim_time": self.sim_time,
            "faults": list(self.faults),
            "refresh_reason": self.refresh_reason,
            "solve_ok": self.solve_ok,
            "solve_error": self.solve_error,
            "lp_load_cost": self.lp_load_cost,
            "coverage_min": self.coverage_min,
            "coverage_end": self.coverage_end,
            "duplication_max": self.duplication_max,
            "miss_rate": self.miss_rate,
            "rollout_latency": self.rollout_latency,
            "emulated_max_work": self.emulated_max_work,
            "emulated_alerts": self.emulated_alerts,
            "events_fired": self.events_fired,
            "rules_shipped": self.rules_shipped,
            "rules_installed": self.rules_installed,
            "estimate_l1_rel": self.estimate_l1_rel,
            "estimator_state_bytes": self.estimator_state_bytes,
            "ingest_chunks": self.ingest_chunks,
            "ingest_max_resident_bytes":
                self.ingest_max_resident_bytes,
        }
        return out

    def to_dict(self) -> Dict:
        out = self.deterministic_dict()
        out["solve_wall_seconds"] = self.solve_wall_seconds
        return out


@dataclass
class ScenarioReport:
    """The outcome timeline of one scenario run."""

    scenario: Scenario
    records: List[EpochRecord]

    def summary(self) -> Dict:
        refreshes: Dict[str, int] = {}
        for record in self.records:
            if record.refresh_reason:
                refreshes[record.refresh_reason] = \
                    refreshes.get(record.refresh_reason, 0) + 1
        latencies = [r.rollout_latency for r in self.records
                     if r.rollout_latency is not None]
        return {
            "epochs": len(self.records),
            "refreshes": refreshes,
            "faults_injected": sum(len(r.faults)
                                   for r in self.records),
            "min_coverage": min((r.coverage_min
                                 for r in self.records), default=1.0),
            "max_coverage_gap": max((1.0 - r.coverage_min
                                     for r in self.records),
                                    default=0.0),
            "max_duplication": max((r.duplication_max
                                    for r in self.records),
                                   default=0.0),
            "mean_rollout_latency": (sum(latencies) / len(latencies)
                                     if latencies else None),
            "rules_shipped": sum(r.rules_shipped for r in self.records
                                 if r.rules_shipped is not None),
            "rules_installed": sum(r.rules_installed
                                   for r in self.records
                                   if r.rules_installed is not None),
            "final_lp_load_cost": next(
                (r.lp_load_cost for r in reversed(self.records)
                 if r.lp_load_cost is not None), None),
        }

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic timeline — identical for two
        runs of the same scenario (the bit-reproducibility check)."""
        payload = json.dumps(
            [r.deterministic_dict() for r in self.records],
            sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict:
        return {
            "schema": 1,
            "scenario": self.scenario.to_dict(),
            "epochs": [r.to_dict() for r in self.records],
            "summary": self.summary(),
            "fingerprint": self.fingerprint(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)

    def timeline_rows(self) -> List[Dict]:
        """Per-epoch metric rows for the JSONL timeline export
        (:func:`repro.obs.export.write_timeline_jsonl`)."""
        rows = []
        for record in self.records:
            metrics = {
                k: v for k, v in record.deterministic_dict().items()
                if isinstance(v, (int, float)) and
                not isinstance(v, bool) and k not in ("epoch",
                                                      "sim_time")
            }
            metrics["faults"] = len(record.faults)
            metrics["refreshed"] = 1 if record.refresh_reason else 0
            rows.append({"epoch": record.epoch,
                         "t": record.sim_time, "metrics": metrics})
        return rows


def _effective_configs(state_nodes: Sequence[str],
                       agents: Dict[str, NodeAgent]
                       ) -> Dict[str, Optional[ShimConfig]]:
    return {node: agents[node].effective_config()
            for node in state_nodes if node in agents}


def _emulation_configs(state_nodes: Sequence[str],
                       agents: Dict[str, NodeAgent]
                       ) -> Dict[str, ShimConfig]:
    """Installed configs for the replay; nodes with nothing installed
    (or dead) run an empty shim that ignores everything."""
    configs = {}
    for node in state_nodes:
        config = None
        if node in agents:
            config = agents[node].effective_config()
        configs[node] = config if config is not None else \
            ShimConfig(node=node, rules={})
    return configs


def run_scenario(scenario: Scenario,
                 workdir: Optional[Path] = None,
                 loop_factory: Optional[Callable[[], EventLoop]] = None
                 ) -> ScenarioReport:
    """Play a scenario over simulated time; returns the timeline.

    The run is seeded end to end: traffic drift, channel latency/loss
    draws, and epoch traces all derive from ``scenario.seed``.

    ``loop_factory`` substitutes the event loop — the schedule
    perturbation verifier (``repro racecheck``) passes a
    :class:`~repro.runtime.events.PerturbedEventLoop` builder here to
    replay the same scenario under permuted same-instant event orders.

    In estimator mode (``scenario.estimator == "sketch"``) each
    epoch's trace is packed into a zero-copy
    :class:`~repro.simulation.tracestore.TraceStore` under
    ``workdir`` (a temporary directory by default, cleaned up on
    return) and streamed through an
    :class:`~repro.ingest.daemon.IngestDaemon` in bounded slabs, so
    resident trace/traffic state stays O(sketch + chunk).
    """
    if scenario.estimator is None:
        return _run_scenario(scenario, None, loop_factory)
    if workdir is not None:
        path = Path(workdir)
        path.mkdir(parents=True, exist_ok=True)
        return _run_scenario(scenario, path, loop_factory)
    with tempfile.TemporaryDirectory(
            prefix="repro-estimator-") as tmp:
        return _run_scenario(scenario, Path(tmp), loop_factory)


def _run_scenario(scenario: Scenario,
                  trace_dir: Optional[Path],
                  loop_factory: Optional[Callable[[], EventLoop]] = None
                  ) -> ScenarioReport:
    from repro.experiments.common import setup_topology
    from repro.simulation.emulation import Emulation
    from repro.simulation.tracegen import TraceGenerator, TraceSpec
    from repro.simulation.tracestore import ChunkedReplay, TraceStore

    metrics = get_registry()
    setup = setup_topology(scenario.topology,
                           dc_capacity_factor=scenario.dc_capacity_factor
                           if scenario.mirror in ("dc", "dc+one-hop")
                           else None)
    baseline_state = setup.state
    baseline_classes = list(baseline_state.classes)

    loop = EventLoop() if loop_factory is None else loop_factory()
    channel = ConfigChannel(scenario.channel,
                            seed=scenario.seed * 7919 + 1)
    driver = RolloutDriver(channel, scenario.strategy)
    planner_factory = None
    if scenario.planner == "sharded":
        from repro.core.controller import ShardedPlanner

        def planner_factory(state):
            return ShardedPlanner(
                state,
                mirror_policy=MIRROR_CHOICES[scenario.mirror](),
                max_link_load=scenario.max_link_load,
                num_regions=scenario.regions,
                seed=scenario.seed,
                jobs=1)  # deterministic replay stays single-threaded
    ingest = None
    estimator_scale = 1.0
    if scenario.estimator == "sketch":
        from repro.ingest import IngestDaemon

        # Fixed sampling-rate calibration: the tap sees a bounded
        # session budget per epoch, so observed counts scale to
        # |T_c| units by the baseline rate. Relative drift between
        # classes stays visible to the trigger; a uniform surge
        # beyond the budget does not (honest fixed-budget sampling).
        baseline_total = sum(cls.num_sessions
                             for cls in baseline_classes)
        estimator_scale = (baseline_total /
                           scenario.sessions_per_epoch)
        ingest = IngestDaemon(
            [cls.name for cls in baseline_classes],
            width=scenario.sketch_width,
            depth=scenario.sketch_depth,
            seed=scenario.seed * 49999 + 3,
            workers=scenario.ingest_workers)
    daemon = ControllerDaemon(
        baseline_state, driver,
        mirror_policy=MIRROR_CHOICES[scenario.mirror](),
        max_link_load=scenario.max_link_load,
        drift_threshold=scenario.drift_threshold,
        refresh_period=scenario.refresh_period,
        planner_factory=planner_factory,
        estimator=ingest,
        estimator_scale=estimator_scale)
    agents = build_agents(baseline_state.node_capacity,
                          rule_capacity=scenario.rule_capacity)

    drift_model = (TrafficVariabilityModel.default(
        sigma=scenario.drift_sigma) if scenario.drift_sigma > 0
        else None)
    drift_rng = np.random.default_rng(scenario.seed * 104729 + 2)

    fault_state = NetworkFaultState()
    prev_signature = fault_state.structural_signature()
    records: List[EpochRecord] = []
    pending_refresh: List[Tuple[int, RefreshRecord]] = []

    for epoch in range(scenario.epochs):
        epoch_start = epoch * scenario.epoch_seconds
        epoch_end = epoch_start + scenario.epoch_seconds
        metrics.inc("runtime.epochs")

        # 1. Faults due at this epoch boundary.
        fault_state.expire(epoch)
        fired = scenario.faults.at_epoch(epoch)
        for fault in fired:
            fault_state.apply(fault, baseline_state)
            metrics.inc("runtime.faults.injected")
        for node, agent in agents.items():
            if node in fault_state.dead_nodes:
                if agent.alive:
                    agent.fail()
            elif not agent.alive:
                agent.recover()

        # 2. This epoch's traffic: variability-model drift x surges.
        if drift_model is not None:
            drifted = [cls.scaled(drift_model.sample_factor(drift_rng))
                       for cls in baseline_classes]
        else:
            drifted = list(baseline_classes)
        surged = fault_state.scale_classes(drifted)
        traffic_state = baseline_state.with_traffic(surged)
        current_state, _impacts = fault_state.materialize(traffic_state)

        # 2b. Estimator mode: pack this epoch's trace into the store
        #     and stream it through the ingest daemon in bounded
        #     slabs during the first half of the epoch — the control
        #     decision below then runs on the sketch's estimates.
        generator = TraceGenerator(
            current_state.topology.nodes, current_state.classes,
            spec=TraceSpec(
                total_sessions=scenario.sessions_per_epoch),
            seed=scenario.seed * 100003 + epoch)
        epoch_replay = None
        epoch_exact: Optional[Dict[str, float]] = None
        if ingest is not None:
            assert trace_dir is not None
            batch = generator.generate_batch(
                current_state.nids_nodes, with_payloads=True,
                direct=True)
            store = TraceStore.pack(
                batch, trace_dir / f"epoch{epoch:03d}")
            del batch  # only memmap-backed slabs stay resident
            stored = store.batch()
            epoch_replay = ChunkedReplay(stored,
                                         scenario.chunk_packets)
            class_id = np.asarray(stored.sessions.class_id)
            counts = np.bincount(
                class_id[class_id >= 0],
                minlength=len(stored.sessions.class_names))
            epoch_exact = {
                name: float(count) for name, count in
                zip(stored.sessions.class_names, counts)}
            ingest.begin_window()
            window = scenario.epoch_seconds / 2.0
            interval = window / max(epoch_replay.num_chunks, 1)
            ingest.stream(loop, iter(epoch_replay),
                          start=epoch_start, interval=interval)
            loop.run_until(epoch_start + window)

        # 3. The daemon's control decision.
        signature = fault_state.structural_signature()
        structural = signature != prev_signature
        prev_signature = signature
        solve_ok, solve_error, refresh = True, None, None
        try:
            for fault in fired:
                if fault.kind is FaultKind.CONTROLLER_DOWN:
                    daemon.fail_region(fault.target)
            if structural:
                daemon.replace_state(current_state)
            refresh = daemon.step(loop, agents,
                                  current_state.classes)
        except (LPError, RuntimeError, ValueError) as exc:
            solve_ok = False
            solve_error = f"{type(exc).__name__}: {exc}"
            metrics.inc("runtime.solve.failures")
        if refresh is not None:
            pending_refresh.append((epoch, refresh))

        # 4. Drain the epoch's events, tracking coverage after each
        #    delivery/ack instant (the transient-window accounting).
        cov = coverage_report(
            current_state.classes,
            _effective_configs(current_state.nids_nodes, agents))
        coverage_min, duplication_max = cov.coverage, cov.duplication
        fired_events = 0
        while True:
            next_time = loop.queue.peek_time()
            if next_time is None or next_time > epoch_end + 1e-12:
                break
            fired_events += loop.run_until(next_time)
            cov = coverage_report(
                current_state.classes,
                _effective_configs(current_state.nids_nodes, agents))
            coverage_min = min(coverage_min, cov.coverage)
            duplication_max = max(duplication_max, cov.duplication)
        loop.run_until(epoch_end)

        coverage_end = cov.coverage
        metrics.observe("runtime.coverage_gap", 1.0 - coverage_min)
        metrics.gauge("runtime.coverage", coverage_end)

        # 5. Ground truth: replay this epoch's trace against what the
        #    agents actually run. Estimator mode replays the packed
        #    store chunk by chunk (bit-identical to the whole-batch
        #    fast path, O(chunk) memory); the exact path keeps the
        #    oracle behavior.
        emulation = Emulation(
            current_state,
            _emulation_configs(current_state.nids_nodes, agents),
            generator.classifier)
        if epoch_replay is not None:
            replay = emulation.run_signature_chunked(epoch_replay)
        else:
            sessions = generator.generate(with_payloads=True)
            replay = emulation.run_signature(sessions, fast=True)

        # Estimator bookkeeping: estimate error against this epoch's
        # exact per-class counts, sketch state, and the resident
        # high-water mark (the O(sketch + chunk) evidence).
        estimate_l1_rel = None
        estimator_state_bytes = None
        ingest_chunks = None
        ingest_max_resident_bytes = None
        if ingest is not None and epoch_exact is not None:
            snapshot = ingest.snapshot()
            errors = snapshot.estimate_errors(
                {name: epoch_exact.get(name, 0.0)
                 for name in ingest.class_names})
            estimate_l1_rel = errors["l1_rel"]
            metrics.gauge("sketch.estimate.l1_rel",
                          errors["l1_rel"])
            estimator_state_bytes = snapshot.state_bytes
            ingest_chunks = ingest.stats.chunks
            ingest_max_resident_bytes = \
                ingest.stats.max_resident_bytes

        result = daemon.controller.current_result
        records.append(EpochRecord(
            epoch=epoch,
            sim_time=epoch_start,
            faults=[f.describe() for f in fired],
            refresh_reason=(refresh.reason if refresh is not None
                            else None),
            solve_ok=solve_ok,
            solve_error=solve_error,
            lp_load_cost=(result.load_cost if result is not None and
                          solve_ok else None),
            coverage_min=coverage_min,
            coverage_end=coverage_end,
            duplication_max=duplication_max,
            miss_rate=1.0 - coverage_end,
            rollout_latency=None,  # finalized below
            emulated_max_work=replay.max_work(
                exclude=[current_state.dc_node]
                if current_state.dc_node else []),
            emulated_alerts=replay.alerts,
            events_fired=fired_events,
            solve_wall_seconds=(refresh.solve_wall_seconds
                                if refresh is not None else None),
            estimate_l1_rel=estimate_l1_rel,
            estimator_state_bytes=estimator_state_bytes,
            ingest_chunks=ingest_chunks,
            ingest_max_resident_bytes=ingest_max_resident_bytes))

    # Rollout latencies and shipped-rule counts are known only once
    # sessions complete (a slow rollout can span epochs), so fill them
    # in after the run.
    for epoch, refresh in pending_refresh:
        records[epoch].rollout_latency = refresh.session.latency
        records[epoch].rules_shipped = refresh.session.rules_shipped
        records[epoch].rules_installed = \
            refresh.session.rules_installed

    return ScenarioReport(scenario=scenario, records=records)


# -- canned scenarios ------------------------------------------------------


def _busiest_source(topology_name: str) -> str:
    """The PoP originating the most gravity traffic (deterministic)."""
    from repro.experiments.common import setup_topology

    setup = setup_topology(topology_name)
    volumes: Dict[str, float] = {}
    for cls in setup.classes:
        volumes[cls.source] = volumes.get(cls.source, 0.0) + \
            cls.num_sessions
    return max(sorted(volumes), key=lambda pop: volumes[pop])


def _safe_failing_nodes(topology_name: str, count: int,
                        dc_capacity_factor: Optional[float] = 10.0
                        ) -> List[str]:
    """``count`` nodes whose sequential failure keeps every surviving
    class routable — and the datacenter reachable — chosen
    deterministically, busiest-first.

    The check runs on the same DC-attached state the scenario solves
    over: killing the DC's anchor PoP disconnects every mirror path
    even though no *class* is disconnected, so that candidate must be
    rejected too.
    """
    from repro.core.failures import fail_node
    from repro.experiments.common import setup_topology

    setup = setup_topology(topology_name,
                           dc_capacity_factor=dc_capacity_factor)
    state = setup.state
    by_traffic = sorted(
        (n for n in state.topology.nodes if n != state.dc_node),
        key=lambda node: -sum(cls.num_sessions
                              for cls in state.classes
                              if node in cls.path))
    chosen: List[str] = []
    for node in by_traffic:
        if len(chosen) == count:
            break
        try:
            candidate_state, _ = fail_node(state, node)
        except ValueError:
            continue
        dc = candidate_state.dc_node
        if dc is not None:
            try:
                for survivor in candidate_state.topology.nodes:
                    candidate_state.routing.path(survivor, dc)
            except KeyError:
                continue  # failure strands the mirror target
        chosen.append(node)
        state = candidate_state
    if len(chosen) < count:
        raise ValueError(
            f"{topology_name} cannot absorb {count} sequential "
            f"failures")
    return chosen


def steady_drift_scenario(topology: str = "internet2",
                          epochs: int = 10,
                          seed: int = 7) -> Scenario:
    """Steady state: heavy-tailed per-epoch drift, periodic + drift
    triggers, a lossy jittery channel, overlap rollouts."""
    return Scenario(
        name="steady-drift", topology=topology, seed=seed,
        epochs=epochs, drift_sigma=0.35, drift_threshold=0.25,
        refresh_period_epochs=3,
        channel=ChannelSpec(base_delay=2.0, jitter=3.0, loss=0.1,
                            retransmit_timeout=8.0),
        strategy="overlap")


def flash_crowd_scenario(topology: str = "internet2",
                         epochs: int = 8,
                         seed: int = 11) -> Scenario:
    """A 4x surge on the busiest ingress's classes for three epochs —
    the sudden-shift case the Section 9 slack discussion targets."""
    prefix = f"{_busiest_source(topology)}->"
    return Scenario(
        name="flash-crowd", topology=topology, seed=seed,
        epochs=epochs, drift_sigma=0.15, drift_threshold=0.2,
        refresh_period_epochs=4,
        channel=ChannelSpec(base_delay=2.0, jitter=2.0, loss=0.05,
                            retransmit_timeout=8.0),
        strategy="overlap",
        faults=flash_crowd_schedule(prefix, factor=4.0,
                                    start_epoch=2,
                                    duration_epochs=3))


def cascading_failure_scenario(topology: str = "internet2",
                               epochs: int = 10,
                               seed: int = 13) -> Scenario:
    """Two busy nodes die in sequence, then both recover; every
    topology change forces a structural re-solve and direct rollout."""
    victims = _safe_failing_nodes(topology, 2)
    return Scenario(
        name="cascading-failure", topology=topology, seed=seed,
        epochs=epochs, drift_sigma=0.1, drift_threshold=0.3,
        refresh_period_epochs=None,
        channel=ChannelSpec(base_delay=2.0, jitter=2.0, loss=0.05,
                            retransmit_timeout=8.0),
        strategy="overlap",
        faults=cascading_failure_schedule(victims, start_epoch=2,
                                          spacing=2,
                                          recover_epoch=7))


def regional_failover_scenario(topology: str = "internet2",
                               epochs: int = 8,
                               seed: int = 17,
                               regions: int = 2) -> Scenario:
    """Sharded control plane under a regional controller failure: the
    busiest PoP's controller dies mid-run, its neighbor adopts the
    shard, and the re-solved assignment rolls out coverage-safely
    (the node universe is unchanged, so overlap applies)."""
    victim = _busiest_source(topology)
    return Scenario(
        name="regional-failover", topology=topology, seed=seed,
        epochs=epochs, drift_sigma=0.1, drift_threshold=0.3,
        refresh_period_epochs=None,
        channel=ChannelSpec(base_delay=2.0, jitter=2.0, loss=0.05,
                            retransmit_timeout=8.0),
        strategy="overlap",
        planner="sharded", regions=regions,
        faults=FaultSchedule([FaultEvent(
            3, FaultKind.CONTROLLER_DOWN, victim)]))


def sketch_estimator_scenario(topology: str = "tinet",
                              epochs: int = 6,
                              seed: int = 23) -> Scenario:
    """Closed loop on *estimates*: every epoch's trace streams
    through the ingest daemon in bounded slabs and the controller
    optimizes against the sketch's view — no exact matrix is ever
    fed to it. The periodic trigger is off, so every post-bootstrap
    refresh is sketch-driven drift."""
    return Scenario(
        name="sketch-estimator", topology=topology, seed=seed,
        epochs=epochs, drift_sigma=0.35, drift_threshold=0.2,
        refresh_period_epochs=None,
        channel=ChannelSpec(base_delay=2.0, jitter=2.0, loss=0.05,
                            retransmit_timeout=8.0),
        strategy="overlap",
        estimator="sketch", sketch_width=2048, sketch_depth=4,
        chunk_packets=256, ingest_workers=2,
        sessions_per_epoch=1500)


CANNED_SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "steady-drift": steady_drift_scenario,
    "flash-crowd": flash_crowd_scenario,
    "cascading-failure": cascading_failure_scenario,
    "regional-failover": regional_failover_scenario,
    "sketch-estimator": sketch_estimator_scenario,
}
