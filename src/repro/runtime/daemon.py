"""The long-running controller process (Figure 6, run over sim time).

:class:`ControllerDaemon` wraps :class:`~repro.core.controller.NIDSController`
with the operational policy the paper describes — "the optimization
[...] will be run periodically (e.g., every few minutes), or triggered
by routing and traffic changes" — and hands every refresh to a
:class:`~repro.runtime.rollout.RolloutDriver` for coverage-safe
distribution:

- **bootstrap** — the daemon's very first cycle (nothing deployed
  anywhere yet);
- **structural** — the topology changed under it (node/link faults):
  the warm incremental LP is useless because the variable universe
  changed, so the daemon rebuilds a fresh controller on the surviving
  state and pushes configs directly (there is no meaningful overlap
  across different node sets);
- **failover** — a regional controller died (sharded control plane):
  the planner merged the dead shard into a neighbor and the merged
  region must re-solve; the node universe is unchanged, so the
  rollout stays coverage-safe (overlap/delta);
- **periodic** — ``refresh_period`` simulated seconds elapsed;
- **drift** — :meth:`NIDSController.needs_refresh` fired on the
  traffic feed.

Trigger precedence is exactly that order. Structural and failover
pressure is *latched* (:meth:`replace_state` / :meth:`fail_region`
set a flag consumed by the next successful :meth:`step`), so
:meth:`refresh_reason` itself reports them — callers never need to
force a reason label from outside.

Within one topology epoch the controller's compiled LP stays warm, so
periodic and drift refreshes ride the incremental ``resolve()`` path
added in the formulation layer — the daemon measures and reports the
wall-clock solve latency either way (``runtime.solve.seconds``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.core.controller import NIDSController, Rollout, SolvePlanner
from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.obs import get_registry
from repro.runtime.agents import NodeAgent
from repro.runtime.events import EventLoop
from repro.runtime.rollout import RolloutDriver, RolloutSession
from repro.traffic.classes import TrafficClass


class TrafficEstimator(Protocol):
    """What the daemon needs from a sketch estimator: template
    classes re-volumed with the estimator's current view (an
    :class:`~repro.ingest.daemon.IngestDaemon` satisfies this)."""

    def estimated_classes(self, template: Sequence[TrafficClass],
                          scale: Optional[float] = None
                          ) -> List[TrafficClass]:
        ...


@dataclass
class RefreshRecord:
    """One completed daemon cycle (solve + rollout kickoff)."""

    reason: str             # bootstrap|structural|failover|periodic|drift
    time: float                     # sim time of the decision
    rollout: Rollout
    session: RolloutSession
    solve_wall_seconds: float       # wall clock; NOT part of any
                                    # reproducibility fingerprint


class ControllerDaemon:
    """Closed-loop refresh policy over a rollout driver.

    Args:
        state: the initial network state.
        driver: distributes each refresh's configs to the agents.
        mirror_policy / max_link_load / drift_threshold: forwarded to
            the wrapped :class:`NIDSController`.
        refresh_period: simulated seconds between unconditional
            re-optimizations; ``None`` disables the periodic trigger
            (drift/structural triggers still fire).
        planner_factory: builds the controller's solve planner for a
            given state; ``None`` keeps the default global LP. Called
            again on every structural rebuild, so a sharded planner
            re-partitions the surviving topology.
        estimator: a sketch estimator (an
            :class:`~repro.ingest.daemon.IngestDaemon`, or anything
            with ``estimated_classes(template, scale)``). When set,
            every cycle substitutes the estimator's sketched volumes
            for the feed's exact ones — the drift trigger and
            ``resolve_traffic()`` both run on estimates, and the
            exact-matrix path (``estimator=None``) remains the
            oracle. The feed still supplies class *structure*
            (paths, footprints); only volumes are estimated.
        estimator_scale: sampling-rate calibration from observed
            sessions to the feed's ``|T_c|`` unit.
    """

    def __init__(self, state: NetworkState, driver: RolloutDriver,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 drift_threshold: float = 0.2,
                 refresh_period: Optional[float] = None,
                 planner_factory: Optional[
                     Callable[[NetworkState], SolvePlanner]] = None,
                 estimator: Optional["TrafficEstimator"] = None,
                 estimator_scale: float = 1.0) -> None:
        if refresh_period is not None and refresh_period <= 0:
            raise ValueError("refresh_period must be positive")
        if estimator_scale < 0:
            raise ValueError("estimator_scale must be non-negative")
        self.driver = driver
        self.mirror_policy = mirror_policy
        self.max_link_load = max_link_load
        self.drift_threshold = drift_threshold
        self.refresh_period = refresh_period
        self.planner_factory = planner_factory
        self.estimator = estimator
        self.estimator_scale = estimator_scale
        self.controller = self._make_controller(state)
        self.last_refresh_time: Optional[float] = None
        self.refresh_records: list[RefreshRecord] = []
        self._bootstrapped = False
        self._structural_pending = False
        self._failover_pending = False

    def _make_controller(self, state: NetworkState) -> NIDSController:
        planner = (self.planner_factory(state)
                   if self.planner_factory is not None else None)
        return NIDSController(
            state, mirror_policy=self.mirror_policy,
            max_link_load=self.max_link_load,
            drift_threshold=self.drift_threshold,
            planner=planner)

    # -- triggers ----------------------------------------------------------

    def refresh_reason(self, now: float,
                       classes: Sequence[TrafficClass]
                       ) -> Optional[str]:
        """Why a refresh should run right now, or ``None``.

        Precedence: bootstrap (the daemon never deployed anything),
        then latched structural pressure from :meth:`replace_state`,
        then latched failover pressure from :meth:`fail_region`, then
        the periodic timer, then the traffic-drift trigger. A
        structural rebuild replaces the controller (so its configs are
        ``None`` again), but only the daemon's first-ever cycle counts
        as bootstrap.
        """
        if not self._bootstrapped:
            # Let the controller count its own bootstrap trigger.
            self.controller.needs_refresh(classes)
            return "bootstrap"
        if self._structural_pending:
            return "structural"
        if self._failover_pending:
            return "failover"
        if (self.refresh_period is not None and
                self.last_refresh_time is not None and
                now - self.last_refresh_time >=
                self.refresh_period - 1e-9):
            return "periodic"
        if self.controller.needs_refresh(classes):
            return "drift"
        return None

    # -- the cycle ---------------------------------------------------------

    def replace_state(self, state: NetworkState) -> None:
        """Structural change: rebuild the optimizer on a new topology.

        The warm compiled LP is tied to the old variable universe
        (per-node fractions for nodes that may no longer exist), so a
        fresh controller is the honest restart. Previous configs are
        abandoned — the next :meth:`step` reports reason
        ``"structural"`` and pushes a direct rollout.
        """
        self.controller = self._make_controller(state)
        self._structural_pending = True
        get_registry().inc("runtime.structural_rebuilds")

    def fail_region(self, target: str) -> str:
        """Regional controller failure: hand the shard to a neighbor.

        Delegates the adoption to the active planner (only a sharded
        planner exposes ``fail_region``) and latches failover pressure
        so the next :meth:`step` re-solves and rolls the adopted
        assignment out coverage-safely.

        Args:
            target: the dead region's name, or any node it owns.

        Returns:
            The adopting region's name.

        Raises:
            ValueError: when the active planner has no regional
                controllers (global planner).
        """
        fail = getattr(self.controller.planner, "fail_region", None)
        if fail is None:
            raise ValueError(
                "controller-down fault needs a sharded planner; the "
                "active planner has no regional controllers")
        adopter: str = fail(target)
        self._failover_pending = True
        get_registry().inc("runtime.controller_failovers")
        return adopter

    def step(self, loop: EventLoop, agents: Dict[str, NodeAgent],
             classes: Sequence[TrafficClass],
             reason: Optional[str] = None
             ) -> Optional[RefreshRecord]:
        """Run one daemon cycle at the loop's current instant.

        Args:
            loop: the event loop (rollout messages schedule into it).
            agents: the nodes to distribute configs to.
            classes: the epoch's observed traffic feed.
            reason: force a refresh with this label; ``None`` (the
                normal case) consults :meth:`refresh_reason`, which
                reports structural/failover pressure by itself.

        Returns:
            The :class:`RefreshRecord`, or ``None`` when no trigger
            fired.
        """
        if self.estimator is not None:
            # Estimator mode: the controller never sees the exact
            # volumes — both the drift trigger and the solve run on
            # the sketch's view of the feed.
            classes = self.estimator.estimated_classes(
                classes, self.estimator_scale)
        if reason is None:
            reason = self.refresh_reason(loop.now, classes)
        if reason is None:
            return None
        metrics = get_registry()
        start = time.perf_counter()
        rollout = self.controller.refresh(classes)
        solve_wall = time.perf_counter() - start
        metrics.observe("runtime.solve.seconds", solve_wall)
        metrics.inc(f"runtime.refresh.{reason}")
        if self.estimator is not None and reason == "drift":
            metrics.inc("runtime.estimator.drift_refreshes")

        session = self.driver.start(loop, agents, rollout.configs,
                                    rollout.transition)
        self.last_refresh_time = loop.now
        self._bootstrapped = True
        self._structural_pending = False
        self._failover_pending = False
        record = RefreshRecord(reason=reason, time=loop.now,
                               rollout=rollout, session=session,
                               solve_wall_seconds=solve_wall)
        self.refresh_records.append(record)
        return record
