"""The discrete-event core: simulated clock and deterministic queue.

The control plane of Figure 6 is a *process over time* — refreshes
every few minutes, config pushes with propagation delay, faults at
arbitrary instants — so the runtime layer needs a notion of simulated
time that is completely decoupled from wall time. This module supplies
it: a :class:`SimClock` that only moves forward, an :class:`EventQueue`
whose pop order is a pure function of what was pushed (ties broken by
insertion sequence, never by object identity), and an
:class:`EventLoop` that binds the two and calls event actions with the
clock already advanced to the event's instant.

Determinism contract: given the same sequence of ``schedule`` calls
(same times, same order), the loop fires the same actions in the same
order on every run. All randomness in the runtime layer (channel
delays, loss, traffic drift) is drawn from seeded generators *inside*
event actions, so the contract extends to entire scenario runs.

The seq tie-break is also a *liability*: any observable that changes
when two same-instant events swap places is a latent schedule race —
reproducible today only because insertion order happens to be stable.
:class:`PerturbedEventLoop` makes that hazard testable: it replaces
the seq tie-break with a seeded random one, permuting same-timestamp
events while leaving the time order untouched. ``repro racecheck``
replays every canned scenario under several perturbation seeds and
asserts fingerprint invariance; the static side of the same contract
is the RACE/ORD rule pack in :mod:`repro.analysis.rules.concurrency`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

Action = Callable[[], None]


class SimClock:
    """Monotonically advancing simulated time (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, instant: float) -> None:
        """Move the clock forward; moving backwards is a logic error."""
        if instant < self._now - 1e-12:
            raise ValueError(
                f"clock cannot run backwards ({instant} < {self._now})")
        self._now = max(self._now, float(instant))


@dataclass(order=True)
class Event:
    """One scheduled action.

    Ordering is (time, tie, seq): two events at the same instant fire
    in the order they were scheduled (``tie`` is 0.0 for every event
    in the standard queue), which is what makes replays
    bit-reproducible. A :class:`PerturbedEventQueue` assigns seeded
    random ``tie`` values instead, permuting same-instant events to
    expose schedule races.
    """

    time: float
    tie: float
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False,
                                           repr=False)

    def cancel(self) -> None:
        """Mark the event dead; the loop skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    ``len()`` and :meth:`peek_time` see only *live* events: a
    cancelled event no longer counts toward the queue's length and
    never surfaces as the next-event time, even while its heap entry
    is still buried awaiting lazy removal.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _note_cancel(self) -> None:
        self._live -= 1

    def _tie_break(self) -> float:
        """Tie value for the next pushed event (0.0 = insertion
        order; see :class:`PerturbedEventQueue`)."""
        return 0.0

    def push(self, time: float, action: Action) -> Event:
        event = Event(time=float(time), tie=self._tie_break(),
                      seq=next(self._seq), action=action, _queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop(self) -> Optional[Event]:
        """The next live event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None


class PerturbedEventQueue(EventQueue):
    """An :class:`EventQueue` that permutes same-timestamp events.

    Every push draws the event's ``tie`` from a seeded generator, so
    events sharing an instant pop in a seed-determined shuffle rather
    than insertion order (strict time order is untouched, and ``seq``
    still breaks the measure-zero tie-of-ties). Two queues built with
    the same seed replay identically; different seeds explore
    different legal schedules — the runtime's determinism contract
    says every observable fingerprint must be invariant across all of
    them.
    """

    def __init__(self, seed: int) -> None:
        super().__init__()
        self._tie_rng = np.random.default_rng(seed)

    def _tie_break(self) -> float:
        return float(self._tie_rng.random())


class EventLoop:
    """Clock + queue + dispatch.

    Actions scheduled from within actions are fine (that is how a
    config delivery schedules its ack); scheduling in the past raises.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.events_fired = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_at(self, instant: float, action: Action) -> Event:
        if instant < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule at {instant} before now={self.now}")
        return self.queue.push(instant, action)

    def schedule_in(self, delay: float, action: Action) -> Event:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, action)

    def run_until(self, horizon: float) -> int:
        """Fire every event with ``time <= horizon`` (inclusive), then
        advance the clock to the horizon. Returns the number fired."""
        fired = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon + 1e-12:
                break
            event = self.queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            event.action()
            fired += 1
        self.clock.advance_to(horizon)
        self.events_fired += fired
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (guarded against runaway
        self-scheduling loops)."""
        fired = 0
        while fired < max_events:
            event = self.queue.pop()
            if event is None:
                break
            self.clock.advance_to(event.time)
            event.action()
            fired += 1
        else:
            raise RuntimeError(
                f"event loop exceeded {max_events} events")
        self.events_fired += fired
        return fired


class PerturbedEventLoop(EventLoop):
    """An :class:`EventLoop` over a :class:`PerturbedEventQueue`.

    Drop-in replacement used by the schedule-perturbation verifier
    (``repro racecheck``): same clock, same scheduling API, but
    same-instant events dispatch in a seed-determined permutation.
    A scenario whose fingerprint changes under any perturbation seed
    depends on the seq tie-break — a schedule race.
    """

    def __init__(self, seed: int, start: float = 0.0) -> None:
        super().__init__(start)
        self.perturb_seed = int(seed)
        self.queue = PerturbedEventQueue(seed)
