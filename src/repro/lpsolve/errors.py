"""Exception hierarchy for the LP substrate."""


class LPError(Exception):
    """Base class for all errors raised by :mod:`repro.lpsolve`."""


class ModelError(LPError):
    """A model was built or used incorrectly.

    Examples include adding a variable that belongs to a different
    model, solving a model with no objective, or mixing variables from
    two models in one expression.
    """


class InfeasibleError(LPError):
    """The model has no feasible solution."""


class UnboundedError(LPError):
    """The objective can be improved without bound."""
