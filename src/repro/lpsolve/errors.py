"""Exception hierarchy for the LP substrate."""


class LPError(Exception):
    """Base class for all errors raised by :mod:`repro.lpsolve`."""


class ModelError(LPError):
    """A model was built or used incorrectly.

    Examples include adding a variable that belongs to a different
    model, solving a model with no objective, or mixing variables from
    two models in one expression.
    """


class StructureError(LPError):
    """An incremental patch would change the compiled LP's structure.

    Raised by :meth:`Model.set_coefficient` / :meth:`Model.set_rhs`
    when the targeted entry does not exist in the compiled sparse
    matrices (e.g., the coefficient was zero at compile time and was
    therefore never stored). Callers should invalidate the compiled
    structure and rebuild from scratch.
    """


class InfeasibleError(LPError):
    """The model has no feasible solution."""


class UnboundedError(LPError):
    """The objective can be improved without bound."""
