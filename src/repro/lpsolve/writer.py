"""CPLEX LP-format export.

Writes a :class:`~repro.lpsolve.model.Model` in the standard LP file
format, so any model built here can be inspected by hand or fed to an
external solver (including the paper's actual CPLEX) for
cross-checking. Only the subset of the format we generate is emitted:
objective, constraints, bounds.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from repro.lpsolve.constraint import ConstraintSense
from repro.lpsolve.expr import LinExpr
from repro.lpsolve.model import Model
from repro.obs import get_registry

_SENSE_TOKEN = {
    ConstraintSense.LE: "<=",
    ConstraintSense.GE: ">=",
    ConstraintSense.EQ: "=",
}

_NAME_SANITIZER = re.compile(r"[^A-Za-z0-9_.]")


def _safe_name(name: str) -> str:
    """LP-format identifiers: restricted charset, must not start with
    a digit or the letter 'e' followed by a digit."""
    cleaned = _NAME_SANITIZER.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def _write_expr(out: TextIO, expr: LinExpr) -> None:
    wrote_any = False
    for var, coeff in sorted(expr.coeffs.items(),
                             key=lambda kv: kv[0].index):
        if coeff == 0.0:
            continue
        sign = "+" if coeff >= 0 else "-"
        out.write(f" {sign} {abs(coeff):.12g} {_safe_name(var.name)}")
        wrote_any = True
    if not wrote_any:
        out.write(" 0")


def write_lp(model: Model, out: TextIO) -> None:
    """Serialize ``model`` in LP format to a text stream."""
    objective = getattr(model, "_objective", None)
    if objective is None:
        raise ValueError("model has no objective to write")
    metrics = get_registry()
    with metrics.span("lp.write"):
        sense = "Minimize" if model._sense > 0 else "Maximize"
        out.write(f"\\ {model.name}\n{sense}\n obj:")
        _write_expr(out, objective)
        out.write("\nSubject To\n")
        for con in model.constraints:
            out.write(f" {_safe_name(con.name or 'c')}:")
            _write_expr(out, con.expr)
            out.write(f" {_SENSE_TOKEN[con.sense]} {con.rhs:.12g}\n")
        out.write("Bounds\n")
        for var in model.variables:
            name = _safe_name(var.name)
            if var.ub is None:
                if var.lb == 0.0:
                    continue  # default bound
                out.write(f" {var.lb:.12g} <= {name} <= +inf\n")
            else:
                out.write(f" {var.lb:.12g} <= {name} <= {var.ub:.12g}\n")
        out.write("End\n")
    metrics.inc("lp.writes")


def lp_string(model: Model) -> str:
    """LP-format text of a model (convenience wrapper)."""
    buffer = io.StringIO()
    write_lp(model, buffer)
    return buffer.getvalue()
