"""The compiled (solver-ready) form of a model.

:class:`CompiledLP` is the sparse ``(c, A_ub, b_ub, A_eq, b_eq,
bounds)`` structure every :class:`~repro.lpsolve.backends.SolverBackend`
consumes, plus the bookkeeping that makes incremental re-solves
possible: a map from each constraint to its compiled row and a
``(row, column) -> data position`` index into the CSR arrays so
individual coefficients can be patched in place without recompiling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.lpsolve.constraint import Constraint
from repro.lpsolve.errors import StructureError


class CompiledLP:
    """Sparse matrices plus the patch index for one compiled model.

    Attributes:
        c: dense objective vector (already sense-normalized so the
           backend always minimizes).
        a_ub / b_ub: ``A_ub x <= b_ub`` rows (GE rows are negated in).
        a_eq / b_eq: ``A_eq x == b_eq`` rows.
        bounds: per-variable ``(lb, ub)`` pairs (``ub`` may be None).
        ub_rows: constraint -> ``(row, sign)`` for inequality rows,
           where ``sign`` is -1 for constraints stated as GE.
        eq_rows: constraint -> row for equality rows.
    """

    __slots__ = ("c", "a_ub", "b_ub", "a_eq", "b_eq", "bounds",
                 "ub_rows", "eq_rows", "_ub_entries", "_eq_entries",
                 "ub_row_constraints", "eq_row_constraints")

    def __init__(self, c: np.ndarray,
                 a_ub: Optional[sparse.csr_matrix], b_ub: np.ndarray,
                 a_eq: Optional[sparse.csr_matrix], b_eq: np.ndarray,
                 bounds: List[Tuple[float, Optional[float]]],
                 ub_row_constraints: List[Tuple[Constraint, float]],
                 eq_row_constraints: List[Constraint]) -> None:
        self.c = c
        self.a_ub = a_ub
        self.b_ub = b_ub
        self.a_eq = a_eq
        self.b_eq = b_eq
        self.bounds = bounds
        self.ub_row_constraints = ub_row_constraints
        self.eq_row_constraints = eq_row_constraints
        self.ub_rows: Dict[Constraint, Tuple[int, float]] = {
            con: (row, sign)
            for row, (con, sign) in enumerate(ub_row_constraints)}
        self.eq_rows: Dict[Constraint, int] = {
            con: row for row, con in enumerate(eq_row_constraints)}
        self._ub_entries = _entry_index(a_ub)
        self._eq_entries = _entry_index(a_eq)

    @property
    def num_variables(self) -> int:
        return len(self.c)

    # -- in-place patching -------------------------------------------------

    def patch_rhs(self, constraint: Constraint, rhs: float) -> None:
        """Overwrite one row's right-hand side."""
        if constraint in self.ub_rows:
            row, sign = self.ub_rows[constraint]
            self.b_ub[row] = sign * rhs
        elif constraint in self.eq_rows:
            self.b_eq[self.eq_rows[constraint]] = rhs
        else:
            raise StructureError(
                f"constraint {constraint.name!r} is not part of the "
                "compiled model")

    def patch_coefficient(self, constraint: Constraint, column: int,
                          coeff: float) -> None:
        """Overwrite one stored nonzero of the constraint matrix.

        ``coeff`` is the coefficient as it appears in the constraint's
        normalized ``expr (<=|>=|==) 0`` form. Raises
        :class:`StructureError` when the entry was never stored (zero
        at compile time) — the caller must recompile.
        """
        if constraint in self.ub_rows:
            row, sign = self.ub_rows[constraint]
            pos = self._ub_entries.get((row, column))
            if pos is None:
                raise StructureError(
                    f"no compiled entry for {constraint.name!r} at "
                    f"column {column}")
            self.a_ub.data[pos] = sign * coeff
        elif constraint in self.eq_rows:
            pos = self._eq_entries.get((self.eq_rows[constraint],
                                        column))
            if pos is None:
                raise StructureError(
                    f"no compiled entry for {constraint.name!r} at "
                    f"column {column}")
            self.a_eq.data[pos] = coeff
        else:
            raise StructureError(
                f"constraint {constraint.name!r} is not part of the "
                "compiled model")

    def patch_objective(self, column: int, coeff: float,
                        sense: float) -> None:
        """Overwrite one objective coefficient (``c`` is dense, so any
        column can be patched)."""
        self.c[column] = sense * coeff


def _entry_index(matrix: Optional[sparse.csr_matrix]
                 ) -> Dict[Tuple[int, int], int]:
    """(row, col) -> position in ``matrix.data`` for every stored
    entry."""
    if matrix is None:
        return {}
    index: Dict[Tuple[int, int], int] = {}
    indptr, indices = matrix.indptr, matrix.indices
    for row in range(matrix.shape[0]):
        for pos in range(indptr[row], indptr[row + 1]):
            index[(row, int(indices[pos]))] = pos
    return index
