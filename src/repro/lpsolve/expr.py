"""Linear expressions over LP variables.

A :class:`LinExpr` is an immutable-by-convention affine expression
``sum(coeff_i * var_i) + constant``. Expressions support the natural
arithmetic operators and comparison operators build constraints::

    expr = 2 * x + y - 3
    con = expr <= 10

Coefficients are stored in a plain dict keyed by :class:`Variable`
(variables hash by identity), which keeps expression arithmetic cheap
for the moderately sized formulations in this project.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lpsolve.constraint import Constraint
    from repro.lpsolve.variable import Variable

Operand = Union["LinExpr", "Variable", float, int]


def _as_expr(value: Operand) -> "LinExpr":
    """Coerce a variable or number into a :class:`LinExpr`."""
    from repro.lpsolve.variable import Variable

    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Variable):
        return LinExpr({value: 1.0}, 0.0)
    if isinstance(value, numbers.Real):
        return LinExpr({}, float(value))
    raise TypeError(f"cannot use {value!r} in a linear expression")


class LinExpr:
    """An affine expression ``sum(coeffs[v] * v) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Dict["Variable", float]] = None,
                 constant: float = 0.0) -> None:
        self.coeffs: Dict["Variable", float] = dict(coeffs or {})
        self.constant = float(constant)

    # -- introspection -------------------------------------------------

    def variables(self) -> Iterable["Variable"]:
        """The variables with a (possibly zero) stored coefficient."""
        return self.coeffs.keys()

    def coefficient(self, var: "Variable") -> float:
        """Coefficient of ``var`` in this expression (0.0 if absent)."""
        return self.coeffs.get(var, 0.0)

    def is_constant(self) -> bool:
        """True when no variable has a nonzero coefficient."""
        return all(c == 0.0 for c in self.coeffs.values())

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: Operand) -> "LinExpr":
        other = _as_expr(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0.0) + coeff
        return LinExpr(coeffs, self.constant + other.constant)

    def __radd__(self, other: Operand) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: Operand) -> "LinExpr":
        return self.__add__(_as_expr(other).__neg__())

    def __rsub__(self, other: Operand) -> "LinExpr":
        return _as_expr(other).__sub__(self)

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()},
                       -self.constant)

    def __mul__(self, factor: float) -> "LinExpr":
        if not isinstance(factor, numbers.Real):
            raise TypeError("LP expressions only support scaling by a "
                            f"number, got {factor!r}")
        factor = float(factor)
        return LinExpr({v: c * factor for v, c in self.coeffs.items()},
                       self.constant * factor)

    def __rmul__(self, factor: float) -> "LinExpr":
        return self.__mul__(factor)

    def __truediv__(self, divisor: float) -> "LinExpr":
        if not isinstance(divisor, numbers.Real):
            raise TypeError("LP expressions only support division by a "
                            f"number, got {divisor!r}")
        if divisor == 0:
            raise ZeroDivisionError("division of LP expression by zero")
        return self.__mul__(1.0 / float(divisor))

    # -- constraint builders --------------------------------------------

    def __le__(self, other: Operand) -> "Constraint":
        from repro.lpsolve.constraint import Constraint, ConstraintSense

        return Constraint(self - _as_expr(other), ConstraintSense.LE)

    def __ge__(self, other: Operand) -> "Constraint":
        from repro.lpsolve.constraint import Constraint, ConstraintSense

        return Constraint(self - _as_expr(other), ConstraintSense.GE)

    def __eq__(self, other: Operand) -> "Constraint":  # type: ignore[override]
        from repro.lpsolve.constraint import Constraint, ConstraintSense

        return Constraint(self - _as_expr(other), ConstraintSense.EQ)

    # Constraints are built through __eq__, so expressions must hash by
    # identity to stay usable as dict keys.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        terms = [f"{coeff:+g}*{var.name}"
                 for var, coeff in self.coeffs.items() if coeff != 0.0]
        if self.constant or not terms:
            terms.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(terms) + ")"


def lin_sum(operands: Iterable[Operand]) -> LinExpr:
    """Sum an iterable of variables/expressions/numbers efficiently.

    Unlike repeated ``+`` (which copies the accumulated dict each step),
    this accumulates into one dict, so summing ``n`` terms is ``O(n)``.
    """
    from repro.lpsolve.variable import Variable

    coeffs: Dict["Variable", float] = {}
    constant = 0.0
    for operand in operands:
        if isinstance(operand, Variable):
            coeffs[operand] = coeffs.get(operand, 0.0) + 1.0
        elif isinstance(operand, LinExpr):
            for var, coeff in operand.coeffs.items():
                coeffs[var] = coeffs.get(var, 0.0) + coeff
            constant += operand.constant
        elif isinstance(operand, numbers.Real):
            constant += float(operand)
        else:
            raise TypeError(f"cannot sum {operand!r} into an expression")
    return LinExpr(coeffs, constant)
