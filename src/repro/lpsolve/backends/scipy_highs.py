"""The default backend: :func:`scipy.optimize.linprog` with HiGHS."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lpsolve.backends import BackendResult, SolverBackend
from repro.lpsolve.compiled import CompiledLP
from repro.lpsolve.solution import SolveStatus

# linprog status codes (see scipy docs).
_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,  # numerical difficulties
}


class ScipyHighsBackend(SolverBackend):
    """HiGHS via scipy — the reproduction's stand-in for CPLEX."""

    name = "scipy"

    def solve(self, compiled: CompiledLP) -> BackendResult:
        result = linprog(
            compiled.c,
            A_ub=compiled.a_ub,
            b_ub=compiled.b_ub if compiled.a_ub is not None else None,
            A_eq=compiled.a_eq,
            b_eq=compiled.b_eq if compiled.a_eq is not None else None,
            bounds=compiled.bounds, method="highs")

        status = _LINPROG_STATUS.get(result.status, SolveStatus.ERROR)
        x = objective = None
        ineq_marginals = eq_marginals = None
        if status is SolveStatus.OPTIMAL:
            x = np.asarray(result.x, dtype=float)
            objective = float(result.fun)
            ineq = getattr(result, "ineqlin", None)
            if ineq is not None:
                marginals = getattr(ineq, "marginals", None)
                if marginals is not None:
                    ineq_marginals = np.asarray(marginals, dtype=float)
            eq = getattr(result, "eqlin", None)
            if eq is not None:
                marginals = getattr(eq, "marginals", None)
                if marginals is not None:
                    eq_marginals = np.asarray(marginals, dtype=float)
        return BackendResult(
            status=status, x=x,
            objective=objective if objective is not None
            else float("nan"),
            iterations=int(getattr(result, "nit", 0) or 0),
            ineq_marginals=ineq_marginals, eq_marginals=eq_marginals,
            message=str(getattr(result, "message", "")))
