"""Pluggable solver backends for the LP substrate.

A backend consumes a :class:`~repro.lpsolve.compiled.CompiledLP` (the
sense-normalized *minimize* form with ``A_ub x <= b_ub`` rows) and
returns a :class:`BackendResult`. Two backends ship with the
reproduction:

- ``scipy`` — :func:`scipy.optimize.linprog` with HiGHS, the default
  and the stand-in for the paper's CPLEX.
- ``dense`` — a dependency-light bounded-variable simplex on dense
  numpy arrays, the fallback for environments where the compiled
  HiGHS library is unavailable (and an independent cross-check).

Selection precedence, most specific first:

1. ``Model(backend=...)`` / ``Formulation(..., backend=...)``
   (a name or a :class:`SolverBackend` instance);
2. :func:`set_default_backend` (the CLI's ``--solver`` flag);
3. the ``REPRO_SOLVER`` environment variable;
4. ``scipy``.

To add a backend: subclass :class:`SolverBackend`, implement
:meth:`SolverBackend.solve`, and call :func:`register_backend` — see
``docs/ARCHITECTURE.md`` for a worked example.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.lpsolve.compiled import CompiledLP
from repro.lpsolve.errors import LPError
from repro.lpsolve.solution import SolveStatus

ENV_VAR = "REPRO_SOLVER"


@dataclass
class BackendResult:
    """Outcome of one backend solve, in the compiled (minimize) form.

    Attributes:
        status: terminal solve status.
        x: primal values (undefined unless ``status`` is OPTIMAL).
        objective: ``c @ x`` of the compiled minimize form.
        iterations: solver iteration count.
        ineq_marginals: duals ``d(objective)/d(b_ub)`` per inequality
            row of the compiled form, or None when unavailable.
        eq_marginals: duals per equality row, or None.
        message: backend-specific diagnostic text.
    """

    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: float = float("nan")
    iterations: int = 0
    ineq_marginals: Optional[np.ndarray] = None
    eq_marginals: Optional[np.ndarray] = None
    message: str = ""


class SolverBackend:
    """Interface every solver backend implements."""

    #: registry key; subclasses must override.
    name: str = ""

    def solve(self, compiled: CompiledLP) -> BackendResult:
        """Solve the compiled minimize-form LP."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


_FACTORIES: Dict[str, Callable[[], SolverBackend]] = {}
_INSTANCES: Dict[str, SolverBackend] = {}
_default_name: Optional[str] = None


def register_backend(name: str,
                     factory: Callable[[], SolverBackend]) -> None:
    """Register a backend factory under ``name`` (lower-cased)."""
    _FACTORIES[name.lower()] = factory
    _INSTANCES.pop(name.lower(), None)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_FACTORIES)


def get_backend(name: str) -> SolverBackend:
    """The (cached) backend instance registered under ``name``."""
    key = name.lower()
    if key not in _FACTORIES:
        raise LPError(
            f"unknown solver backend {name!r}; available: "
            f"{', '.join(available_backends())}")
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend,
    overriding the ``REPRO_SOLVER`` environment variable."""
    global _default_name
    if name is not None:
        get_backend(name)  # validate eagerly
    _default_name = name


def default_backend_name() -> str:
    """The name resolve_backend(None) would use right now."""
    if _default_name is not None:
        return _default_name
    return os.environ.get(ENV_VAR, "scipy")


def resolve_backend(spec: Union[None, str, SolverBackend]
                    ) -> SolverBackend:
    """Resolve a backend spec (instance, name, or None) to an
    instance, applying the documented precedence."""
    if isinstance(spec, SolverBackend):
        return spec
    if spec is None:
        return get_backend(default_backend_name())
    return get_backend(spec)


def _make_scipy() -> SolverBackend:
    from repro.lpsolve.backends.scipy_highs import ScipyHighsBackend

    return ScipyHighsBackend()


def _make_dense() -> SolverBackend:
    from repro.lpsolve.backends.dense import DenseSimplexBackend

    return DenseSimplexBackend()


register_backend("scipy", _make_scipy)
register_backend("dense", _make_dense)

__all__ = [
    "BackendResult",
    "ENV_VAR",
    "SolverBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]
