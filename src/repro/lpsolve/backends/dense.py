"""A dependency-light dense simplex backend.

Implements a bounded-variable, two-phase revised simplex on dense
numpy arrays (LAPACK does the factorizations; all pivoting logic is
plain Python). It exists for two reasons:

- a fallback for environments where scipy's compiled HiGHS plugin is
  unavailable or broken — the formulations keep working, just slower;
- an independent cross-check of the default backend: the
  backend-equivalence tests solve the same compiled structure with
  both and compare objectives and constraint satisfaction.

It is intended for the small-to-medium instances the test suite and
controller paths produce; the sweep experiments on the large ISP
topologies should stay on the default backend.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import LinAlgError, lu_factor, lu_solve

from repro.lpsolve.backends import BackendResult, SolverBackend
from repro.lpsolve.compiled import CompiledLP
from repro.lpsolve.solution import SolveStatus

_PIVOT_TOL = 1e-10
_STALL_LIMIT = 100  # iterations without progress before Bland's rule


class DenseSimplexBackend(SolverBackend):
    """Bounded-variable two-phase simplex on dense arrays."""

    name = "dense"

    def solve(self, compiled: CompiledLP) -> BackendResult:
        solver = _DenseSimplex(compiled)
        return solver.run()


class _DenseSimplex:
    """One solve's worth of state for the dense simplex."""

    def __init__(self, compiled: CompiledLP) -> None:
        self.n = compiled.num_variables
        a_ub = (compiled.a_ub.toarray()
                if compiled.a_ub is not None
                else np.zeros((0, self.n)))
        a_eq = (compiled.a_eq.toarray()
                if compiled.a_eq is not None
                else np.zeros((0, self.n)))
        self.m_ub = a_ub.shape[0]
        self.m_eq = a_eq.shape[0]
        self.m = self.m_ub + self.m_eq
        b_ub = (np.asarray(compiled.b_ub, dtype=float)
                if self.m_ub else np.zeros(0))
        b_eq = (np.asarray(compiled.b_eq, dtype=float)
                if self.m_eq else np.zeros(0))
        self.b = np.concatenate([b_ub, b_eq])

        # Columns: structural | slacks (one per ub row) | artificials.
        slack_block = np.vstack([np.eye(self.m_ub),
                                 np.zeros((self.m_eq, self.m_ub))])
        self.A = np.hstack([np.vstack([a_ub, a_eq]), slack_block])
        self.c_struct = np.asarray(compiled.c, dtype=float)

        lb = np.array([bound[0] for bound in compiled.bounds],
                      dtype=float)
        ub = np.array([np.inf if bound[1] is None else bound[1]
                       for bound in compiled.bounds], dtype=float)
        self.lb = np.concatenate([lb, np.zeros(self.m_ub)])
        self.ub = np.concatenate([ub, np.full(self.m_ub, np.inf)])

        self.feas_tol = 1e-8 * (1.0 + float(np.abs(self.b).max())
                                if self.m else 1.0)

    # -- driver ------------------------------------------------------------

    def run(self) -> BackendResult:
        if self.m == 0:
            return self._solve_bounds_only()
        try:
            return self._run_two_phase()
        except LinAlgError:
            return BackendResult(
                status=SolveStatus.ERROR,
                message="dense simplex: singular basis")

    def _solve_bounds_only(self) -> BackendResult:
        """No constraints: each variable sits at its cheapest bound."""
        x = np.zeros(self.n)
        for j in range(self.n):
            cj, lo, hi = self.c_struct[j], self.lb[j], self.ub[j]
            if cj > 0:
                if not np.isfinite(lo):
                    return BackendResult(status=SolveStatus.UNBOUNDED)
                x[j] = lo
            elif cj < 0:
                if not np.isfinite(hi):
                    return BackendResult(status=SolveStatus.UNBOUNDED)
                x[j] = hi
            else:
                x[j] = lo if np.isfinite(lo) else min(hi, 0.0)
        return BackendResult(
            status=SolveStatus.OPTIMAL, x=x,
            objective=float(self.c_struct @ x), iterations=0,
            ineq_marginals=np.zeros(0), eq_marginals=np.zeros(0))

    def _run_two_phase(self) -> BackendResult:
        n_cols = self.A.shape[1]
        # Nonbasic start: every column at its (finite) lower bound.
        x = np.where(np.isfinite(self.lb), self.lb,
                     np.where(np.isfinite(self.ub), self.ub, 0.0))
        at_upper = np.zeros(n_cols, dtype=bool)

        residual = self.b - self.A @ x
        basis = np.empty(self.m, dtype=int)
        art_cols = []
        art_block = []
        for row in range(self.m):
            if row < self.m_ub and residual[row] >= 0.0:
                basis[row] = self.n + row  # slack carries the row
                continue
            sign = 1.0 if residual[row] >= 0.0 else -1.0
            column = np.zeros(self.m)
            column[row] = sign
            art_block.append(column)
            art_cols.append(n_cols + len(art_cols))
            basis[row] = art_cols[-1]

        total_iters = 0
        if art_cols:
            self.A = np.hstack(
                [self.A, np.column_stack(art_block)])
            self.lb = np.concatenate(
                [self.lb, np.zeros(len(art_cols))])
            self.ub = np.concatenate(
                [self.ub, np.full(len(art_cols), np.inf)])
            x = np.concatenate([x, np.zeros(len(art_cols))])
            at_upper = np.concatenate(
                [at_upper, np.zeros(len(art_cols), dtype=bool)])
            phase1_cost = np.zeros(self.A.shape[1])
            phase1_cost[art_cols] = 1.0
            status, x, basis, at_upper, iters = self._iterate(
                phase1_cost, x, basis, at_upper)
            total_iters += iters
            if status is not SolveStatus.OPTIMAL:
                return BackendResult(
                    status=SolveStatus.ERROR,
                    message="dense simplex: phase 1 did not converge")
            if float(x[art_cols].sum()) > self.feas_tol:
                return BackendResult(status=SolveStatus.INFEASIBLE,
                                     iterations=total_iters)
            # Pin artificials at zero for phase 2.
            self.ub[art_cols] = 0.0
            x[art_cols] = 0.0

        cost = np.zeros(self.A.shape[1])
        cost[:self.n] = self.c_struct
        status, x, basis, at_upper, iters = self._iterate(
            cost, x, basis, at_upper)
        total_iters += iters
        if status is not SolveStatus.OPTIMAL:
            return BackendResult(status=status, iterations=total_iters)

        lu = lu_factor(self.A[:, basis])
        y = lu_solve(lu, cost[basis], trans=1)
        return BackendResult(
            status=SolveStatus.OPTIMAL, x=x[:self.n].copy(),
            objective=float(self.c_struct @ x[:self.n]),
            iterations=total_iters,
            ineq_marginals=y[:self.m_ub].copy(),
            eq_marginals=y[self.m_ub:].copy())

    # -- the simplex loop --------------------------------------------------

    def _iterate(self, cost: np.ndarray, x: np.ndarray,
                 basis: np.ndarray, at_upper: np.ndarray
                 ) -> Tuple[SolveStatus, np.ndarray, np.ndarray,
                            np.ndarray, int]:
        A, b, lb, ub = self.A, self.b, self.lb, self.ub
        n_cols = A.shape[1]
        max_iter = max(2000, 50 * (self.m + n_cols))
        cost_scale = 1.0 + float(np.abs(cost).max())
        d_tol = 1e-9 * cost_scale
        bland = False
        stall = 0
        best_obj = np.inf

        is_basic = np.zeros(n_cols, dtype=bool)
        is_basic[basis] = True

        for iteration in range(max_iter):
            lu = lu_factor(A[:, basis])
            x_nb = np.where(is_basic, 0.0, x)
            x_basic = lu_solve(lu, b - A @ x_nb)
            x[basis] = x_basic

            y = lu_solve(lu, cost[basis], trans=1)
            reduced = cost - A.T @ y

            movable = ~is_basic & (ub - lb > _PIVOT_TOL)
            down_ok = movable & at_upper & (reduced > d_tol)
            up_ok = movable & ~at_upper & (reduced < -d_tol)
            candidates = np.nonzero(down_ok | up_ok)[0]
            if candidates.size == 0:
                return (SolveStatus.OPTIMAL, x, basis, at_upper,
                        iteration)
            if bland:
                entering = int(candidates[0])
            else:
                entering = int(
                    candidates[np.abs(reduced[candidates]).argmax()])
            sigma = -1.0 if at_upper[entering] else 1.0

            w = lu_solve(lu, A[:, entering])
            # x_B moves by -sigma * w * t as entering moves sigma * t.
            t_best = ub[entering] - lb[entering]  # bound flip distance
            leaving = -1
            leaving_to_upper = False
            for k in range(self.m):
                delta = -sigma * w[k]
                var = basis[k]
                if delta > _PIVOT_TOL:
                    room = ub[var] - x[var]
                    if not np.isfinite(room):
                        continue
                    ratio = max(room, 0.0) / delta
                    hits_upper = True
                elif delta < -_PIVOT_TOL:
                    ratio = max(x[var] - lb[var], 0.0) / (-delta)
                    hits_upper = False
                else:
                    continue
                if ratio < t_best - 1e-12:
                    t_best = ratio
                    leaving = k
                    leaving_to_upper = hits_upper
            if not np.isfinite(t_best):
                return (SolveStatus.UNBOUNDED, x, basis, at_upper,
                        iteration)

            x[basis] = x_basic - sigma * w * t_best
            if leaving < 0:
                # Entering flips to its other bound; basis unchanged.
                x[entering] = (lb[entering] if at_upper[entering]
                               else ub[entering])
                at_upper[entering] = ~at_upper[entering]
            else:
                out = basis[leaving]
                x[out] = ub[out] if leaving_to_upper else lb[out]
                at_upper[out] = leaving_to_upper
                is_basic[out] = False
                x[entering] = x[entering] + sigma * t_best
                basis[leaving] = entering
                is_basic[entering] = True

            objective = float(cost @ x)
            if objective < best_obj - 1e-12 * cost_scale:
                best_obj = objective
                stall = 0
            else:
                stall += 1
                if stall >= _STALL_LIMIT:
                    bland = True
        return SolveStatus.ERROR, x, basis, at_upper, max_iter
