"""Linear-programming substrate used by all optimization formulations.

The paper solves its formulations with an off-the-shelf solver (CPLEX).
This package provides the equivalent substrate for the reproduction: a
small modeling layer (variables, linear expressions, constraints, a
model object) that compiles to sparse matrices and is solved with the
HiGHS solver shipped inside :func:`scipy.optimize.linprog`.

Typical usage::

    from repro.lpsolve import Model

    m = Model("example")
    x = m.add_variable("x", lb=0.0, ub=1.0)
    y = m.add_variable("y", lb=0.0)
    m.add_constraint(x + 2 * y >= 1, name="cover")
    m.minimize(3 * x + y)
    sol = m.solve()
    assert sol.is_optimal
    print(sol.value(x), sol.objective_value)
"""

from repro.lpsolve.errors import (
    InfeasibleError,
    LPError,
    ModelError,
    StructureError,
    UnboundedError,
)
from repro.lpsolve.expr import LinExpr, lin_sum
from repro.lpsolve.variable import Variable
from repro.lpsolve.constraint import Constraint, ConstraintSense
from repro.lpsolve.compiled import CompiledLP
from repro.lpsolve.backends import (
    BackendResult,
    SolverBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.lpsolve.model import Model
from repro.lpsolve.solution import Solution, SolveStatus
from repro.lpsolve.writer import lp_string, write_lp

__all__ = [
    "BackendResult",
    "CompiledLP",
    "Constraint",
    "ConstraintSense",
    "InfeasibleError",
    "LPError",
    "LinExpr",
    "Model",
    "ModelError",
    "Solution",
    "SolveStatus",
    "SolverBackend",
    "StructureError",
    "UnboundedError",
    "Variable",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "lin_sum",
    "lp_string",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "write_lp",
]
