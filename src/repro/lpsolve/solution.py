"""Solved LP results."""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.lpsolve.errors import ModelError
from repro.lpsolve.expr import LinExpr
from repro.lpsolve.variable import Variable


class SolveStatus(enum.Enum):
    """Terminal state of a solve attempt."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class Solution:
    """Values and metadata from a successful (or failed) solve.

    Attributes:
        status: terminal :class:`SolveStatus`.
        objective_value: optimal objective (``nan`` unless optimal).
        solve_seconds: wall-clock time spent inside the solver.
        iterations: simplex/IPM iteration count reported by HiGHS.
    """

    def __init__(self, status: SolveStatus, values: np.ndarray,
                 objective_value: float, solve_seconds: float,
                 iterations: int, variables: Iterable[Variable],
                 duals: Optional[Dict[str, float]] = None) -> None:
        self.status = status
        self.objective_value = objective_value
        self.solve_seconds = solve_seconds
        self.iterations = iterations
        self._values = values
        self._variables = list(variables)
        self._duals = duals or {}

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def value(self, item: Union[Variable, LinExpr, float]) -> float:
        """Evaluate a variable or expression under this solution."""
        if isinstance(item, Variable):
            return float(self._values[item.index])
        if isinstance(item, LinExpr):
            total = item.constant
            for var, coeff in item.coeffs.items():
                total += coeff * self._values[var.index]
            return float(total)
        return float(item)

    def dual(self, constraint_name: str) -> float:
        """Shadow price of a named constraint at the optimum.

        For a minimization, the dual is the rate of change of the
        optimal objective per unit relaxation of the constraint's
        right-hand side; 0.0 for non-binding constraints (and for
        solves where the backend reported no marginals).
        """
        return self._duals.get(constraint_name, 0.0)

    def binding_constraints(self, tol: float = 1e-9) -> List[str]:
        """Names of constraints with nonzero shadow price."""
        return sorted(name for name, value in self._duals.items()
                      if abs(value) > tol)

    def values(self) -> Dict[Variable, float]:
        """All variable values as a dict keyed by variable."""
        if self._values is None:
            raise ModelError("no values available for a failed solve")
        return {var: float(self._values[var.index])
                for var in self._variables}

    def __repr__(self) -> str:
        return (f"Solution(status={self.status.value}, "
                f"objective={self.objective_value:.6g}, "
                f"time={self.solve_seconds:.4f}s)")
