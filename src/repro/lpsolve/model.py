"""The LP model: variable/constraint registry, compilation, solving.

Compilation builds SciPy sparse matrices (``A_ub``, ``A_eq``) from the
registered constraints; solving hands the compiled structure to a
pluggable :mod:`~repro.lpsolve.backends` backend (HiGHS via scipy by
default — the reproduction's stand-in for the paper's CPLEX).

The compiled structure is cached between solves: re-solving an
unchanged model skips compilation entirely, and the
``set_rhs`` / ``set_coefficient`` / ``set_objective_coefficient``
patch API edits individual entries of the cached matrices in place so
parameter sweeps and controller refreshes pay only the solver cost.
Any structural edit (new variable, new constraint, new objective)
invalidates the cache.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from repro.lpsolve.backends import (
    BackendResult,
    SolverBackend,
    resolve_backend,
)
from repro.lpsolve.compiled import CompiledLP
from repro.lpsolve.constraint import Constraint, ConstraintSense
from repro.obs import get_registry
from repro.lpsolve.errors import (
    InfeasibleError,
    LPError,
    ModelError,
    StructureError,
    UnboundedError,
)
from repro.lpsolve.expr import LinExpr, Operand, _as_expr
from repro.lpsolve.solution import Solution, SolveStatus
from repro.lpsolve.variable import Variable


class Model:
    """A linear program under construction.

    The model owns its variables and constraints. Typical lifecycle::

        m = Model("replication")
        x = m.add_variable("x", lb=0, ub=1)
        m.add_constraint(x >= 0.5)
        m.minimize(x)
        sol = m.solve()

    Args:
        name: human-readable label used in error messages.
        backend: solver backend — a name (``"scipy"``, ``"dense"``), a
            :class:`~repro.lpsolve.backends.SolverBackend` instance, or
            ``None`` for the process default (``--solver`` flag /
            ``REPRO_SOLVER`` env var / scipy).
    """

    def __init__(self, name: str = "lp",
                 backend: Union[None, str, SolverBackend] = None) -> None:
        self.name = name
        self.backend = backend
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None
        self._sense = 1.0  # +1 minimize, -1 maximize
        self._names_seen: Dict[str, int] = {}
        self._compiled: Optional[CompiledLP] = None

    # -- construction ----------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of registered variables (columns)."""
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        """Number of registered constraints (rows)."""
        return len(self._constraints)

    @property
    def variables(self) -> Sequence[Variable]:
        """All registered variables in creation order."""
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        """All registered constraints in insertion order."""
        return tuple(self._constraints)

    @property
    def objective(self) -> Optional[LinExpr]:
        """The objective expression, if one has been set."""
        return self._objective

    def add_variable(self, name: str, lb: float = 0.0,
                     ub: Optional[float] = None) -> Variable:
        """Create and register a continuous variable.

        Args:
            name: human-readable label; deduplicated if reused.
            lb: lower bound (default 0, matching the paper's fractions).
            ub: upper bound, or ``None`` for unbounded above.
        """
        count = self._names_seen.get(name)
        if count is not None:
            self._names_seen[name] = count + 1
            name = f"{name}#{count + 1}"
        else:
            self._names_seen[name] = 0
        var = Variable(self, len(self._variables), name, lb=lb, ub=ub)
        self._variables.append(var)
        self.invalidate()
        return var

    def add_variables(self, names: Iterable[str], lb: float = 0.0,
                      ub: Optional[float] = None) -> List[Variable]:
        """Vector form of :meth:`add_variable`."""
        return [self.add_variable(n, lb=lb, ub=ub) for n in names]

    def add_constraint(self, constraint: Constraint,
                       name: Optional[str] = None) -> Constraint:
        """Register a constraint built via expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with "
                "<=, >= or == on expressions); a plain bool usually "
                "means a comparison between two numbers")
        self._check_ownership(constraint.expr)
        if constraint.expr.is_constant():
            # A constraint with no variables is either a tautology (we
            # drop it silently) or an immediate contradiction (better
            # reported at build time than as solver infeasibility).
            if constraint.violation({}) > 1e-9:
                raise ModelError(
                    f"constant constraint {constraint!r} is "
                    "trivially infeasible")
            return constraint
        if name is not None:
            constraint.name = name
        elif constraint.name is None:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        self.invalidate()
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint],
                        prefix: str = "c") -> List[Constraint]:
        """Register several constraints, naming them ``prefix[i]``."""
        added = []
        for i, con in enumerate(constraints):
            added.append(self.add_constraint(con, name=f"{prefix}[{i}]"))
        return added

    def minimize(self, objective: Operand) -> None:
        """Set a minimization objective."""
        self._objective = _as_expr(objective)
        self._check_ownership(self._objective)
        self._sense = 1.0
        self.invalidate()

    def maximize(self, objective: Operand) -> None:
        """Set a maximization objective."""
        self._objective = _as_expr(objective)
        self._check_ownership(self._objective)
        self._sense = -1.0
        self.invalidate()

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.coeffs:
            if var.model is not self:
                raise ModelError(
                    f"variable {var.name!r} belongs to model "
                    f"{var.model.name!r}, not {self.name!r}")

    # -- compilation -------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached compiled structure (next solve recompiles)."""
        self._compiled = None

    @property
    def compiled(self) -> Optional[CompiledLP]:
        """The cached compiled structure, if any."""
        return self._compiled

    def _compile(self) -> CompiledLP:
        """Build the solver-ready sparse structure."""
        n = len(self._variables)
        c = np.zeros(n)
        for var, coeff in self._objective.coeffs.items():
            c[var.index] += coeff
        c *= self._sense

        ub_rows, ub_cols, ub_data, b_ub = [], [], [], []
        eq_rows, eq_cols, eq_data, b_eq = [], [], [], []
        ub_row_constraints = []  # (constraint, sign) per row
        eq_row_constraints = []
        for con in self._constraints:
            if con.sense is ConstraintSense.EQ:
                row = len(b_eq)
                for var, coeff in con.expr.coeffs.items():
                    if coeff != 0.0:
                        eq_rows.append(row)
                        eq_cols.append(var.index)
                        eq_data.append(coeff)
                b_eq.append(con.rhs)
                eq_row_constraints.append(con)
            else:
                # GE rows are negated into <= form.
                sign = 1.0 if con.sense is ConstraintSense.LE else -1.0
                row = len(b_ub)
                for var, coeff in con.expr.coeffs.items():
                    if coeff != 0.0:
                        ub_rows.append(row)
                        ub_cols.append(var.index)
                        ub_data.append(sign * coeff)
                b_ub.append(sign * con.rhs)
                ub_row_constraints.append((con, sign))

        a_ub = a_eq = None
        if b_ub:
            a_ub = sparse.csr_matrix(
                (ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n))
        if b_eq:
            a_eq = sparse.csr_matrix(
                (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n))
        bounds = [(v.lb, v.ub) for v in self._variables]
        return CompiledLP(c, a_ub, np.asarray(b_ub, dtype=float),
                          a_eq, np.asarray(b_eq, dtype=float), bounds,
                          ub_row_constraints, eq_row_constraints)

    # -- incremental patching ----------------------------------------------

    def set_rhs(self, constraint: Constraint, rhs: float) -> None:
        """Re-target a registered constraint's right-hand side.

        Updates the symbolic constraint and, when a compiled structure
        is cached, the corresponding ``b_ub`` / ``b_eq`` entry in place
        — no recompilation.
        """
        constraint.expr.constant = -float(rhs)
        if self._compiled is not None:
            self._compiled.patch_rhs(constraint, float(rhs))

    def set_coefficient(self, constraint: Constraint, var: Variable,
                        coeff: float) -> None:
        """Overwrite ``var``'s coefficient in a registered constraint.

        ``coeff`` is the coefficient as it appears in the constraint's
        normalized ``expr (<=|>=|==) 0`` form. Raises
        :class:`StructureError` when the compiled structure has no
        stored entry for this position (the coefficient was zero at
        compile time); callers should :meth:`invalidate` and rebuild.
        """
        if var not in constraint.expr.coeffs:
            raise StructureError(
                f"constraint {constraint.name!r} has no term for "
                f"variable {var.name!r}")
        constraint.expr.coeffs[var] = float(coeff)
        if self._compiled is not None:
            self._compiled.patch_coefficient(constraint, var.index,
                                             float(coeff))

    def set_objective_coefficient(self, var: Variable,
                                  coeff: float) -> None:
        """Overwrite one objective coefficient (in the model's stated
        min/max sense); the dense compiled ``c`` is patched in place."""
        if self._objective is None:
            raise ModelError(f"model {self.name!r} has no objective")
        self._check_ownership(_as_expr(var))
        self._objective.coeffs[var] = float(coeff)
        if self._compiled is not None:
            self._compiled.patch_objective(var.index, float(coeff),
                                           self._sense)

    # -- solving -----------------------------------------------------------

    def _extract_duals(self, result: BackendResult) -> Dict[str, float]:
        """Shadow prices per named constraint from backend marginals.

        Marginals are reported for the compiled (minimize, <=) form;
        signs are mapped back to each constraint's original sense and
        the model's min/max sense so that ``dual`` is always
        d(objective)/d(rhs).
        """
        duals: Dict[str, float] = {}
        compiled = self._compiled
        if result.ineq_marginals is not None:
            for (con, sign), marginal in zip(
                    compiled.ub_row_constraints, result.ineq_marginals):
                duals[con.name] = float(marginal) * sign * self._sense
        if result.eq_marginals is not None:
            for con, marginal in zip(compiled.eq_row_constraints,
                                     result.eq_marginals):
                duals[con.name] = float(marginal) * self._sense
        return duals

    def solve(self, check: bool = True) -> Solution:
        """Compile (or reuse the cached compilation) and solve.

        Args:
            check: when True (default), raise :class:`InfeasibleError`
                or :class:`UnboundedError` instead of returning a
                failed solution.

        Returns:
            A :class:`Solution`; inspect :attr:`Solution.status` when
            ``check=False``.
        """
        if self._objective is None:
            raise ModelError(f"model {self.name!r} has no objective")
        if not self._variables:
            raise ModelError(f"model {self.name!r} has no variables")

        metrics = get_registry()
        if self._compiled is None:
            with metrics.span("lp.build"):
                self._compiled = self._compile()
            metrics.inc("lp.compile_cache.misses")
        else:
            metrics.inc("lp.compile_cache.hits")

        backend = resolve_backend(self.backend)
        start = time.perf_counter()
        result = backend.solve(self._compiled)
        elapsed = time.perf_counter() - start
        metrics.observe("lp.solve.seconds", elapsed)
        metrics.inc("lp.solves")
        metrics.gauge("lp.num_variables", self.num_variables)
        metrics.gauge("lp.num_constraints", self.num_constraints)

        status = result.status
        duals = {}
        if status is SolveStatus.OPTIMAL:
            objective = float(result.objective) * self._sense
            values = np.asarray(result.x, dtype=float)
            duals = self._extract_duals(result)
        else:
            objective = float("nan")
            values = np.full(len(self._variables), np.nan)

        solution = Solution(
            status=status, values=values, objective_value=objective,
            solve_seconds=elapsed,
            iterations=result.iterations,
            variables=self._variables, duals=duals)

        if check and status is not SolveStatus.OPTIMAL:
            message = result.message
            if status is SolveStatus.INFEASIBLE:
                raise InfeasibleError(
                    f"model {self.name!r} is infeasible: {message}")
            if status is SolveStatus.UNBOUNDED:
                raise UnboundedError(
                    f"model {self.name!r} is unbounded: {message}")
            raise LPError(f"model {self.name!r} failed to solve: {message}")
        return solution

    def __repr__(self) -> str:
        return (f"Model({self.name!r}, vars={self.num_variables}, "
                f"constraints={self.num_constraints})")
