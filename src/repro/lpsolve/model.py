"""The LP model: variable/constraint registry, compilation, solving.

Compilation builds SciPy sparse matrices (``A_ub``, ``A_eq``) from the
registered constraints and hands them to ``scipy.optimize.linprog`` with
the HiGHS backend — the reproduction's stand-in for the paper's CPLEX.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.lpsolve.constraint import Constraint, ConstraintSense
from repro.obs import get_registry
from repro.lpsolve.errors import (
    InfeasibleError,
    LPError,
    ModelError,
    UnboundedError,
)
from repro.lpsolve.expr import LinExpr, Operand, _as_expr
from repro.lpsolve.solution import Solution, SolveStatus
from repro.lpsolve.variable import Variable

# linprog status codes (see scipy docs).
_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,  # numerical difficulties
}


class Model:
    """A linear program under construction.

    The model owns its variables and constraints. Typical lifecycle::

        m = Model("replication")
        x = m.add_variable("x", lb=0, ub=1)
        m.add_constraint(x >= 0.5)
        m.minimize(x)
        sol = m.solve()
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None
        self._sense = 1.0  # +1 minimize, -1 maximize
        self._names_seen: Dict[str, int] = {}

    # -- construction ----------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of registered variables (columns)."""
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        """Number of registered constraints (rows)."""
        return len(self._constraints)

    @property
    def variables(self) -> Sequence[Variable]:
        """All registered variables in creation order."""
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        """All registered constraints in insertion order."""
        return tuple(self._constraints)

    def add_variable(self, name: str, lb: float = 0.0,
                     ub: Optional[float] = None) -> Variable:
        """Create and register a continuous variable.

        Args:
            name: human-readable label; deduplicated if reused.
            lb: lower bound (default 0, matching the paper's fractions).
            ub: upper bound, or ``None`` for unbounded above.
        """
        count = self._names_seen.get(name)
        if count is not None:
            self._names_seen[name] = count + 1
            name = f"{name}#{count + 1}"
        else:
            self._names_seen[name] = 0
        var = Variable(self, len(self._variables), name, lb=lb, ub=ub)
        self._variables.append(var)
        return var

    def add_variables(self, names: Iterable[str], lb: float = 0.0,
                      ub: Optional[float] = None) -> List[Variable]:
        """Vector form of :meth:`add_variable`."""
        return [self.add_variable(n, lb=lb, ub=ub) for n in names]

    def add_constraint(self, constraint: Constraint,
                       name: Optional[str] = None) -> Constraint:
        """Register a constraint built via expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with "
                "<=, >= or == on expressions); a plain bool usually "
                "means a comparison between two numbers")
        self._check_ownership(constraint.expr)
        if constraint.expr.is_constant():
            # A constraint with no variables is either a tautology (we
            # drop it silently) or an immediate contradiction (better
            # reported at build time than as solver infeasibility).
            if constraint.violation({}) > 1e-9:
                raise ModelError(
                    f"constant constraint {constraint!r} is "
                    "trivially infeasible")
            return constraint
        if name is not None:
            constraint.name = name
        elif constraint.name is None:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint],
                        prefix: str = "c") -> List[Constraint]:
        """Register several constraints, naming them ``prefix[i]``."""
        added = []
        for i, con in enumerate(constraints):
            added.append(self.add_constraint(con, name=f"{prefix}[{i}]"))
        return added

    def minimize(self, objective: Operand) -> None:
        """Set a minimization objective."""
        self._objective = _as_expr(objective)
        self._check_ownership(self._objective)
        self._sense = 1.0

    def maximize(self, objective: Operand) -> None:
        """Set a maximization objective."""
        self._objective = _as_expr(objective)
        self._check_ownership(self._objective)
        self._sense = -1.0

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.coeffs:
            if var.model is not self:
                raise ModelError(
                    f"variable {var.name!r} belongs to model "
                    f"{var.model.name!r}, not {self.name!r}")

    # -- compilation and solving ------------------------------------------

    def _compile(self):
        """Build (c, A_ub, b_ub, A_eq, b_eq, bounds) for linprog."""
        n = len(self._variables)
        c = np.zeros(n)
        for var, coeff in self._objective.coeffs.items():
            c[var.index] += coeff
        c *= self._sense

        ub_rows, ub_cols, ub_data, b_ub = [], [], [], []
        eq_rows, eq_cols, eq_data, b_eq = [], [], [], []
        self._ub_row_constraints = []  # (constraint, sign) per row
        self._eq_row_constraints = []
        for con in self._constraints:
            if con.sense is ConstraintSense.EQ:
                row = len(b_eq)
                for var, coeff in con.expr.coeffs.items():
                    if coeff != 0.0:
                        eq_rows.append(row)
                        eq_cols.append(var.index)
                        eq_data.append(coeff)
                b_eq.append(con.rhs)
                self._eq_row_constraints.append(con)
            else:
                # GE rows are negated into <= form.
                sign = 1.0 if con.sense is ConstraintSense.LE else -1.0
                row = len(b_ub)
                for var, coeff in con.expr.coeffs.items():
                    if coeff != 0.0:
                        ub_rows.append(row)
                        ub_cols.append(var.index)
                        ub_data.append(sign * coeff)
                b_ub.append(sign * con.rhs)
                self._ub_row_constraints.append((con, sign))

        a_ub = a_eq = None
        if b_ub:
            a_ub = sparse.csr_matrix(
                (ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n))
        if b_eq:
            a_eq = sparse.csr_matrix(
                (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n))
        bounds = [(v.lb, v.ub) for v in self._variables]
        return c, a_ub, np.asarray(b_ub), a_eq, np.asarray(b_eq), bounds

    def _extract_duals(self, result) -> Dict[str, float]:
        """Shadow prices per named constraint from HiGHS marginals.

        Marginals are reported for the compiled (minimize, <=) form;
        signs are mapped back to each constraint's original sense and
        the model's min/max sense so that ``dual`` is always
        d(objective)/d(rhs).
        """
        duals: Dict[str, float] = {}
        ineq = getattr(result, "ineqlin", None)
        if ineq is not None and getattr(ineq, "marginals", None) is not None:
            for (con, sign), marginal in zip(self._ub_row_constraints,
                                             ineq.marginals):
                duals[con.name] = float(marginal) * sign * self._sense
        eq = getattr(result, "eqlin", None)
        if eq is not None and getattr(eq, "marginals", None) is not None:
            for con, marginal in zip(self._eq_row_constraints,
                                     eq.marginals):
                duals[con.name] = float(marginal) * self._sense
        return duals

    def solve(self, check: bool = True) -> Solution:
        """Solve the model with HiGHS.

        Args:
            check: when True (default), raise :class:`InfeasibleError`
                or :class:`UnboundedError` instead of returning a
                failed solution.

        Returns:
            A :class:`Solution`; inspect :attr:`Solution.status` when
            ``check=False``.
        """
        if self._objective is None:
            raise ModelError(f"model {self.name!r} has no objective")
        if not self._variables:
            raise ModelError(f"model {self.name!r} has no variables")

        metrics = get_registry()
        with metrics.span("lp.build"):
            c, a_ub, b_ub, a_eq, b_eq, bounds = self._compile()
        start = time.perf_counter()
        with metrics.span("lp.solve"):
            result = linprog(
                c,
                A_ub=a_ub, b_ub=b_ub if a_ub is not None else None,
                A_eq=a_eq, b_eq=b_eq if a_eq is not None else None,
                bounds=bounds, method="highs")
        elapsed = time.perf_counter() - start
        metrics.inc("lp.solves")
        metrics.gauge("lp.num_variables", self.num_variables)
        metrics.gauge("lp.num_constraints", self.num_constraints)

        status = _LINPROG_STATUS.get(result.status, SolveStatus.ERROR)
        duals = {}
        if status is SolveStatus.OPTIMAL:
            objective = float(result.fun) * self._sense
            values = np.asarray(result.x, dtype=float)
            duals = self._extract_duals(result)
        else:
            objective = float("nan")
            values = np.full(len(self._variables), np.nan)

        solution = Solution(
            status=status, values=values, objective_value=objective,
            solve_seconds=elapsed,
            iterations=int(getattr(result, "nit", 0) or 0),
            variables=self._variables, duals=duals)

        if check and status is not SolveStatus.OPTIMAL:
            message = getattr(result, "message", "")
            if status is SolveStatus.INFEASIBLE:
                raise InfeasibleError(
                    f"model {self.name!r} is infeasible: {message}")
            if status is SolveStatus.UNBOUNDED:
                raise UnboundedError(
                    f"model {self.name!r} is unbounded: {message}")
            raise LPError(f"model {self.name!r} failed to solve: {message}")
        return solution

    def __repr__(self) -> str:
        return (f"Model({self.name!r}, vars={self.num_variables}, "
                f"constraints={self.num_constraints})")
