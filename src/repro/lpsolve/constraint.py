"""LP constraints.

A constraint is stored in normalized form ``expr (<=|>=|==) 0`` where
``expr`` is a :class:`~repro.lpsolve.expr.LinExpr` whose constant term
absorbs the right-hand side.
"""

from __future__ import annotations

import enum
from typing import Mapping, Optional, TYPE_CHECKING

from repro.lpsolve.expr import LinExpr

if TYPE_CHECKING:  # pragma: no cover
    from repro.lpsolve.variable import Variable


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr sense 0``.

    Built by comparing expressions (``x + y <= 1``); the comparison
    operators on :class:`LinExpr`/:class:`Variable` return instances of
    this class. The model assigns ``name`` when the constraint is added.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: ConstraintSense,
                 name: Optional[str] = None) -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant term across."""
        return -self.expr.constant

    def violation(self, values: Mapping["Variable", float]) -> float:
        """Amount by which ``values`` (a var->value mapping) violates
        this constraint; 0.0 when satisfied.

        Useful in tests to check solutions independently of the solver.
        """
        lhs = self.expr.constant + sum(
            coeff * values[var]
            for var, coeff in self.expr.coeffs.items() if coeff != 0.0)
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, -lhs)
        return abs(lhs)

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"
