"""LP decision variables."""

from __future__ import annotations

import math
from typing import Optional, TYPE_CHECKING

from repro.lpsolve.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.lpsolve.constraint import Constraint
    from repro.lpsolve.expr import LinExpr, Operand
    from repro.lpsolve.model import Model


class Variable:
    """A continuous decision variable owned by a :class:`Model`.

    Variables are created through :meth:`Model.add_variable`; they hash
    by identity and carry their column index in the compiled matrix.
    Arithmetic on a variable promotes it to a
    :class:`~repro.lpsolve.expr.LinExpr`.
    """

    __slots__ = ("name", "lb", "ub", "index", "_model")

    def __init__(self, model: "Model", index: int, name: str,
                 lb: float = 0.0, ub: Optional[float] = None) -> None:
        if ub is not None and ub < lb:
            raise ModelError(
                f"variable {name!r}: upper bound {ub} below lower "
                f"bound {lb}")
        if math.isnan(lb) or (ub is not None and math.isnan(ub)):
            raise ModelError(f"variable {name!r}: NaN bound")
        self._model = model
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = None if ub is None else float(ub)

    @property
    def model(self) -> "Model":
        """The model this variable belongs to."""
        return self._model

    # -- promotion to expressions ---------------------------------------

    def _expr(self) -> "LinExpr":
        from repro.lpsolve.expr import LinExpr

        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "Operand") -> "LinExpr":
        return self._expr() + other

    def __radd__(self, other: "Operand") -> "LinExpr":
        return self._expr() + other

    def __sub__(self, other: "Operand") -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: "Operand") -> "LinExpr":
        return (-self._expr()) + other

    def __neg__(self) -> "LinExpr":
        return -self._expr()

    def __mul__(self, factor: float) -> "LinExpr":
        return self._expr() * factor

    def __rmul__(self, factor: float) -> "LinExpr":
        return self._expr() * factor

    def __truediv__(self, divisor: float) -> "LinExpr":
        return self._expr() / divisor

    def __le__(self, other: "Operand") -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: "Operand") -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other: "Operand") -> "Constraint":  # type: ignore[override]
        return self._expr() == other

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        ub = "inf" if self.ub is None else f"{self.ub:g}"
        return f"Variable({self.name!r}, lb={self.lb:g}, ub={ub})"
