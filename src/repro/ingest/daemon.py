"""The streaming ingestion daemon (ROADMAP item 1).

:class:`IngestDaemon` is the long-running process between the packet
taps and the controller. It consumes an *unbounded* stream of
session-aligned :class:`~repro.simulation.batch.PacketBatch` slabs —
a :class:`~repro.simulation.tracestore.ChunkedReplay` over a packed
trace store, or any generator of slabs — over the discrete-event
:class:`~repro.runtime.events.EventLoop`, folds each slab into
per-worker :class:`~repro.sketch.volume.ClassVolumeSketch` instances
(round-robin, the multi-queue shape of the DPDK+OctoSketch design),
and on demand merges the workers losslessly into one aggregate from
which it emits an
:class:`~repro.traffic.matrix.EstimatedTrafficMatrix` or
estimate-carrying traffic classes for the controller's
``resolve_traffic()``.

Memory is the contract here: the daemon never holds more than the
worker sketches plus the single in-flight slab, so peak resident
state is O(sketch + chunk) no matter how many packets stream past.
:attr:`IngestStats.max_resident_bytes` *measures* that bound — the
estimator scenario asserts it instead of eyeballing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

import numpy as np

from repro.obs import get_registry
from repro.runtime.events import EventLoop
from repro.sketch import ClassVolumeSketch
from repro.traffic.classes import TrafficClass
from repro.traffic.matrix import EstimatedTrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.batch import PacketBatch

_SESSION_COLUMNS = ("proto", "src_ip", "src_port", "dst_ip",
                    "dst_port", "class_id", "trace_class_id",
                    "fwd_path_id", "rev_path_id", "session_key")
_PACKET_COLUMNS = ("session_of_packet", "direction", "size_bytes",
                   "payload_offsets")


def chunk_resident_bytes(chunk: "PacketBatch") -> int:
    """Bytes a slab keeps resident while it is being consumed."""
    total = 0
    for name in _SESSION_COLUMNS:
        column = getattr(chunk.sessions, name, None)
        if isinstance(column, np.ndarray):
            total += int(column.nbytes)
    for name in _PACKET_COLUMNS:
        column = getattr(chunk, name, None)
        if isinstance(column, np.ndarray):
            total += int(column.nbytes)
    buffer = chunk.payload_buffer
    total += (int(buffer.nbytes) if isinstance(buffer, np.ndarray)
              else len(buffer))
    return total


@dataclass
class IngestStats:
    """Counters for one ingestion window (reset per epoch)."""

    chunks: int = 0
    packets: int = 0
    sessions: int = 0
    emits: int = 0
    merges: int = 0
    max_resident_bytes: int = 0
    window_start: Optional[float] = None
    window_end: Optional[float] = None

    def packets_per_second(self) -> Optional[float]:
        """Simulated-time throughput of the current window."""
        if (self.window_start is None or self.window_end is None or
                self.window_end <= self.window_start):
            return None
        return self.packets / (self.window_end - self.window_start)


class IngestDaemon:
    """Bounded-memory stream consumer feeding the control loop.

    Args:
        class_names: the registered traffic-class universe.
        width / depth / source_width: count-min shape, forwarded to
            every worker sketch.
        seed: hash-family seed (keyword-only, mandatory); all workers
            share it — that is what makes their merge lossless.
        workers: per-worker sketch count (round-robin assignment).
        scale: default sampling-rate calibration from observed
            sessions to ``|T_c|`` units for emitted estimates.
        on_estimate: called with each emitted
            :class:`EstimatedTrafficMatrix`.
    """

    def __init__(self, class_names: Sequence[str], *,
                 width: int = 512, depth: int = 4, seed: int,
                 source_width: Optional[int] = None,
                 workers: int = 2, scale: float = 1.0,
                 on_estimate: Optional[
                     Callable[[EstimatedTrafficMatrix], None]] = None
                 ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.class_names = tuple(class_names)
        self.width = width
        self.depth = depth
        self.source_width = source_width
        self.seed = seed
        self.scale = scale
        self.on_estimate = on_estimate
        self.workers: List[ClassVolumeSketch] = [
            self._make_sketch() for _ in range(workers)]
        self._next_worker = 0
        self.stats = IngestStats()

    def _make_sketch(self) -> ClassVolumeSketch:
        return ClassVolumeSketch(
            self.class_names, width=self.width, depth=self.depth,
            seed=self.seed, source_width=self.source_width)

    # -- consumption -------------------------------------------------------

    @property
    def sketch_bytes(self) -> int:
        """Resident bytes across the worker sketches."""
        return sum(worker.state_bytes for worker in self.workers)

    def consume(self, chunk: "PacketBatch",
                now: Optional[float] = None) -> None:
        """Fold one slab into the next worker's sketch."""
        worker = self.workers[self._next_worker]
        self._next_worker = (self._next_worker + 1) % \
            len(self.workers)
        sessions = worker.observe_batch(chunk)
        self.stats.chunks += 1
        self.stats.packets += int(chunk.num_packets)
        self.stats.sessions += sessions
        resident = self.sketch_bytes + chunk_resident_bytes(chunk)
        self.stats.max_resident_bytes = max(
            self.stats.max_resident_bytes, resident)
        metrics = get_registry()
        metrics.inc("ingest.chunks")
        metrics.inc("ingest.packets", chunk.num_packets)
        metrics.gauge("ingest.resident_bytes", resident)
        if now is not None:
            if self.stats.window_start is None:
                self.stats.window_start = now
            self.stats.window_end = now
            rate = self.stats.packets_per_second()
            if rate is not None:
                metrics.gauge("ingest.packets_per_second", rate)

    def stream(self, loop: EventLoop,
               chunks: Iterable["PacketBatch"], *,
               start: Optional[float] = None,
               interval: float = 1.0) -> None:
        """Schedule a chunk stream onto the event loop.

        One slab is consumed per firing, ``interval`` simulated
        seconds apart, and the next firing is scheduled only then —
        the iterator is never materialized, so a generator-backed
        unbounded feed stays O(chunk) resident.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        iterator: Iterator["PacketBatch"] = iter(chunks)

        def pump() -> None:
            try:
                chunk = next(iterator)
            except StopIteration:
                return
            self.consume(chunk, now=loop.now)
            loop.schedule_in(interval, pump)

        loop.schedule_at(loop.now if start is None else start, pump)

    # -- estimates ---------------------------------------------------------

    def snapshot(self) -> ClassVolumeSketch:
        """Merge the workers into one aggregate (OctoSketch-style).

        The workers keep their state; the aggregate is a fresh sketch
        so a snapshot never perturbs ingestion.
        """
        merged = self._make_sketch()
        for worker in self.workers:
            merged.merge(worker)
        self.stats.merges += len(self.workers)
        get_registry().inc("sketch.merges", len(self.workers))
        self.stats.max_resident_bytes = max(
            self.stats.max_resident_bytes,
            self.sketch_bytes + merged.state_bytes)
        return merged

    def estimated_classes(self, template: Sequence[TrafficClass],
                          scale: Optional[float] = None
                          ) -> List[TrafficClass]:
        """Template classes carrying the aggregate's estimates."""
        return self.snapshot().estimated_classes(
            template, self.scale if scale is None else scale)

    def emit(self, template: Sequence[TrafficClass],
             scale: Optional[float] = None) -> EstimatedTrafficMatrix:
        """Emit the current estimate as a traffic matrix."""
        matrix = self.snapshot().estimated_matrix(
            template, self.scale if scale is None else scale)
        self.stats.emits += 1
        get_registry().inc("ingest.emits")
        if self.on_estimate is not None:
            self.on_estimate(matrix)
        return matrix

    def begin_window(self) -> None:
        """Reset for a new estimation window (epoch boundary).

        Worker sketches are zeroed in place; cumulative high-water
        marks (``max_resident_bytes``) survive, per-window counters
        restart.
        """
        for worker in self.workers:
            worker.reset()
        high_water = self.stats.max_resident_bytes
        self.stats = IngestStats(max_resident_bytes=high_water)
        self._next_worker = 0
