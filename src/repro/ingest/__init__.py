"""Streaming ingestion: bounded slabs in, traffic estimates out."""

from repro.ingest.daemon import (
    IngestDaemon,
    IngestStats,
    chunk_resident_bytes,
)

__all__ = [
    "IngestDaemon",
    "IngestStats",
    "chunk_resident_bytes",
]
