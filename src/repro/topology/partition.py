"""Deterministic region partitioning for the sharded control plane.

The sharded controller (ROADMAP item 4) decomposes the global
replication LP into per-region subproblems. This module produces the
regions: contiguous groups of PoPs grown by a balanced multi-source
BFS so that each region absorbs a comparable share of the
traffic-weighted node mass, plus an assignment of every traffic class
to the region that owns the majority of its path's hops.

Everything is deterministic for a given ``(topology, classes,
num_regions, seed)`` tuple — region membership feeds scenario
fingerprints and pinned acceptance tests, so ties are broken
lexicographically and the only effect of ``seed`` is rotating which
high-traffic PoP anchors the first region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass


@dataclass(frozen=True)
class Region:
    """One shard of the control plane.

    Attributes:
        name: stable identifier (``region-0`` ... ``region-k``).
        nodes: the PoPs this region's controller owns.
        class_names: traffic classes planned by this region.
        traffic: total ``num_sessions`` over the region's classes.
    """

    name: str
    nodes: Tuple[str, ...]
    class_names: Tuple[str, ...]
    traffic: float

    @property
    def node_set(self) -> Set[str]:
        return set(self.nodes)


@dataclass(frozen=True)
class RegionPartition:
    """A complete, non-overlapping split of a topology into regions.

    Attributes:
        regions: the shards, ordered by name.
        node_region: node name -> owning region name. The datacenter
            node (off-path, shared by construction) belongs to no
            region and is absent here.
        class_region: class name -> owning region name.
        adjacency: region name -> neighboring region names (regions
            joined by at least one topology link), used to pick the
            adopter during controller failover.
        seed: the seed the partition was grown with.
    """

    regions: Tuple[Region, ...]
    node_region: Dict[str, str]
    class_region: Dict[str, str]
    adjacency: Dict[str, Tuple[str, ...]]
    seed: int

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def region_names(self) -> List[str]:
        return [region.name for region in self.regions]

    def region_of_node(self, node: str) -> str:
        return self.node_region[node]

    def region_of_class(self, class_name: str) -> str:
        return self.class_region[class_name]

    def adopter_for(self, dead_region: str) -> str:
        """The neighbor that should adopt a failed region's shard.

        Deterministic choice: the lightest-traffic adjacent region
        (ties broken by name) — adopting a shard adds its whole load,
        so the least-loaded neighbor keeps the shards balanced. Falls
        back to the lightest surviving region when the partition has
        no recorded adjacency (single-region or disconnected cases).
        """
        self.region(dead_region)  # raises KeyError for unknown names
        candidates = [name for name in self.adjacency.get(
            dead_region, ()) if name != dead_region]
        if not candidates:
            candidates = [region.name for region in self.regions
                          if region.name != dead_region]
        if not candidates:
            raise ValueError(
                f"region {dead_region!r} has no possible adopter")
        return min(candidates,
                   key=lambda name: (self.region(name).traffic, name))

    def merge(self, dead_region: str, into_region: str
              ) -> "RegionPartition":
        """Fold a failed region's nodes and classes into a neighbor.

        Returns a new partition where ``into_region`` owns both
        shards; all other regions are untouched. Region names are
        preserved so metrics and scenario timelines stay comparable
        across the failover.
        """
        dead = self.region(dead_region)
        into = self.region(into_region)
        if dead_region == into_region:
            raise ValueError("cannot merge a region into itself")
        merged = Region(
            name=into.name,
            nodes=tuple(sorted(dead.nodes + into.nodes)),
            class_names=tuple(sorted(dead.class_names +
                                     into.class_names)),
            traffic=dead.traffic + into.traffic)
        regions = tuple(merged if region.name == into.name else region
                        for region in self.regions
                        if region.name != dead.name)
        node_region = {node: (into.name if owner == dead.name
                              else owner)
                       for node, owner in self.node_region.items()}
        class_region = {name: (into.name if owner == dead.name
                               else owner)
                        for name, owner in self.class_region.items()}
        adjacency: Dict[str, Tuple[str, ...]] = {}
        for name, neighbors in self.adjacency.items():
            if name == dead.name:
                continue
            mapped = {into.name if n == dead.name else n
                      for n in neighbors}
            mapped.discard(name)
            adjacency[name] = tuple(sorted(mapped))
        if into.name in adjacency or dead.name in self.adjacency:
            extra = {into.name if n == dead.name else n
                     for n in self.adjacency.get(dead.name, ())}
            extra.update(adjacency.get(into.name, ()))
            extra.discard(into.name)
            adjacency[into.name] = tuple(sorted(extra))
        return RegionPartition(regions=regions,
                               node_region=node_region,
                               class_region=class_region,
                               adjacency=adjacency, seed=self.seed)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-region sizes for reports and metrics."""
        return {region.name: {"nodes": len(region.nodes),
                              "classes": len(region.class_names),
                              "traffic": region.traffic}
                for region in self.regions}


def _node_weights(candidates: Sequence[str],
                  classes: Sequence[TrafficClass]) -> Dict[str, float]:
    """Traffic-weighted node mass: each node counts the sessions of
    every class whose path crosses it."""
    weight = {node: 0.0 for node in candidates}
    for cls in classes:
        for node in cls.path:
            if node in weight:
                weight[node] += cls.num_sessions
    return weight


def _pick_seeds(topology: Topology, candidates: Sequence[str],
                weight: Dict[str, float], num_regions: int,
                seed: int) -> List[str]:
    """Region anchors: a seeded high-traffic start, then farthest-
    point sampling so regions begin well separated."""
    ranked = sorted(candidates, key=lambda n: (-weight[n], n))
    anchors = [ranked[seed % len(ranked)]]
    while len(anchors) < num_regions:
        def separation(node: str) -> int:
            return min(topology.hop_distance(node, anchor)
                       for anchor in anchors)
        remaining = [n for n in candidates if n not in anchors]
        anchors.append(min(
            remaining,
            key=lambda n: (-separation(n), -weight[n], n)))
    return anchors


def _grow_regions(topology: Topology, candidates: Sequence[str],
                  weight: Dict[str, float], anchors: Sequence[str]
                  ) -> List[Set[str]]:
    """Balanced multi-source BFS: the lightest region with a
    non-empty frontier absorbs its heaviest frontier node."""
    members: List[Set[str]] = [{anchor} for anchor in anchors]
    grown = [weight[anchor] for anchor in anchors]
    unassigned = set(candidates) - set(anchors)
    while unassigned:
        progressed = False
        for idx in sorted(range(len(anchors)),
                          key=lambda i: (grown[i], i)):
            frontier = [n for n in unassigned
                        if any(nb in members[idx]
                               for nb in topology.neighbors(n))]
            if not frontier:
                continue
            node = min(frontier, key=lambda n: (-weight[n], n))
            members[idx].add(node)
            grown[idx] += weight[node]
            unassigned.discard(node)
            progressed = True
            break
        if not progressed:
            # Disconnected leftovers (cannot happen on the built-in
            # topologies, which are connected): balance them onto the
            # lightest regions so the partition is always total.
            for node in sorted(unassigned,
                               key=lambda n: (-weight[n], n)):
                idx = min(range(len(anchors)),
                          key=lambda i: (grown[i], i))
                members[idx].add(node)
                grown[idx] += weight[node]
            unassigned.clear()
    return members


def _assign_classes(classes: Sequence[TrafficClass],
                    node_region: Dict[str, str],
                    region_names: Sequence[str]
                    ) -> Dict[str, str]:
    """Each class goes to the region owning the majority of its path
    hops; ties prefer the ingress node's region, then name order."""
    order = {name: i for i, name in enumerate(region_names)}
    assignment: Dict[str, str] = {}
    for cls in classes:
        hops: Dict[str, int] = {}
        for node in cls.path:
            owner = node_region.get(node)
            if owner is not None:
                hops[owner] = hops.get(owner, 0) + 1
        if not hops:
            raise ValueError(
                f"class {cls.name!r} touches no partitioned node")
        best = max(hops.values())
        tied = sorted((name for name, count in hops.items()
                       if count == best), key=lambda n: order[n])
        ingress_owner = node_region.get(cls.ingress)
        assignment[cls.name] = (ingress_owner
                                if ingress_owner in tied else tied[0])
    return assignment


def partition_topology(topology: Topology,
                       classes: Sequence[TrafficClass],
                       num_regions: int, seed: int = 0,
                       dc_node: Optional[str] = None
                       ) -> RegionPartition:
    """Split a topology into ``num_regions`` contiguous shards.

    Args:
        topology: the PoP graph (may include an off-path datacenter).
        classes: the traffic matrix used for balancing and class
            ownership.
        num_regions: how many shards to grow (>= 1 and at most the
            number of non-datacenter nodes).
        seed: rotates which high-traffic PoP anchors the first region;
            every other decision is deterministic.
        dc_node: the shared datacenter node, excluded from every
            region (its capacity is reconciled by the coordinator, not
            owned by any one shard).

    Returns:
        A :class:`RegionPartition` covering every non-datacenter node
        and every class.
    """
    candidates = [n for n in topology.nodes if n != dc_node]
    if num_regions < 1:
        raise ValueError("num_regions must be >= 1")
    if num_regions > len(candidates):
        raise ValueError(
            f"cannot grow {num_regions} regions from "
            f"{len(candidates)} nodes")
    if seed < 0:
        raise ValueError("seed must be non-negative")

    weight = _node_weights(candidates, classes)
    anchors = _pick_seeds(topology, candidates, weight, num_regions,
                          seed)
    members = _grow_regions(topology, candidates, weight, anchors)

    region_names = [f"region-{i}" for i in range(num_regions)]
    node_region = {node: region_names[i]
                   for i, nodes in enumerate(members)
                   for node in nodes}
    class_region = _assign_classes(classes, node_region, region_names)

    traffic: Dict[str, float] = {name: 0.0 for name in region_names}
    class_names: Dict[str, List[str]] = {
        name: [] for name in region_names}
    for cls in classes:
        owner = class_region[cls.name]
        traffic[owner] += cls.num_sessions
        class_names[owner].append(cls.name)

    regions = tuple(
        Region(name=name,
               nodes=tuple(sorted(members[i])),
               class_names=tuple(sorted(class_names[name])),
               traffic=traffic[name])
        for i, name in enumerate(region_names))

    adjacency: Dict[str, Set[str]] = {name: set()
                                      for name in region_names}
    for u, v in topology.links:
        ru, rv = node_region.get(u), node_region.get(v)
        if ru is None or rv is None or ru == rv:
            continue
        adjacency[ru].add(rv)
        adjacency[rv].add(ru)

    return RegionPartition(
        regions=regions,
        node_region=node_region,
        class_region=class_region,
        adjacency={name: tuple(sorted(neighbors))
                   for name, neighbors in adjacency.items()},
        seed=seed)


__all__ = ["Region", "RegionPartition", "partition_topology"]
