"""The :class:`Topology` abstraction shared by every other subsystem.

A topology is an undirected PoP-level graph. Nodes are PoP names
(strings) carrying a *population* attribute used by the gravity traffic
model; links are undirected and canonically ordered. Off-path compute
clusters ("datacenters", Section 2.2 / Figure 3) are modeled as regular
nodes attached to an anchor PoP so replicated traffic has a concrete
routing path to traverse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

Link = Tuple[str, str]


def canonical_link(u: str, v: str) -> Link:
    """Order a link's endpoints canonically so ``(a,b) == (b,a)``."""
    return (u, v) if u <= v else (v, u)


class Topology:
    """An undirected PoP-level network graph.

    Args:
        name: human-readable identifier (e.g., ``"internet2"``).
        nodes: PoP names.
        links: iterable of node pairs (undirected, deduplicated).
        populations: optional map node -> population weight for the
            gravity model; defaults to 1.0 per node.

    The class wraps a :class:`networkx.Graph` but exposes a small,
    stable API so the rest of the library never touches networkx
    directly.
    """

    def __init__(self, name: str, nodes: Iterable[str],
                 links: Iterable[Link],
                 populations: Optional[Dict[str, float]] = None) -> None:
        self.name = name
        self._graph = nx.Graph()
        nodes = list(nodes)
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"topology {name!r} has duplicate nodes")
        self._graph.add_nodes_from(nodes)
        for u, v in links:
            if u == v:
                raise ValueError(f"self-loop on node {u!r}")
            if u not in self._graph or v not in self._graph:
                raise ValueError(f"link ({u!r}, {v!r}) references an "
                                 "unknown node")
            self._graph.add_edge(*canonical_link(u, v))
        self._populations = {
            node: float((populations or {}).get(node, 1.0))
            for node in nodes
        }
        self._spl_cache: Optional[Dict[str, Dict[str, int]]] = None

    # -- basic accessors -------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """PoP names in insertion order."""
        return list(self._graph.nodes)

    @property
    def links(self) -> List[Link]:
        """Canonically ordered undirected links."""
        return [canonical_link(u, v) for u, v in self._graph.edges]

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def population(self, node: str) -> float:
        """Gravity-model population weight of ``node``."""
        return self._populations[node]

    @property
    def populations(self) -> Dict[str, float]:
        return dict(self._populations)

    def has_link(self, u: str, v: str) -> bool:
        return self._graph.has_edge(u, v)

    def degree(self, node: str) -> int:
        return self._graph.degree[node]

    def neighbors(self, node: str) -> List[str]:
        return sorted(self._graph.neighbors(node))

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)

    # -- paths -----------------------------------------------------------

    def shortest_path(self, source: str, target: str) -> Tuple[str, ...]:
        """A deterministic hop-count shortest path from source to target.

        Ties are broken lexicographically by the node sequence so that
        repeated runs (and the forward/reverse directions) agree.
        """
        if source == target:
            return (source,)
        # networkx's single shortest path is deterministic for a fixed
        # adjacency order, but we make the tie-break explicit: among all
        # shortest paths choose the lexicographically smallest sequence.
        best: Optional[Tuple[str, ...]] = None
        for path in nx.all_shortest_paths(self._graph, source, target):
            tup = tuple(path)
            if best is None or tup < best:
                best = tup
        assert best is not None
        return best

    def all_shortest_paths(self, source: str,
                           target: str) -> List[Tuple[str, ...]]:
        """Every hop-count shortest path, sorted deterministically."""
        return sorted(tuple(p) for p in
                      nx.all_shortest_paths(self._graph, source, target))

    def hop_distance(self, source: str, target: str) -> int:
        """Hop count of the shortest path between two nodes."""
        if self._spl_cache is None:
            self._spl_cache = dict(nx.all_pairs_shortest_path_length(
                self._graph))
        return self._spl_cache[source][target]

    def nodes_within(self, node: str, hops: int) -> List[str]:
        """Nodes (excluding ``node``) within ``hops`` hops of ``node``."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        reached = nx.single_source_shortest_path_length(
            self._graph, node, cutoff=hops)
        return sorted(n for n in reached if n != node)

    @staticmethod
    def path_links(path: Sequence[str]) -> List[Link]:
        """Canonical links traversed by a node path."""
        return [canonical_link(path[i], path[i + 1])
                for i in range(len(path) - 1)]

    def diameter(self) -> int:
        """Longest shortest-path hop count in the topology."""
        return nx.diameter(self._graph)

    def mean_path_length(self) -> float:
        """Average shortest-path hop count over all node pairs."""
        return float(nx.average_shortest_path_length(self._graph))

    # -- derived topologies ------------------------------------------------

    def with_datacenter(self, anchor: str,
                        dc_name: str = "DC") -> "Topology":
        """Return a copy with a datacenter node attached at ``anchor``.

        The datacenter is an off-path node (it originates no traffic:
        population 0) connected to its anchor PoP by one link, matching
        the paper's single-cluster deployments (Figure 3).
        """
        if anchor not in self._graph:
            raise ValueError(f"anchor {anchor!r} not in topology")
        if dc_name in self._graph:
            raise ValueError(f"node {dc_name!r} already exists")
        populations = dict(self._populations)
        populations[dc_name] = 0.0
        return Topology(
            name=f"{self.name}+{dc_name}@{anchor}",
            nodes=self.nodes + [dc_name],
            links=self.links + [(anchor, dc_name)],
            populations=populations)

    def subgraph_without(self, node: str) -> "Topology":
        """Copy of this topology with ``node`` and its links removed."""
        if node not in self._graph:
            raise ValueError(f"node {node!r} not in topology")
        remaining = [n for n in self.nodes if n != node]
        links = [(u, v) for u, v in self.links if node not in (u, v)]
        pops = {n: p for n, p in self._populations.items() if n != node}
        return Topology(f"{self.name}-{node}", remaining, links, pops)

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, nodes={self.num_nodes}, "
                f"links={self.num_links})")
