"""PoP-level network topologies, routing, and routing-asymmetry tools.

The paper evaluates on eight topologies: Internet2/Abilene (11 PoPs),
Geant (22), a multi-site Enterprise (23), and five Rocketfuel-inferred
ISP backbones — TiNet/AS3257 (41), Telstra/AS1221 (44), Sprint/AS1239
(52), Level3/AS3356 (63) and NTT/AS2914 (70). Abilene is reproduced
exactly; the others are built by a deterministic synthetic generator
matching the published PoP counts (see DESIGN.md, substitutions).
"""

from repro.topology.topology import Link, Topology
from repro.topology.library import (
    PAPER_TOPOLOGIES,
    builtin_topology,
    builtin_topology_names,
)
from repro.topology.generators import (
    synthetic_enterprise_topology,
    synthetic_isp_topology,
)
from repro.topology.partition import (
    Region,
    RegionPartition,
    partition_topology,
)
from repro.topology.routing import RoutingTable, shortest_path_routing
from repro.topology.asymmetry import (
    AsymmetricRoute,
    AsymmetricRoutingModel,
    jaccard_overlap,
)

__all__ = [
    "AsymmetricRoute",
    "AsymmetricRoutingModel",
    "Link",
    "PAPER_TOPOLOGIES",
    "Region",
    "RegionPartition",
    "RoutingTable",
    "Topology",
    "builtin_topology",
    "builtin_topology_names",
    "jaccard_overlap",
    "partition_topology",
    "shortest_path_routing",
    "synthetic_enterprise_topology",
    "synthetic_isp_topology",
]
