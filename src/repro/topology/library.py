"""Built-in topologies used in the paper's evaluation (Table 1).

``internet2`` is the exact 11-PoP Abilene backbone (14 links).
``geant`` is a hand-built 22-PoP approximation of the 2004 European
research backbone. ``enterprise`` is a 23-PoP multi-site enterprise in
the spirit of the "middlebox manifesto" network [30]. The five
Rocketfuel ISPs are generated synthetically at the published PoP counts
(see :mod:`repro.topology.generators` and DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List

from repro.topology.generators import (
    synthetic_enterprise_topology,
    synthetic_isp_topology,
)
from repro.topology.topology import Topology

# Metro-area population weights (millions), used by the gravity model.
_ABILENE_POPULATIONS = {
    "ATLA": 5.5, "CHIN": 9.5, "DNVR": 2.9, "HSTN": 6.3, "IPLS": 2.0,
    "KSCY": 2.1, "LOSA": 13.1, "NYCM": 19.8, "SNVA": 7.1, "STTL": 3.6,
    "WASH": 6.1,
}

# The real Abilene/Internet2 PoP-level adjacency.
_ABILENE_LINKS = [
    ("ATLA", "HSTN"), ("ATLA", "IPLS"), ("ATLA", "WASH"),
    ("CHIN", "IPLS"), ("CHIN", "NYCM"), ("DNVR", "KSCY"),
    ("DNVR", "SNVA"), ("DNVR", "STTL"), ("HSTN", "KSCY"),
    ("HSTN", "LOSA"), ("IPLS", "KSCY"), ("LOSA", "SNVA"),
    ("NYCM", "WASH"), ("SNVA", "STTL"),
]

# 22-PoP approximation of the GEANT European backbone (country codes),
# with a meshier core (DE/FR/UK/NL/IT) and stub national networks.
_GEANT_POPULATIONS = {
    "AT": 8.8, "BE": 11.5, "CH": 8.6, "CZ": 10.7, "DE": 83.2,
    "DK": 5.8, "ES": 47.4, "FR": 67.4, "GR": 10.7, "HR": 4.0,
    "HU": 9.7, "IE": 5.0, "IL": 9.2, "IT": 59.0, "LU": 0.6,
    "NL": 17.5, "PL": 38.0, "PT": 10.3, "SE": 10.4, "SI": 2.1,
    "SK": 5.5, "UK": 67.2,
}

_GEANT_LINKS = [
    ("UK", "FR"), ("UK", "NL"), ("UK", "IE"), ("UK", "SE"),
    ("FR", "DE"), ("FR", "ES"), ("FR", "CH"), ("FR", "LU"),
    ("DE", "NL"), ("DE", "AT"), ("DE", "CZ"), ("DE", "DK"),
    ("DE", "CH"), ("NL", "BE"), ("BE", "LU"), ("ES", "PT"),
    ("PT", "UK"), ("IT", "CH"), ("IT", "AT"), ("IT", "GR"),
    ("AT", "HU"), ("AT", "SI"), ("CZ", "SK"), ("CZ", "PL"),
    ("PL", "DE"), ("SE", "DK"), ("HU", "SK"), ("HU", "HR"),
    ("SI", "HR"), ("GR", "IL"), ("IL", "IT"),
]

# PoP counts as reported in Table 1 of the paper.
PAPER_TOPOLOGIES: Dict[str, int] = {
    "internet2": 11,
    "geant": 22,
    "enterprise": 23,
    "tinet": 41,
    "telstra": 44,
    "sprint": 52,
    "level3": 63,
    "ntt": 70,
}

# Seeds keep the synthetic ISPs stable across runs and versions.
_ISP_SEEDS = {"tinet": 3257, "telstra": 1221, "sprint": 1239,
              "level3": 3356, "ntt": 2914}

# Rocketfuel backbones differ in meshiness; Level3 famously dense.
_ISP_MEAN_DEGREE = {"tinet": 3.2, "telstra": 2.6, "sprint": 3.4,
                    "level3": 4.4, "ntt": 3.0}


def builtin_topology_names() -> List[str]:
    """Names accepted by :func:`builtin_topology`, in paper order."""
    return list(PAPER_TOPOLOGIES)


def builtin_topology(name: str) -> Topology:
    """Construct one of the paper's eight evaluation topologies.

    Args:
        name: one of :func:`builtin_topology_names` (case-insensitive).

    Raises:
        KeyError: for an unknown topology name.
    """
    key = name.lower()
    if key == "internet2":
        return Topology("internet2", sorted(_ABILENE_POPULATIONS),
                        _ABILENE_LINKS, _ABILENE_POPULATIONS)
    if key == "geant":
        return Topology("geant", sorted(_GEANT_POPULATIONS),
                        _GEANT_LINKS, _GEANT_POPULATIONS)
    if key == "enterprise":
        return synthetic_enterprise_topology(
            num_pops=PAPER_TOPOLOGIES["enterprise"], seed=23)
    if key in _ISP_SEEDS:
        return synthetic_isp_topology(
            name=key, num_pops=PAPER_TOPOLOGIES[key],
            seed=_ISP_SEEDS[key], mean_degree=_ISP_MEAN_DEGREE[key])
    raise KeyError(
        f"unknown topology {name!r}; expected one of "
        f"{builtin_topology_names()}")
