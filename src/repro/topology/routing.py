"""Shortest-path routing tables.

The paper assumes hop-count shortest-path routing with, by default, a
unique *symmetric* path per ingress-egress pair (Section 3, input 1).
Symmetry is guaranteed by computing each unordered pair once (in
canonical order) and reversing, so forward and reverse traffic traverse
identical node sequences; asymmetric scenarios are produced separately
by :mod:`repro.topology.asymmetry`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.topology.topology import Link, Topology


class RoutingTable:
    """Symmetric shortest-path routes for all node pairs of a topology.

    Also provides the inter-NIDS paths ``P_{j,j'}`` used to account for
    replication traffic on links (Eq (4) of the paper).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._paths: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        nodes = topology.nodes
        for i, source in enumerate(nodes):
            for target in nodes[i + 1:]:
                try:
                    path = topology.shortest_path(source, target)
                except nx.NetworkXNoPath:
                    continue  # disconnected pair (e.g., after failure)
                self._paths[(source, target)] = path
                self._paths[(target, source)] = tuple(reversed(path))

    def path(self, source: str, target: str) -> Tuple[str, ...]:
        """The route from source to target (``(source,)`` if equal).

        Raises ``KeyError`` for pairs with no route (disconnected
        topologies, e.g., after a node failure).
        """
        if source == target:
            return (source,)
        return self._paths[(source, target)]

    def path_links(self, source: str, target: str) -> List[Link]:
        """Canonical links on the route between two nodes."""
        return Topology.path_links(self.path(source, target))

    def hop_count(self, source: str, target: str) -> int:
        """Number of links on the route between two nodes."""
        return len(self.path(source, target)) - 1

    def is_on_path(self, node: str, source: str, target: str) -> bool:
        """True when ``node`` lies on the route source -> target."""
        return node in self.path(source, target)

    def all_pairs(self) -> List[Tuple[str, str]]:
        """All ordered (source, target) pairs with source != target."""
        return sorted(self._paths)


def shortest_path_routing(topology: Topology) -> RoutingTable:
    """Convenience constructor mirroring the paper's default routing."""
    return RoutingTable(topology)
