"""Routing-asymmetry synthesis (Section 8.3 of the paper).

The paper emulates asymmetric ("hot-potato") routing as follows: the
forward direction of each ingress-egress pair takes its shortest path;
the reverse direction takes a path chosen from the set of all end-to-end
shortest paths so that the expected Jaccard overlap between forward and
reverse node sets hits a target ratio theta. Per-pair targets theta' are
drawn from a Gaussian with mean theta and standard deviation theta/5
(footnote 8 notes the exact mechanism is not critical — only that paths
with a target overlap are produced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.routing import RoutingTable
from repro.topology.topology import Topology


def jaccard_overlap(path_a: Sequence[str], path_b: Sequence[str]) -> float:
    """Jaccard similarity of two paths' node sets.

    Returns 1.0 for identical node sets and 0.0 for disjoint ones,
    matching the paper's overlap metric.
    """
    set_a, set_b = set(path_a), set(path_b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


@dataclass(frozen=True)
class AsymmetricRoute:
    """Forward/reverse routes for one traffic class under asymmetry.

    Attributes:
        source: ingress PoP of the forward direction.
        target: egress PoP of the forward direction.
        fwd_path: nodes observing the forward flow (``P_c^fwd``).
        rev_path: nodes observing the reverse flow (``P_c^rev``).
        overlap: realized Jaccard overlap between the two node sets.
    """

    source: str
    target: str
    fwd_path: Tuple[str, ...]
    rev_path: Tuple[str, ...]
    overlap: float

    @property
    def common_nodes(self) -> Tuple[str, ...]:
        """``P_c^common`` — nodes seeing both directions, in forward
        path order (may be empty)."""
        rev = set(self.rev_path)
        return tuple(n for n in self.fwd_path if n in rev)


class AsymmetricRoutingModel:
    """Samples asymmetric forward/reverse route configurations.

    Args:
        topology: the network.
        routing: symmetric shortest-path table providing both the
            forward paths and the candidate pool for reverse paths.
        max_candidates: optionally subsample the candidate pool (for
            very large topologies); ``None`` uses every end-to-end path.
        seed: seed for the candidate subsample only; per-configuration
            randomness comes from the generator passed to
            :meth:`generate`.
    """

    def __init__(self, topology: Topology, routing: RoutingTable,
                 max_candidates: Optional[int] = None, seed: int = 0) -> None:
        self.topology = topology
        self.routing = routing
        candidates: Dict[Tuple[str, ...], None] = {}
        for source, target in routing.all_pairs():
            if source < target:
                candidates.setdefault(routing.path(source, target))
        pool = list(candidates)
        if max_candidates is not None and len(pool) > max_candidates:
            rng = np.random.default_rng(seed)
            keep = rng.choice(len(pool), size=max_candidates,
                              replace=False)
            pool = [pool[i] for i in sorted(keep)]
        self._candidates: List[Tuple[str, ...]] = pool
        self._overlap_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    @property
    def num_candidates(self) -> int:
        return len(self._candidates)

    def _overlaps_for(self, fwd_path: Tuple[str, ...]) -> np.ndarray:
        """Jaccard overlap of ``fwd_path`` against every candidate."""
        cached = self._overlap_cache.get(fwd_path)
        if cached is None:
            cached = np.array([jaccard_overlap(fwd_path, cand)
                               for cand in self._candidates])
            self._overlap_cache[fwd_path] = cached
        return cached

    def reverse_path_for(self, fwd_path: Tuple[str, ...],
                         target_overlap: float,
                         exclude_identical: bool = False
                         ) -> Tuple[str, ...]:
        """The candidate path whose overlap is closest to the target.

        Ties are broken toward the earliest candidate, which is
        deterministic because the candidate pool order is fixed.

        Args:
            exclude_identical: skip candidates whose node set equals
                the forward path's (guarantees genuinely asymmetric
                reverse routes even at high target overlap).
        """
        overlaps = self._overlaps_for(fwd_path)
        distances = np.abs(overlaps - target_overlap)
        if exclude_identical:
            distances = np.where(overlaps >= 1.0, np.inf, distances)
            if not np.isfinite(distances).any():
                raise ValueError("no non-identical candidate paths")
        index = int(np.argmin(distances))
        return self._candidates[index]

    def generate(self, theta: float, rng: np.random.Generator,
                 exclude_identical: bool = False
                 ) -> List[AsymmetricRoute]:
        """Sample one asymmetric routing configuration.

        Args:
            theta: target expected overlap in [0, 1].
            rng: random generator controlling the per-pair Gaussian
                draws (mean ``theta``, std ``theta / 5``).
            exclude_identical: forbid reverse paths with the same node
                set as the forward path.

        Returns:
            One :class:`AsymmetricRoute` per unordered ingress-egress
            pair (forward direction from the lexicographically smaller
            node).
        """
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be within [0, 1]")
        routes = []
        for source, target in self.routing.all_pairs():
            if source >= target:
                continue
            fwd = self.routing.path(source, target)
            theta_prime = float(np.clip(
                rng.normal(theta, theta / 5.0 if theta > 0 else 0.0),
                0.0, 1.0))
            rev = self.reverse_path_for(fwd, theta_prime,
                                        exclude_identical)
            routes.append(AsymmetricRoute(
                source=source, target=target, fwd_path=fwd,
                rev_path=rev, overlap=jaccard_overlap(fwd, rev)))
        return routes

    def mean_overlap(self, routes: Sequence[AsymmetricRoute]) -> float:
        """Average realized overlap of a configuration."""
        if not routes:
            return 0.0
        return float(np.mean([r.overlap for r in routes]))
