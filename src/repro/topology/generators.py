"""Deterministic synthetic topology generators.

The Rocketfuel PoP-level maps used in the paper are not redistributable,
so the five commercial ISPs are synthesized at the published PoP counts
with ISP-like structure: preferential attachment yields the heavy-tailed
degree distributions observed in Rocketfuel backbones, and redundancy
links remove trivial single points of failure. Generation is fully
deterministic given the seed.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topology.topology import Topology


def _zipf_populations(nodes, rng: np.random.Generator,
                      exponent: float = 0.9):
    """Heavy-tailed city populations (millions), shuffled over nodes."""
    ranks = np.arange(1, len(nodes) + 1, dtype=float)
    weights = 20.0 / ranks ** exponent
    rng.shuffle(weights)
    return {node: float(w) for node, w in zip(nodes, weights)}


def synthetic_isp_topology(name: str, num_pops: int, seed: int,
                           mean_degree: float = 3.0) -> Topology:
    """Generate an ISP-like PoP-level backbone.

    Args:
        name: topology name (e.g., ``"sprint"``).
        num_pops: number of PoPs (matches Table 1 of the paper).
        seed: deterministic RNG seed.
        mean_degree: target average node degree; Rocketfuel backbones
            range from ~2.5 (hub-and-spoke Telstra) to ~4.5 (dense
            Level3).

    Returns:
        A connected :class:`Topology` with heavy-tailed degrees.
    """
    if num_pops < 3:
        raise ValueError("an ISP backbone needs at least 3 PoPs")
    if mean_degree < 2.0:
        raise ValueError("mean_degree below 2 cannot stay connected "
                         "with redundancy")
    rng = np.random.default_rng(seed)
    attach = max(1, int(round(mean_degree / 2.0)))
    graph = nx.barabasi_albert_graph(num_pops, attach,
                                     seed=int(rng.integers(2**31)))

    # Top up toward the target mean degree with preferential extras.
    target_edges = int(round(mean_degree * num_pops / 2.0))
    degrees = dict(graph.degree)
    node_ids = list(graph.nodes)
    attempts = 0
    while graph.number_of_edges() < target_edges and attempts < 50 * num_pops:
        attempts += 1
        weights = np.array([degrees[n] + 1.0 for n in node_ids])
        weights /= weights.sum()
        u, v = rng.choice(node_ids, size=2, replace=False, p=weights)
        if not graph.has_edge(u, v):
            graph.add_edge(int(u), int(v))
            degrees[int(u)] += 1
            degrees[int(v)] += 1

    # Remove degree-1 stubs' fragility: give each leaf a second link to
    # a nearby PoP, mimicking the access redundancy real backbones have.
    for node in list(graph.nodes):
        if graph.degree[node] == 1:
            candidates = [n for n in graph.nodes
                          if n != node and not graph.has_edge(node, n)]
            weights = np.array(
                [graph.degree[n] + 1.0 for n in candidates])
            weights /= weights.sum()
            other = int(rng.choice(candidates, p=weights))
            graph.add_edge(node, other)

    width = len(str(num_pops - 1))
    labels = {i: f"{name}-{i:0{width}d}" for i in graph.nodes}
    graph = nx.relabel_nodes(graph, labels)
    nodes = sorted(graph.nodes)
    populations = _zipf_populations(nodes, rng)
    return Topology(name, nodes, list(graph.edges), populations)


def synthetic_enterprise_topology(num_pops: int = 23,
                                  seed: int = 23,
                                  num_sites: int = 4) -> Topology:
    """Generate a multi-site enterprise network.

    The layout follows the multi-site enterprise of [30]: a small core
    ring of site gateways, with each site fanning out access PoPs from
    its gateway, plus one cross-site redundancy link per site.
    """
    if num_pops < num_sites * 2:
        raise ValueError("too few PoPs for the requested site count")
    rng = np.random.default_rng(seed)

    gateways = [f"gw{i}" for i in range(num_sites)]
    links = [(gateways[i], gateways[(i + 1) % num_sites])
             for i in range(num_sites)]

    access = [f"acc{i:02d}" for i in range(num_pops - num_sites)]
    nodes = gateways + access
    for i, node in enumerate(access):
        gateway = gateways[i % num_sites]
        links.append((gateway, node))
        # Occasional intra-site lateral link for redundancy.
        if i >= num_sites and rng.random() < 0.3:
            peer = access[i - num_sites]
            if peer != node:
                links.append((peer, node))

    populations = _zipf_populations(nodes, rng, exponent=0.6)
    # Gateways aggregate site traffic; weight them a bit higher.
    for gateway in gateways:
        populations[gateway] *= 2.0
    return Topology("enterprise", nodes, links, populations)
