"""Zero-copy on-disk trace storage and bounded-memory replay.

A :class:`TraceStore` persists every column of a
:class:`~repro.simulation.batch.PacketBatch` to a directory — one
``.npy`` file per numeric column, payload bytes as a raw
``payload.bin``, and a JSON manifest recording the format version,
per-column dtype/shape, class/node universes, path tables, and a
sha256 content fingerprint. Reopening maps each column back as a
read-only view (``np.load(..., mmap_mode="r")`` / a uint8
``np.memmap``), so a 10^8-packet trace costs O(1) memory to open and
pages in only what a replay touches. Worker processes opening the same
store share the page cache — the slab channel
:class:`~repro.experiments.parallel.ParallelSweepRunner` uses instead
of pickling traces across the fork boundary.

:class:`ChunkedReplay` streams a batch (memmapped or in-memory) as
session-aligned sub-batches of bounded packet count. Sub-batches carry
the *global* ``session_key`` universe, so
``Emulation.run_signature_chunked`` can merge per-chunk distinct
(node, five-tuple) sets exactly — the chunked report is bit-identical
to the whole-batch fast path, at O(chunk) instead of O(trace) memory.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.obs import get_registry
from repro.simulation.batch import PacketBatch, SessionBatch

FORMAT_NAME = "repro-trace-store"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.bin"

#: session-level columns, persisted in this order (fingerprint order)
_SESSION_COLUMNS = ("proto", "src_ip", "src_port", "dst_ip",
                    "dst_port", "class_id", "trace_class_id",
                    "fwd_path_id", "rev_path_id", "session_key")
#: packet-level columns
_PACKET_COLUMNS = ("session_of_packet", "direction", "size_bytes",
                   "payload_offsets")


class TraceStoreError(ValueError):
    """Raised for missing, corrupt, or version-mismatched stores."""


def _column_arrays(batch: PacketBatch) -> Dict[str, np.ndarray]:
    sess = batch.sessions
    columns = {name: getattr(sess, name) for name in _SESSION_COLUMNS}
    columns.update({name: getattr(batch, name)
                    for name in _PACKET_COLUMNS})
    return columns


def _payload_bytes(batch: PacketBatch) -> bytes:
    buffer = batch.payload_buffer
    if isinstance(buffer, bytes):
        return buffer
    return buffer.tobytes()


def trace_fingerprint(batch: PacketBatch) -> str:
    """sha256 over the batch's metadata and every column's raw bytes,
    in a fixed order — the store's integrity/equality witness."""
    sess = batch.sessions
    digest = hashlib.sha256()
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "hash_seed": sess.hash_seed,
        "num_keys": sess.num_keys,
        "class_names": list(sess.class_names),
        "node_order": list(sess.node_order),
        "paths": [[int(n) for n in path] for path in sess.paths],
    }
    digest.update(json.dumps(header, sort_keys=True).encode("ascii"))
    for name, array in _column_arrays(batch).items():
        digest.update(name.encode("ascii"))
        digest.update(np.ascontiguousarray(array).tobytes())
    digest.update(_payload_bytes(batch))
    return digest.hexdigest()


class TraceStore:
    """One packed trace on disk; see the module docstring.

    Construct via :meth:`pack` (write) or :meth:`open` (reopen);
    :meth:`batch` returns the memmap-backed ``PacketBatch`` view.
    """

    def __init__(self, path: Path, manifest: Dict[str, object],
                 batch: PacketBatch) -> None:
        self.path = path
        self.manifest = manifest
        self._batch = batch

    # -- write side ------------------------------------------------------

    @classmethod
    def pack(cls, batch: PacketBatch, path: Union[str, Path],
             meta: Optional[Dict[str, str]] = None) -> "TraceStore":
        """Persist ``batch`` under directory ``path`` and reopen it.

        ``meta`` is free-form caller context (topology name, seed, …)
        recorded in the manifest but excluded from the fingerprint.
        """
        root = Path(path)
        with get_registry().span("tracestore.write"):
            root.mkdir(parents=True, exist_ok=True)
            sess = batch.sessions
            columns_meta: Dict[str, Dict[str, object]] = {}
            for name, array in _column_arrays(batch).items():
                filename = f"{name}.npy"
                np.save(root / filename,
                        np.ascontiguousarray(array))
                columns_meta[name] = {
                    "file": filename,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
            payload = _payload_bytes(batch)
            if payload:
                (root / PAYLOAD_NAME).write_bytes(payload)
            manifest: Dict[str, object] = {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "fingerprint": trace_fingerprint(batch),
                "hash_seed": sess.hash_seed,
                "num_sessions": sess.num_sessions,
                "num_keys": sess.num_keys,
                "num_packets": batch.num_packets,
                "class_names": list(sess.class_names),
                "node_order": list(sess.node_order),
                "paths": [[int(n) for n in p] for p in sess.paths],
                "payload": {"file": PAYLOAD_NAME,
                            "bytes": len(payload)},
                "columns": columns_meta,
                "meta": dict(meta or {}),
            }
            (root / MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return cls.open(root)

    # -- read side -------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path]) -> "TraceStore":
        """Reopen a packed trace as read-only memmap views."""
        root = Path(path)
        with get_registry().span("tracestore.open"):
            manifest_path = root / MANIFEST_NAME
            if not manifest_path.is_file():
                raise TraceStoreError(
                    f"no trace store at {root} (missing "
                    f"{MANIFEST_NAME})")
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("format") != FORMAT_NAME:
                raise TraceStoreError(
                    f"{root}: not a {FORMAT_NAME} manifest")
            if manifest.get("version") != FORMAT_VERSION:
                raise TraceStoreError(
                    f"{root}: unsupported store version "
                    f"{manifest.get('version')!r} (expected "
                    f"{FORMAT_VERSION})")
            columns = cls._open_columns(root, manifest)
            payload_meta = manifest["payload"]
            payload_len = int(payload_meta["bytes"])
            if payload_len:
                payload: Union[bytes, np.ndarray] = np.memmap(
                    root / str(payload_meta["file"]), dtype=np.uint8,
                    mode="r", shape=(payload_len,))
            else:
                payload = b""
            sessions = SessionBatch(
                columns["proto"], columns["src_ip"],
                columns["src_port"], columns["dst_ip"],
                columns["dst_port"], columns["class_id"],
                columns["trace_class_id"],
                tuple(manifest["class_names"]),
                columns["fwd_path_id"], columns["rev_path_id"],
                [np.array(p, dtype=np.int64)
                 for p in manifest["paths"]],
                tuple(manifest["node_order"]),
                hash_seed=int(manifest["hash_seed"]),
                session_key=columns["session_key"],
                num_keys=int(manifest["num_keys"]))
            batch = PacketBatch(
                sessions, columns["session_of_packet"],
                columns["direction"], columns["size_bytes"],
                payload, columns["payload_offsets"])
        return cls(root, manifest, batch)

    @staticmethod
    def _open_columns(root: Path, manifest: Dict[str, object]
                      ) -> Dict[str, np.ndarray]:
        columns_meta = manifest["columns"]
        assert isinstance(columns_meta, dict)
        columns: Dict[str, np.ndarray] = {}
        for name in _SESSION_COLUMNS + _PACKET_COLUMNS:
            spec = columns_meta.get(name)
            if spec is None:
                raise TraceStoreError(
                    f"{root}: manifest is missing column {name!r}")
            array = np.load(root / str(spec["file"]), mmap_mode="r")
            if str(array.dtype) != spec["dtype"] or \
                    list(array.shape) != list(spec["shape"]):
                raise TraceStoreError(
                    f"{root}: column {name!r} is "
                    f"{array.dtype}{array.shape}, manifest says "
                    f"{spec['dtype']}{tuple(spec['shape'])}")
            columns[name] = array
        return columns

    # -- accessors -------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        return str(self.manifest["fingerprint"])

    @property
    def num_sessions(self) -> int:
        return int(self.manifest["num_sessions"])

    @property
    def num_packets(self) -> int:
        return int(self.manifest["num_packets"])

    @property
    def payload_bytes(self) -> int:
        payload = self.manifest["payload"]
        assert isinstance(payload, dict)
        return int(payload["bytes"])

    def batch(self) -> PacketBatch:
        """The memmap-backed columnar view (read-only)."""
        return self._batch

    def verify(self) -> bool:
        """Recompute the content fingerprint (reads every column)."""
        return trace_fingerprint(self._batch) == self.fingerprint


class ChunkedReplay:
    """Streams a ``PacketBatch`` as session-aligned bounded slabs.

    Chunk boundaries never split a session's packets (packets are
    session-contiguous in generated traces; enforced here), and every
    sub-batch carries the global ``session_key`` space, which is what
    makes chunked distinct-session accounting exact.

    Args:
        batch: the source batch (in-memory or trace-store memmap).
        chunk_packets: target packets per chunk; a chunk may exceed it
            to reach the owning session's last packet.
    """

    def __init__(self, batch: PacketBatch, chunk_packets: int) -> None:
        if chunk_packets <= 0:
            raise ValueError("chunk_packets must be positive")
        sop = batch.session_of_packet
        if len(sop) and np.any(np.diff(sop) < 0):
            raise ValueError(
                "packets are not grouped by session; chunked replay "
                "requires a session-contiguous batch")
        self.batch = batch
        self.chunk_packets = chunk_packets
        self.bounds = self._chunk_bounds()

    def _chunk_bounds(self) -> List[Tuple[int, int]]:
        sop = self.batch.session_of_packet
        total = len(sop)
        bounds: List[Tuple[int, int]] = []
        cursor = 0
        while cursor < total:
            end = min(cursor + self.chunk_packets, total)
            # Extend to the last packet of the session owning end-1.
            end = int(np.searchsorted(sop, sop[end - 1],
                                      side="right"))
            bounds.append((cursor, end))
            cursor = end
        return bounds

    @property
    def num_chunks(self) -> int:
        return len(self.bounds)

    @property
    def class_names(self) -> Tuple[str, ...]:
        return self.batch.sessions.class_names

    @property
    def node_order(self) -> Tuple[str, ...]:
        return self.batch.sessions.node_order

    @property
    def num_keys(self) -> int:
        return self.batch.sessions.num_keys

    @property
    def num_packets(self) -> int:
        return self.batch.num_packets

    def _sub_batch(self, start: int, end: int) -> PacketBatch:
        batch = self.batch
        sess = batch.sessions
        sop = batch.session_of_packet
        lo = int(sop[start])
        hi = int(sop[end - 1]) + 1
        sub_sessions = SessionBatch(
            np.asarray(sess.proto[lo:hi]),
            np.asarray(sess.src_ip[lo:hi]),
            np.asarray(sess.src_port[lo:hi]),
            np.asarray(sess.dst_ip[lo:hi]),
            np.asarray(sess.dst_port[lo:hi]),
            np.asarray(sess.class_id[lo:hi]),
            np.asarray(sess.trace_class_id[lo:hi]),
            sess.class_names,
            np.asarray(sess.fwd_path_id[lo:hi]),
            np.asarray(sess.rev_path_id[lo:hi]),
            sess.paths, sess.node_order, sess.hash_seed,
            session_key=np.asarray(sess.session_key[lo:hi]),
            num_keys=sess.num_keys)
        offsets = batch.payload_offsets
        byte_lo = int(offsets[start])
        byte_hi = int(offsets[end])
        buffer = batch.payload_buffer[byte_lo:byte_hi]
        if not isinstance(buffer, bytes):
            buffer = buffer.tobytes()
        return PacketBatch(
            sub_sessions,
            np.asarray(sop[start:end]) - lo,
            np.asarray(batch.direction[start:end]),
            np.asarray(batch.size_bytes[start:end]),
            buffer,
            np.asarray(offsets[start:end + 1]) - byte_lo)

    def __iter__(self) -> Iterator[PacketBatch]:
        for start, end in self.bounds:
            yield self._sub_batch(start, end)
