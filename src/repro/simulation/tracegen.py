"""Synthetic trace generation (the reproduction's Scapy+seed-traces).

Given a set of traffic classes, the generator emits sessions whose
volumes are proportional to the classes' ``|T_c|`` (downsampled to a
tractable session budget), with synthetic per-PoP addressing, a small
number of packets per session, optional payloads seeded with signature
strings (so the Signature engine has something to find), and optional
injected scanners (sources contacting many distinct destinations across
paths, for the Scan/aggregation experiments).

All randomness is drawn up front into a :class:`_TracePlan` — a set of
phase-ordered, whole-array numpy draws (host pairs, ports, payload
sizes, one concatenated payload byte buffer). Both synthesis paths
consume the identical plan: :meth:`TraceGenerator.generate`
materializes Python ``Session`` objects from it (the scalar oracle),
while :meth:`TraceGenerator.generate_batch` with ``direct=True``
assembles the columnar :class:`~repro.simulation.batch.PacketBatch`
straight from the plan's arrays — bit-identical columns, no per-packet
Python objects, no per-session RNG calls. The parity suite
(`tests/test_tracestore.py`) pins the two paths column-for-column,
the same pattern as fast-vs-scalar replay parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.nids.signature import DEFAULT_SIGNATURES
from repro.obs import get_registry
from repro.shim.hashing import FiveTuple
from repro.simulation.packets import (
    _BASE_IP,
    Session,
    pop_index_of_ip,
    pop_prefix_ip,
)
from repro.traffic.classes import TrafficClass

if TYPE_CHECKING:
    from repro.simulation.batch import PacketBatch

#: destination ports drawn for classes without a declared port
_DEFAULT_DST_PORTS = (80, 443, 22, 25, 6667)


class PrefixClassifier:
    """Maps a 5-tuple to its traffic class via PoP /16 prefixes and,
    when several classes share a prefix pair (per-application classes,
    Section 3 footnote 1), the destination port.

    The emulation always presents the forward-oriented tuple (the real
    shim resolves direction from connection state), so no
    canonicalization is needed here.

    Args:
        pop_order: PoP names; their indices define the /16 prefixes.
        classes: traffic classes to register.
        class_ports: class name -> destination port, required for
            (and only consulted on) prefix pairs shared by multiple
            classes.
    """

    def __init__(self, pop_order: Sequence[str],
                 classes: Sequence[TrafficClass],
                 class_ports: Optional[Dict[str, int]] = None) -> None:
        self._pop_of_index = {i: pop for i, pop in enumerate(pop_order)}
        self._index_of_pop = {pop: i for i, pop in enumerate(pop_order)}
        self._class_of_pair: Dict[Tuple[str, str], str] = {}
        self._class_of_port: Dict[Tuple[str, str, int], str] = {}
        class_ports = class_ports or {}
        for cls in classes:
            key = (cls.source, cls.target)
            if key not in self._class_of_pair:
                self._class_of_pair[key] = cls.name
                continue
            # Shared pair: both the incumbent and newcomer must be
            # distinguishable by port.
            incumbent = self._class_of_pair[key]
            for name in (incumbent, cls.name):
                if name not in class_ports:
                    raise ValueError(
                        f"two classes share the prefix pair {key}; "
                        f"provide class_ports for {name!r}")
            self._class_of_port[key + (class_ports[incumbent],)] = \
                incumbent
            port_key = key + (class_ports[cls.name],)
            if port_key in self._class_of_port and \
                    self._class_of_port[port_key] != cls.name:
                raise ValueError(
                    f"classes {self._class_of_port[port_key]!r} and "
                    f"{cls.name!r} collide on {port_key}")
            self._class_of_port[port_key] = cls.name

    def pop_index(self, pop: str) -> int:
        return self._index_of_pop[pop]

    def __call__(self, tup: FiveTuple) -> Optional[str]:
        src_pop = self._pop_of_index.get(pop_index_of_ip(tup.src_ip))
        dst_pop = self._pop_of_index.get(pop_index_of_ip(tup.dst_ip))
        if src_pop is None or dst_pop is None:
            return None
        by_port = self._class_of_port.get(
            (src_pop, dst_pop, tup.dst_port))
        if by_port is not None:
            return by_port
        return self._class_of_pair.get((src_pop, dst_pop))


@dataclass
class TraceSpec:
    """Knobs for trace generation.

    ``payload_sigma`` > 0 draws each session's payload size from a
    lognormal around ``payload_bytes`` (heavy-tailed, like real flow
    size distributions) instead of a fixed size.
    """

    total_sessions: int = 5_000
    packets_per_session: Tuple[int, int] = (2, 2)  # (fwd, rev)
    payload_bytes: int = 120
    payload_sigma: float = 0.0
    signature_session_fraction: float = 0.02
    scanner_count: int = 0
    scanner_fanout: int = 40

    def __post_init__(self) -> None:
        if self.total_sessions < 0:
            raise ValueError("total_sessions must be non-negative")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.payload_sigma < 0:
            raise ValueError("payload_sigma must be non-negative")


@dataclass
class _TracePlan:
    """All randomness of one trace, drawn up front as whole arrays.

    One row per session, in generation order (normal sessions grouped
    by class, then scanner sessions). ``payload`` packs every packet's
    body contiguously (session-major, forward packets first) with
    signatures already pasted in; ``payload_offsets`` has one entry per
    packet plus a terminator, all-zero when payloads are disabled.
    """

    class_idx: np.ndarray  # int64[n] -> index into generator.classes
    src_ip: np.ndarray  # int64[n]
    dst_ip: np.ndarray  # int64[n]
    src_port: np.ndarray  # int64[n]
    dst_port: np.ndarray  # int64[n]
    malicious: np.ndarray  # bool[n]
    payload_size: np.ndarray  # int64[n] per-packet body bytes
    payload: np.ndarray  # uint8[total_bytes]
    payload_offsets: np.ndarray  # int64[num_packets + 1]

    @property
    def num_sessions(self) -> int:
        return len(self.class_idx)


class TraceGenerator:
    """Generates synthetic session traces over a topology's classes.

    Args:
        pop_order: all PoP names in a fixed order — their indices
            define the /16 prefixes (must match across generator,
            classifier, and emulation).
        classes: traffic classes (paths resolved); per-class session
            counts are ``|T_c|`` downsampled to ``spec.total_sessions``.
        spec: generation knobs.
        seed: RNG seed; generation is deterministic.
    """

    def __init__(self, pop_order: Sequence[str],
                 classes: Sequence[TrafficClass],
                 spec: Optional[TraceSpec] = None, seed: int = 7,
                 class_ports: Optional[Dict[str, int]] = None) -> None:
        self.pop_order = list(pop_order)
        self.classes = list(classes)
        self.spec = spec or TraceSpec()
        self.seed = seed
        self.class_ports = dict(class_ports or {})
        self.classifier = PrefixClassifier(self.pop_order, self.classes,
                                           self.class_ports)

    def _session_quota(self) -> Dict[str, int]:
        """Downsample class volumes to the session budget.

        Largest-remainder apportionment keeps the realized mix close to
        the target proportions even for small budgets.
        """
        total_volume = sum(cls.num_sessions for cls in self.classes)
        if total_volume <= 0:
            return {cls.name: 0 for cls in self.classes}
        raw = {cls.name: self.spec.total_sessions * cls.num_sessions /
               total_volume for cls in self.classes}
        quotas = {name: int(value) for name, value in raw.items()}
        shortfall = self.spec.total_sessions - sum(quotas.values())
        remainders = sorted(raw, key=lambda n: raw[n] - quotas[n],
                            reverse=True)
        for name in remainders[:shortfall]:
            quotas[name] += 1
        return quotas

    def _packets_per_session(self) -> int:
        fwd_count, rev_count = self.spec.packets_per_session
        return fwd_count + rev_count

    def _class_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-session class index plus host columns, in generation
        order: normal sessions grouped by class, then scanners.

        Normal hosts are placeholders (-1) to be drawn; scanner hosts
        are deterministic (source ``2**15 + id``, distinct victims
        ``2**14 + i``), outside the normal host range.
        """
        quotas = self._session_quota()
        idx_parts: List[np.ndarray] = []
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        counts = np.array([quotas.get(cls.name, 0)
                           for cls in self.classes], dtype=np.int64)
        n_normal = int(counts.sum())
        if n_normal:
            idx_parts.append(np.repeat(
                np.arange(len(self.classes), dtype=np.int64), counts))
            src_parts.append(np.full(n_normal, -1, dtype=np.int64))
            dst_parts.append(np.full(n_normal, -1, dtype=np.int64))
        if self.spec.scanner_count > 0:
            by_source: Dict[str, List[int]] = {}
            for ci, cls in enumerate(self.classes):
                by_source.setdefault(cls.source, []).append(ci)
            source_pops = sorted(by_source)
            fanout = self.spec.scanner_fanout
            lanes = np.arange(fanout, dtype=np.int64)
            for scanner_id in range(self.spec.scanner_count):
                pop = source_pops[scanner_id % len(source_pops)]
                targets = np.array(by_source[pop], dtype=np.int64)
                idx_parts.append(targets[lanes % len(targets)])
                src_parts.append(np.full(
                    fanout, 2 ** 15 + scanner_id, dtype=np.int64))
                dst_parts.append(2 ** 14 + lanes)
        if not idx_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (np.concatenate(idx_parts), np.concatenate(src_parts),
                np.concatenate(dst_parts))

    def _draw_plan(self, with_payloads: bool) -> _TracePlan:
        """Draw every random quantity of the trace, phase-ordered:
        hosts, destination ports, source ports, payload sizes,
        malicious flags, payload bodies, signature placements. Each
        phase is one whole-array draw, so the plan costs O(columns)
        numpy calls instead of O(sessions) scalar RNG calls.
        """
        rng = np.random.default_rng(self.seed)
        spec = self.spec
        class_idx, host_src, host_dst = self._class_rows()
        n = len(class_idx)
        fwd_count, _ = spec.packets_per_session
        ppcount = self._packets_per_session()

        normal = host_src < 0
        n_normal = int(normal.sum())
        host_src[normal] = rng.integers(1, 2 ** 12, size=n_normal)
        host_dst[normal] = rng.integers(1, 2 ** 12, size=n_normal)

        cls_src_pop = np.array(
            [self.classifier.pop_index(cls.source)
             for cls in self.classes], dtype=np.int64)
        cls_dst_pop = np.array(
            [self.classifier.pop_index(cls.target)
             for cls in self.classes], dtype=np.int64)
        src_pop = cls_src_pop[class_idx] if n else class_idx
        dst_pop = cls_dst_pop[class_idx] if n else class_idx
        src_ip = _BASE_IP | (src_pop << 16) | host_src
        dst_ip = _BASE_IP | (dst_pop << 16) | host_dst

        cls_port = np.array(
            [self.class_ports.get(cls.name, -1)
             for cls in self.classes], dtype=np.int64)
        dst_port = cls_port[class_idx] if n else class_idx.copy()
        unknown = dst_port < 0
        dst_port[unknown] = rng.choice(
            np.array(_DEFAULT_DST_PORTS, dtype=np.int64),
            size=int(unknown.sum()))
        src_port = rng.integers(1024, 65535, size=n)

        if spec.payload_sigma > 0:
            sigma = spec.payload_sigma
            mu = np.log(spec.payload_bytes) - sigma * sigma / 2.0
            payload_size = np.maximum(
                8, rng.lognormal(mu, sigma, n).astype(np.int64))
        else:
            payload_size = np.full(n, spec.payload_bytes,
                                   dtype=np.int64)

        if with_payloads:
            malicious = (rng.random(n) <
                         spec.signature_session_fraction)
        else:
            malicious = np.zeros(n, dtype=bool)

        if with_payloads and ppcount > 0:
            offsets = np.zeros(n * ppcount + 1, dtype=np.int64)
            np.cumsum(np.repeat(payload_size, ppcount),
                      out=offsets[1:])
            payload = rng.integers(0, 256, size=int(offsets[-1]),
                                   dtype=np.uint8)
        else:
            offsets = np.zeros(n * ppcount + 1, dtype=np.int64)
            payload = np.zeros(0, dtype=np.uint8)

        embed_rows = (np.flatnonzero(malicious)
                      if with_payloads and fwd_count > 0
                      else np.zeros(0, dtype=np.int64))
        if len(embed_rows):
            pat_idx = rng.integers(len(DEFAULT_SIGNATURES),
                                   size=len(embed_rows))
            pat_frac = rng.random(len(embed_rows))
            for row, pi, frac in zip(embed_rows, pat_idx, pat_frac):
                pattern = DEFAULT_SIGNATURES[int(pi)]
                size = int(payload_size[row])
                base = int(offsets[int(row) * ppcount])
                pat = np.frombuffer(pattern, dtype=np.uint8)
                if len(pattern) >= size:
                    payload[base:base + size] = pat[:size]
                    continue
                offset = int(frac * max(1, size - len(pattern)))
                payload[base + offset:
                        base + offset + len(pattern)] = pat
        return _TracePlan(class_idx, src_ip, dst_ip, src_port,
                          dst_port, malicious, payload_size, payload,
                          offsets)

    def _rev_path(self, cls: TrafficClass) -> Tuple[str, ...]:
        if cls.rev_path is not None:
            return tuple(cls.rev_path)
        return tuple(reversed(cls.path))

    def _materialize(self, plan: _TracePlan,
                     with_payloads: bool) -> List[Session]:
        """Scalar oracle: expand the plan into ``Session`` objects."""
        fwd_count, rev_count = self.spec.packets_per_session
        ppcount = fwd_count + rev_count
        offsets = plan.payload_offsets
        buf = plan.payload
        sessions: List[Session] = []
        for row in range(plan.num_sessions):
            cls = self.classes[int(plan.class_idx[row])]
            tup = FiveTuple(
                proto=6,
                src_ip=int(plan.src_ip[row]),
                src_port=int(plan.src_port[row]),
                dst_ip=int(plan.dst_ip[row]),
                dst_port=int(plan.dst_port[row]))
            session = Session(five_tuple=tup, class_name=cls.name,
                              fwd_path=cls.path,
                              rev_path=cls.rev_path)
            size = int(plan.payload_size[row])
            base = row * ppcount
            for i in range(ppcount):
                if with_payloads:
                    payload = buf[offsets[base + i]:
                                  offsets[base + i + 1]].tobytes()
                else:
                    payload = b""
                direction = "fwd" if i < fwd_count else "rev"
                session.add_packet(direction, size + 40, payload)
            sessions.append(session)
        return sessions

    def generate(self, with_payloads: bool = True) -> List[Session]:
        """Generate the trace: normal sessions plus injected scanners."""
        return self._materialize(self._draw_plan(with_payloads),
                                 with_payloads)

    def _direct_batch(self, plan: _TracePlan,
                      node_order: Sequence[str], with_payloads: bool,
                      hash_seed: int) -> "PacketBatch":
        """Assemble the columnar batch straight from the plan —
        no per-packet Python objects. Must stay bit-identical to
        ``PacketBatch.from_sessions(self._materialize(plan), ...)``;
        the parity tests enforce it column by column.
        """
        from repro.simulation.batch import (
            DIR_FWD,
            DIR_REV,
            PacketBatch,
            SessionBatch,
        )

        n = plan.num_sessions
        fwd_count, rev_count = self.spec.packets_per_session
        ppcount = fwd_count + rev_count

        # Class-name universe: trace-declared names plus whatever the
        # classifier assigns. The classifier only looks at (src PoP,
        # dst PoP, dst port), so one call per unique (class, port)
        # pair covers every session.
        trace_names = {self.classes[int(ci)].name
                       for ci in np.unique(plan.class_idx)}
        assigned_of_pair: Dict[Tuple[int, int], Optional[str]] = {}
        if n:
            pairs, inverse = np.unique(
                np.stack([plan.class_idx, plan.dst_port], axis=1),
                axis=0, return_inverse=True)
            for ci, port in pairs:
                cls = self.classes[int(ci)]
                probe = FiveTuple(
                    proto=6,
                    src_ip=pop_prefix_ip(
                        self.classifier.pop_index(cls.source), 1),
                    src_port=1024,
                    dst_ip=pop_prefix_ip(
                        self.classifier.pop_index(cls.target), 1),
                    dst_port=int(port))
                assigned_of_pair[(int(ci), int(port))] = \
                    self.classifier(probe)
        assigned_names = {name for name in assigned_of_pair.values()
                          if name is not None}
        names = sorted(trace_names | assigned_names)
        name_index = {name: i for i, name in enumerate(names)}

        if n:
            pair_class_id = np.array(
                [-1 if assigned_of_pair[(int(ci), int(port))] is None
                 else name_index[assigned_of_pair[(int(ci),
                                                   int(port))]]
                 for ci, port in pairs], dtype=np.int32)
            class_id = pair_class_id[inverse.reshape(-1)]
        else:
            class_id = np.full(0, -1, dtype=np.int32)
        cls_trace_id = np.array(
            [name_index.get(cls.name, -1) for cls in self.classes],
            dtype=np.int32)
        trace_class_id = (cls_trace_id[plan.class_idx]
                          if n else np.full(0, -1, dtype=np.int32))

        # Path registry in first-seen session order: every session of
        # a class shares its paths, so walking classes by first
        # occurrence (fwd then rev) reproduces from_sessions' ids.
        node_index = {name: i for i, name in enumerate(node_order)}
        paths: List[np.ndarray] = []
        path_index: Dict[Tuple[str, ...], int] = {}

        def path_id(path: Tuple[str, ...]) -> int:
            pid = path_index.get(path)
            if pid is None:
                pid = len(paths)
                path_index[path] = pid
                paths.append(np.array(
                    [node_index[node] for node in path],
                    dtype=np.int64))
            return pid

        cls_fwd_pid = np.zeros(len(self.classes), dtype=np.int32)
        cls_rev_pid = np.zeros(len(self.classes), dtype=np.int32)
        if n:
            _, first_pos = np.unique(plan.class_idx,
                                     return_index=True)
            for ci in plan.class_idx[np.sort(first_pos)]:
                cls = self.classes[int(ci)]
                cls_fwd_pid[int(ci)] = path_id(tuple(cls.path))
                cls_rev_pid[int(ci)] = path_id(self._rev_path(cls))
        fwd_path_id = (cls_fwd_pid[plan.class_idx]
                       if n else np.zeros(0, dtype=np.int32))
        rev_path_id = (cls_rev_pid[plan.class_idx]
                       if n else np.zeros(0, dtype=np.int32))

        sessions = SessionBatch(
            np.full(n, 6, dtype=np.uint32),
            plan.src_ip.astype(np.uint32),
            plan.src_port.astype(np.uint32),
            plan.dst_ip.astype(np.uint32),
            plan.dst_port.astype(np.uint32),
            class_id, trace_class_id, tuple(names),
            fwd_path_id, rev_path_id, paths,
            tuple(node_order), hash_seed)

        session_of_packet = np.repeat(
            np.arange(n, dtype=np.int64), ppcount)
        direction = np.tile(
            np.array([DIR_FWD] * fwd_count + [DIR_REV] * rev_count,
                     dtype=np.uint8), n)
        size_bytes = np.repeat(
            (plan.payload_size + 40).astype(np.float64), ppcount)
        payload_buffer = (plan.payload.tobytes()
                          if with_payloads else b"")
        return PacketBatch(sessions, session_of_packet, direction,
                           size_bytes, payload_buffer,
                           plan.payload_offsets)

    def generate_batch(self, node_order: Sequence[str],
                       with_payloads: bool = True, hash_seed: int = 0,
                       direct: bool = False) -> "PacketBatch":
        """Generate the trace directly as a columnar
        :class:`~repro.simulation.batch.PacketBatch` for the
        vectorized replay engine.

        Both paths consume the identical draw plan, so a batch and a
        Session list from the same seed describe the identical trace.
        With ``direct=True`` the columns are assembled straight from
        the plan's arrays (no per-packet Python objects) — the fast
        path; ``direct=False`` materializes Sessions and columnarizes
        them, kept as the bit-exactness oracle.

        Args:
            node_order: node-name universe for observer indices —
                pass the emulating network's ``state.nids_nodes``.
            with_payloads: include payload bytes (needed for
                signature replay).
            hash_seed: network-wide hash seed for the hash columns.
            direct: vectorized column assembly (bit-identical,
                much faster).
        """
        from repro.simulation.batch import PacketBatch

        with get_registry().span("emulation.batch_build"):
            plan = self._draw_plan(with_payloads)
            if direct:
                return self._direct_batch(plan, node_order,
                                          with_payloads, hash_seed)
            return PacketBatch.from_sessions(
                self._materialize(plan, with_payloads),
                self.classifier, node_order, hash_seed)
