"""Synthetic trace generation (the reproduction's Scapy+seed-traces).

Given a set of traffic classes, the generator emits sessions whose
volumes are proportional to the classes' ``|T_c|`` (downsampled to a
tractable session budget), with synthetic per-PoP addressing, a small
number of packets per session, optional payloads seeded with signature
strings (so the Signature engine has something to find), and optional
injected scanners (sources contacting many distinct destinations across
paths, for the Scan/aggregation experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.nids.signature import DEFAULT_SIGNATURES
from repro.shim.hashing import FiveTuple
from repro.simulation.packets import (
    Session,
    pop_index_of_ip,
    pop_prefix_ip,
)
from repro.traffic.classes import TrafficClass

if TYPE_CHECKING:
    from repro.simulation.batch import PacketBatch


class PrefixClassifier:
    """Maps a 5-tuple to its traffic class via PoP /16 prefixes and,
    when several classes share a prefix pair (per-application classes,
    Section 3 footnote 1), the destination port.

    The emulation always presents the forward-oriented tuple (the real
    shim resolves direction from connection state), so no
    canonicalization is needed here.

    Args:
        pop_order: PoP names; their indices define the /16 prefixes.
        classes: traffic classes to register.
        class_ports: class name -> destination port, required for
            (and only consulted on) prefix pairs shared by multiple
            classes.
    """

    def __init__(self, pop_order: Sequence[str],
                 classes: Sequence[TrafficClass],
                 class_ports: Optional[Dict[str, int]] = None) -> None:
        self._pop_of_index = {i: pop for i, pop in enumerate(pop_order)}
        self._index_of_pop = {pop: i for i, pop in enumerate(pop_order)}
        self._class_of_pair: Dict[Tuple[str, str], str] = {}
        self._class_of_port: Dict[Tuple[str, str, int], str] = {}
        class_ports = class_ports or {}
        for cls in classes:
            key = (cls.source, cls.target)
            if key not in self._class_of_pair:
                self._class_of_pair[key] = cls.name
                continue
            # Shared pair: both the incumbent and newcomer must be
            # distinguishable by port.
            incumbent = self._class_of_pair[key]
            for name in (incumbent, cls.name):
                if name not in class_ports:
                    raise ValueError(
                        f"two classes share the prefix pair {key}; "
                        f"provide class_ports for {name!r}")
            self._class_of_port[key + (class_ports[incumbent],)] = \
                incumbent
            port_key = key + (class_ports[cls.name],)
            if port_key in self._class_of_port and \
                    self._class_of_port[port_key] != cls.name:
                raise ValueError(
                    f"classes {self._class_of_port[port_key]!r} and "
                    f"{cls.name!r} collide on {port_key}")
            self._class_of_port[port_key] = cls.name

    def pop_index(self, pop: str) -> int:
        return self._index_of_pop[pop]

    def __call__(self, tup: FiveTuple) -> Optional[str]:
        src_pop = self._pop_of_index.get(pop_index_of_ip(tup.src_ip))
        dst_pop = self._pop_of_index.get(pop_index_of_ip(tup.dst_ip))
        if src_pop is None or dst_pop is None:
            return None
        by_port = self._class_of_port.get(
            (src_pop, dst_pop, tup.dst_port))
        if by_port is not None:
            return by_port
        return self._class_of_pair.get((src_pop, dst_pop))


@dataclass
class TraceSpec:
    """Knobs for trace generation.

    ``payload_sigma`` > 0 draws each session's payload size from a
    lognormal around ``payload_bytes`` (heavy-tailed, like real flow
    size distributions) instead of a fixed size.
    """

    total_sessions: int = 5_000
    packets_per_session: Tuple[int, int] = (2, 2)  # (fwd, rev)
    payload_bytes: int = 120
    payload_sigma: float = 0.0
    signature_session_fraction: float = 0.02
    scanner_count: int = 0
    scanner_fanout: int = 40

    def __post_init__(self) -> None:
        if self.total_sessions < 0:
            raise ValueError("total_sessions must be non-negative")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.payload_sigma < 0:
            raise ValueError("payload_sigma must be non-negative")


class TraceGenerator:
    """Generates synthetic session traces over a topology's classes.

    Args:
        pop_order: all PoP names in a fixed order — their indices
            define the /16 prefixes (must match across generator,
            classifier, and emulation).
        classes: traffic classes (paths resolved); per-class session
            counts are ``|T_c|`` downsampled to ``spec.total_sessions``.
        spec: generation knobs.
        seed: RNG seed; generation is deterministic.
    """

    def __init__(self, pop_order: Sequence[str],
                 classes: Sequence[TrafficClass],
                 spec: Optional[TraceSpec] = None, seed: int = 7,
                 class_ports: Optional[Dict[str, int]] = None) -> None:
        self.pop_order = list(pop_order)
        self.classes = list(classes)
        self.spec = spec or TraceSpec()
        self.seed = seed
        self.class_ports = dict(class_ports or {})
        self.classifier = PrefixClassifier(self.pop_order, self.classes,
                                           self.class_ports)

    def _session_quota(self) -> Dict[str, int]:
        """Downsample class volumes to the session budget.

        Largest-remainder apportionment keeps the realized mix close to
        the target proportions even for small budgets.
        """
        total_volume = sum(cls.num_sessions for cls in self.classes)
        if total_volume <= 0:
            return {cls.name: 0 for cls in self.classes}
        raw = {cls.name: self.spec.total_sessions * cls.num_sessions /
               total_volume for cls in self.classes}
        quotas = {name: int(value) for name, value in raw.items()}
        shortfall = self.spec.total_sessions - sum(quotas.values())
        remainders = sorted(raw, key=lambda n: raw[n] - quotas[n],
                            reverse=True)
        for name in remainders[:shortfall]:
            quotas[name] += 1
        return quotas

    def _session_payload_bytes(self, rng: np.random.Generator) -> int:
        """Per-session payload size (fixed, or lognormal-tailed)."""
        if self.spec.payload_sigma <= 0:
            return self.spec.payload_bytes
        sigma = self.spec.payload_sigma
        mu = np.log(self.spec.payload_bytes) - sigma * sigma / 2.0
        return max(8, int(rng.lognormal(mu, sigma)))

    def _payload(self, rng: np.random.Generator, size: int,
                 embed_signature: bool) -> bytes:
        body = rng.integers(0, 256, size=size,
                            dtype=np.uint8).tobytes()
        if not embed_signature:
            return body
        pattern = DEFAULT_SIGNATURES[
            int(rng.integers(len(DEFAULT_SIGNATURES)))]
        if len(pattern) >= size:
            return pattern[:size]
        offset = int(rng.integers(max(1, size - len(pattern))))
        return body[:offset] + pattern + body[offset + len(pattern):]

    def _make_session(self, cls: TrafficClass, host_pair: Tuple[int, int],
                      rng: np.random.Generator,
                      with_payloads: bool) -> Session:
        src_index = self.classifier.pop_index(cls.source)
        dst_index = self.classifier.pop_index(cls.target)
        dst_port = self.class_ports.get(cls.name)
        if dst_port is None:
            dst_port = int(rng.choice([80, 443, 22, 25, 6667]))
        tup = FiveTuple(
            proto=6,
            src_ip=pop_prefix_ip(src_index, host_pair[0]),
            src_port=int(rng.integers(1024, 65535)),
            dst_ip=pop_prefix_ip(dst_index, host_pair[1]),
            dst_port=dst_port)
        session = Session(five_tuple=tup, class_name=cls.name,
                          fwd_path=cls.path,
                          rev_path=cls.rev_path)
        malicious = (with_payloads and
                     rng.random() < self.spec.signature_session_fraction)
        size = self._session_payload_bytes(rng)
        fwd_count, rev_count = self.spec.packets_per_session
        for i in range(fwd_count):
            payload = (self._payload(rng, size, malicious and i == 0)
                       if with_payloads else b"")
            session.add_packet("fwd", size + 40, payload)
        for _ in range(rev_count):
            payload = (self._payload(rng, size, False)
                       if with_payloads else b"")
            session.add_packet("rev", size + 40, payload)
        return session

    def generate(self, with_payloads: bool = True) -> List[Session]:
        """Generate the trace: normal sessions plus injected scanners."""
        rng = np.random.default_rng(self.seed)
        sessions: List[Session] = []
        quotas = self._session_quota()
        for cls in self.classes:
            quota = quotas.get(cls.name, 0)
            for _ in range(quota):
                host_pair = (int(rng.integers(1, 2 ** 12)),
                             int(rng.integers(1, 2 ** 12)))
                sessions.append(self._make_session(
                    cls, host_pair, rng, with_payloads))
        sessions.extend(self._scanner_sessions(rng, with_payloads))
        return sessions

    def generate_batch(self, node_order: Sequence[str],
                       with_payloads: bool = True, hash_seed: int = 0
                       ) -> "PacketBatch":
        """Generate the trace directly as a columnar
        :class:`~repro.simulation.batch.PacketBatch` for the
        vectorized replay engine.

        Same RNG stream as :meth:`generate` (the Session objects are
        materialized then columnarized), so a batch and a Session list
        from the same seed describe the identical trace.

        Args:
            node_order: node-name universe for observer indices —
                pass the emulating network's ``state.nids_nodes``.
            with_payloads: include payload bytes (needed for
                signature replay).
            hash_seed: network-wide hash seed for the hash columns.
        """
        from repro.simulation.batch import PacketBatch

        return PacketBatch.from_sessions(
            self.generate(with_payloads), self.classifier,
            node_order, hash_seed)

    def _scanner_sessions(self, rng: np.random.Generator,
                          with_payloads: bool) -> List[Session]:
        """Scanners: one fixed source host contacting many distinct
        destination hosts, spread over that source's classes."""
        sessions: List[Session] = []
        if self.spec.scanner_count <= 0:
            return sessions
        by_source: Dict[str, List[TrafficClass]] = {}
        for cls in self.classes:
            by_source.setdefault(cls.source, []).append(cls)
        source_pops = sorted(by_source)
        for scanner_id in range(self.spec.scanner_count):
            pop = source_pops[scanner_id % len(source_pops)]
            scanner_host = 2 ** 15 + scanner_id  # outside normal range
            targets = by_source[pop]
            for i in range(self.spec.scanner_fanout):
                cls = targets[i % len(targets)]
                victim_host = 2 ** 14 + i  # distinct destinations
                sessions.append(self._make_session(
                    cls, (scanner_host, victim_host), rng,
                    with_payloads))
        return sessions
