"""The trace-driven network emulator.

Replays a generated trace through per-node shims configured from an LP
solution and feeds the simulated NIDS engines, reproducing the paper's
Emulab methodology (Section 8.1) in-process:

- :meth:`Emulation.run_signature` — Signature detection under the
  replication architecture (Figure 10's per-node CPU usage).
- :meth:`Emulation.run_stateful` — stateful both-directions analysis
  under routing asymmetry (measures the *operational* miss rate the
  Section 5 LP predicts).
- :meth:`Emulation.run_scan` — distributed Scan detection with report
  aggregation, checked for semantic equivalence against a centralized
  scan detector (Section 7.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.inputs import NetworkState
from repro.obs import get_registry
from repro.nids.aggregator import (
    ScanAggregator,
    SplitStrategy,
    report_cost_record_hops,
)
from repro.nids.scan import ScanDetector
from repro.nids.signature import SignatureEngine
from repro.nids.stateful import StatefulSessionAnalyzer
from repro.shim.config import ShimConfig
from repro.shim.shim import Classifier, Shim
from repro.simulation.packets import Session
from repro.topology.topology import Link


@dataclass
class EmulationReport:
    """Outcome of a signature-detection emulation run."""

    work_units: Dict[str, float]
    sessions_processed: Dict[str, int]
    alerts: int
    replicated_bytes: float
    link_replicated_bytes: Dict[Link, float]
    packets_total: int

    def max_work(self, exclude: Sequence[str] = ()) -> float:
        """Largest per-node work, optionally excluding nodes (e.g.,
        the datacenter, as Figure 10's text does)."""
        values = [w for node, w in self.work_units.items()
                  if node not in exclude]
        return max(values) if values else 0.0


@dataclass
class StatefulEmulationReport:
    """Outcome of a stateful (both-directions) emulation run."""

    covered_sessions: int
    total_sessions: int
    work_units: Dict[str, float]
    replicated_bytes: float

    @property
    def miss_rate(self) -> float:
        """Measured fraction of sessions no node fully observed."""
        if self.total_sessions == 0:
            return 0.0
        return 1.0 - self.covered_sessions / self.total_sessions


@dataclass
class ScanEmulationReport:
    """Outcome of a distributed-scan emulation run."""

    distributed_alerts: Dict[str, Tuple[int, ...]]
    centralized_alerts: Dict[str, Tuple[int, ...]]
    record_hops: float
    byte_hops: float
    work_units: Dict[str, float]

    @property
    def semantically_equivalent(self) -> bool:
        """True when aggregation flagged exactly the centralized set."""
        return self.distributed_alerts == self.centralized_alerts


class Emulation:
    """Drives shims + engines over a session trace.

    Args:
        state: the calibrated network (for routing and link lookup).
        configs: per-node shim configurations compiled from an LP
            result (see :mod:`repro.shim.config`).
        classifier: packet-to-class mapping shared by all shims.
        hash_seed: network-wide hash seed.
    """

    def __init__(self, state: NetworkState,
                 configs: Dict[str, ShimConfig],
                 classifier: Classifier, hash_seed: int = 0):
        self.state = state
        self.classifier = classifier
        self.shims: Dict[str, Shim] = {
            node: Shim(configs[node], classifier, hash_seed)
            for node in state.nids_nodes
        }

    def _publish_run_metrics(self, kind: str,
                             work_units: Dict[str, float],
                             packets: int, elapsed: float) -> None:
        """End-of-run observability: throughput and per-node work.

        Published once per replay (never per packet), so the emulation
        loop itself carries no instrumentation overhead.
        """
        metrics = get_registry()
        if not metrics.enabled:
            return
        metrics.inc("emulation.runs")
        metrics.inc("emulation.packets", packets)
        metrics.observe(f"emulation.run_{kind}.seconds", elapsed)
        if elapsed > 0:
            metrics.gauge("emulation.packets_per_second",
                          packets / elapsed)
        for node, work in work_units.items():
            metrics.gauge(f"emulation.work_units.{node}", work)

    # -- signature / replication -----------------------------------------

    def run_signature(self, sessions: Sequence[Session],
                      engine_factory: Optional[Callable[[],
                                               SignatureEngine]] = None
                      ) -> EmulationReport:
        """Replay the trace through Signature engines.

        Every packet visits each node on its direction's path; the
        node's shim decides process/replicate/ignore. Replicated
        packets are delivered to the mirror's engine and their bytes
        charged to every link on the node-to-mirror route.
        """
        factory = engine_factory or SignatureEngine
        engines: Dict[str, SignatureEngine] = {
            node: factory() for node in self.state.nids_nodes}
        link_bytes: Dict[Link, float] = {}
        replicated = 0.0
        packets = 0
        start = time.perf_counter()
        for session in sessions:
            key = session.five_tuple
            for packet in session.packets:
                packets += 1
                for node in session.observers(packet.direction):
                    decision = self.shims[node].handle(
                        session.five_tuple, packet.direction,
                        packet.size_bytes)
                    if decision.is_process:
                        engines[node].inspect(key, packet.payload)
                    elif decision.is_replicate:
                        engines[decision.target].inspect(
                            key, packet.payload)
                        replicated += packet.size_bytes
                        for link in self.state.routing.path_links(
                                node, decision.target):
                            link_bytes[link] = (link_bytes.get(link, 0.0)
                                                + packet.size_bytes)
        report = EmulationReport(
            work_units={n: e.stats.work_units
                        for n, e in engines.items()},
            sessions_processed={n: e.stats.sessions_seen
                                for n, e in engines.items()},
            alerts=sum(e.stats.alerts for e in engines.values()),
            replicated_bytes=replicated,
            link_replicated_bytes=link_bytes,
            packets_total=packets)
        self._publish_run_metrics("signature", report.work_units,
                                  packets, time.perf_counter() - start)
        return report

    # -- stateful / split traffic ------------------------------------------

    def run_stateful(self, sessions: Sequence[Session]
                     ) -> StatefulEmulationReport:
        """Replay an (asymmetric) trace through stateful analyzers.

        A session counts as covered when at least one location —
        on-path node or replication target — observed both directions.
        """
        analyzers: Dict[str, StatefulSessionAnalyzer] = {
            node: StatefulSessionAnalyzer()
            for node in self.state.nids_nodes}
        replicated = 0.0
        packets = 0
        start = time.perf_counter()
        for session in sessions:
            key = session.five_tuple
            for packet in session.packets:
                packets += 1
                for node in session.observers(packet.direction):
                    decision = self.shims[node].handle(
                        session.five_tuple, packet.direction,
                        packet.size_bytes)
                    if decision.is_process:
                        analyzers[node].observe(
                            key, packet.direction, packet.size_bytes)
                    elif decision.is_replicate:
                        analyzers[decision.target].observe(
                            key, packet.direction, packet.size_bytes)
                        replicated += packet.size_bytes
        covered: Set = set()
        for analyzer in analyzers.values():
            covered |= analyzer.covered_sessions()
        report = StatefulEmulationReport(
            covered_sessions=len(covered),
            total_sessions=len(sessions),
            work_units={n: a.stats.work_units
                        for n, a in analyzers.items()},
            replicated_bytes=replicated)
        self._publish_run_metrics("stateful", report.work_units,
                                  packets, time.perf_counter() - start)
        return report

    # -- scan / aggregation ----------------------------------------------

    def run_scan(self, sessions: Sequence[Session], threshold: int,
                 class_gateway: Optional[Dict[str, str]] = None
                 ) -> ScanEmulationReport:
        """Distributed Scan detection with per-source splitting.

        Each on-path node counts the sources its hash range assigns it
        (local threshold 0), reports per-source counts to the class's
        gateway, and each gateway's aggregator applies the real
        threshold ``k``. A centralized detector per gateway provides
        the semantic-equivalence baseline.

        Args:
            sessions: the trace (each session is one flow).
            threshold: the aggregator's alert threshold ``k``.
            class_gateway: class name -> aggregation node; defaults to
                each class's ingress.
        """
        if class_gateway is None:
            class_gateway = {cls.name: cls.ingress
                             for cls in self.state.classes}
        detectors: Dict[Tuple[str, str], ScanDetector] = {}
        central: Dict[str, ScanDetector] = {}
        for session in sessions:
            gateway = class_gateway.get(session.class_name)
            if gateway is None:
                continue
            central.setdefault(
                gateway, ScanDetector(threshold=threshold)).observe_flow(
                session.src_ip, session.dst_ip,
                flow_key=session.five_tuple)
            for node in session.fwd_path:
                decision = self.shims[node].handle(
                    session.five_tuple, "fwd", 0.0)
                if decision.is_process:
                    detectors.setdefault(
                        (node, gateway), ScanDetector()).observe_flow(
                            session.src_ip, session.dst_ip,
                            flow_key=session.five_tuple)

        record_hops = 0.0
        byte_hops = 0.0
        distributed: Dict[str, Tuple[int, ...]] = {}
        for gateway in sorted(central):
            aggregator = ScanAggregator(
                threshold, SplitStrategy.SOURCE_LEVEL)
            reports = [det.source_count_report(node)
                       for (node, gw), det in sorted(detectors.items())
                       if gw == gateway]
            aggregator.submit_all(reports)
            distances = {r.node: self.state.routing.hop_count(
                r.node, gateway) for r in reports}
            hops, bytes_ = report_cost_record_hops(reports, distances)
            record_hops += hops
            byte_hops += bytes_
            distributed[gateway] = tuple(aggregator.alerts())

        centralized = {
            gateway: tuple(detector.flagged_sources())
            for gateway, detector in central.items()
        }
        work: Dict[str, float] = {n: 0.0 for n in self.state.nids_nodes}
        for (node, _), det in detectors.items():
            work[node] += det.stats.work_units
        return ScanEmulationReport(
            distributed_alerts=distributed,
            centralized_alerts=centralized,
            record_hops=record_hops,
            byte_hops=byte_hops,
            work_units=work)

    def run_flood(self, sessions: Sequence[Session], threshold: int,
                  class_gateway: Optional[Dict[str, str]] = None
                  ) -> ScanEmulationReport:
        """Distributed flood/DoS detection with per-destination
        splitting (the Section 6 extension).

        Mirrors :meth:`run_scan` with the roles of source and
        destination swapped: nodes count distinct sources per assigned
        destination (shim rules compiled with
        ``HashMode.DESTINATION``), the gateway aggregator sums the
        per-destination counts, and a centralized detector provides
        the equivalence baseline.
        """
        from repro.nids.flood import FloodDetector

        if class_gateway is None:
            class_gateway = {cls.name: cls.ingress
                             for cls in self.state.classes}
        detectors: Dict[Tuple[str, str], FloodDetector] = {}
        central: Dict[str, FloodDetector] = {}
        for session in sessions:
            gateway = class_gateway.get(session.class_name)
            if gateway is None:
                continue
            central.setdefault(
                gateway, FloodDetector(threshold=threshold)
            ).observe_flow(session.src_ip, session.dst_ip,
                           flow_key=session.five_tuple)
            for node in session.fwd_path:
                decision = self.shims[node].handle(
                    session.five_tuple, "fwd", 0.0)
                if decision.is_process:
                    detectors.setdefault(
                        (node, gateway), FloodDetector()).observe_flow(
                            session.src_ip, session.dst_ip,
                            flow_key=session.five_tuple)

        record_hops = 0.0
        byte_hops = 0.0
        distributed: Dict[str, Tuple[int, ...]] = {}
        for gateway in sorted(central):
            aggregator = ScanAggregator(
                threshold, SplitStrategy.SOURCE_LEVEL)
            reports = [det.destination_count_report(node)
                       for (node, gw), det in sorted(detectors.items())
                       if gw == gateway]
            aggregator.submit_all(reports)
            distances = {r.node: self.state.routing.hop_count(
                r.node, gateway) for r in reports}
            hops, bytes_ = report_cost_record_hops(reports, distances)
            record_hops += hops
            byte_hops += bytes_
            distributed[gateway] = tuple(aggregator.alerts())

        centralized = {
            gateway: tuple(detector.flagged_destinations())
            for gateway, detector in central.items()
        }
        work: Dict[str, float] = {n: 0.0 for n in self.state.nids_nodes}
        for (node, _), det in detectors.items():
            work[node] += det.stats.work_units
        return ScanEmulationReport(
            distributed_alerts=distributed,
            centralized_alerts=centralized,
            record_hops=record_hops,
            byte_hops=byte_hops,
            work_units=work)

    def run_scan_epochs(self, epochs: Sequence[Sequence[Session]],
                        threshold: int,
                        class_gateway: Optional[Dict[str, str]] = None
                        ) -> List[ScanEmulationReport]:
        """Scan detection over successive measurement epochs.

        The Scan module counts destinations contacted "in the previous
        measurement epoch" (Section 6); counters reset between epochs,
        so a slow scanner that spreads its probes across epochs stays
        under the per-epoch threshold while a burst is flagged. Each
        epoch produces its own aggregated reports and alerts.
        """
        return [self.run_scan(batch, threshold, class_gateway)
                for batch in epochs]
