"""The trace-driven network emulator.

Replays a generated trace through per-node shims configured from an LP
solution and feeds the simulated NIDS engines, reproducing the paper's
Emulab methodology (Section 8.1) in-process:

- :meth:`Emulation.run_signature` — Signature detection under the
  replication architecture (Figure 10's per-node CPU usage).
- :meth:`Emulation.run_stateful` — stateful both-directions analysis
  under routing asymmetry (measures the *operational* miss rate the
  Section 5 LP predicts).
- :meth:`Emulation.run_scan` / :meth:`Emulation.run_flood` —
  distributed Scan/flood detection with report aggregation, checked
  for semantic equivalence against a centralized detector
  (Section 7.3).

Each ``run_*`` has two implementations. The scalar path walks Python
objects one packet at a time and is the correctness oracle. Passing
``fast=True`` replays the same trace through the vectorized engine —
columnar batches (:mod:`repro.simulation.batch`), batch hashing, and
the compiled decision kernel (:mod:`repro.shim.batch`) — producing a
report with *identical* contents; when the installed configs cannot be
compiled (or a custom engine factory is supplied) the call silently
falls back to the scalar path and counts ``emulation.fast.fallbacks``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.inputs import NetworkState
from repro.obs import get_registry
from repro.nids.aggregator import (
    ScanAggregator,
    SplitStrategy,
    report_cost_record_hops,
)
from repro.nids.flood import FloodDetector
from repro.nids.reports import SOURCE_COUNT_RECORD_BYTES
from repro.nids.scan import ScanDetector
from repro.nids.signature import DEFAULT_SIGNATURES, SignatureEngine
from repro.nids.stateful import StatefulSessionAnalyzer
from repro.shim.batch import (
    ACTION_PROCESS,
    ACTION_REPLICATE,
    BatchShimKernel,
    MirrorLinkIndex,
    UnsupportedShimConfig,
    accumulate_per_node,
    delivery_nodes,
)
from repro.shim.config import ShimConfig
from repro.shim.shim import Classifier, Shim
from repro.simulation.batch import DIR_FWD, PacketBatch, SessionBatch
from repro.simulation.packets import Session
from repro.topology.topology import Link

if TYPE_CHECKING:
    from repro.simulation.tracestore import ChunkedReplay

Trace = Union[Sequence[Session], PacketBatch]
FlowTrace = Union[Sequence[Session], SessionBatch, PacketBatch]


@dataclass
class EmulationReport:
    """Outcome of a signature-detection emulation run."""

    work_units: Dict[str, float]
    sessions_processed: Dict[str, int]
    alerts: int
    replicated_bytes: float
    link_replicated_bytes: Dict[Link, float]
    packets_total: int

    def max_work(self, exclude: Sequence[str] = ()) -> float:
        """Largest per-node work, optionally excluding nodes (e.g.,
        the datacenter, as Figure 10's text does)."""
        values = [w for node, w in self.work_units.items()
                  if node not in exclude]
        return max(values) if values else 0.0


@dataclass
class StatefulEmulationReport:
    """Outcome of a stateful (both-directions) emulation run."""

    covered_sessions: int
    total_sessions: int
    work_units: Dict[str, float]
    replicated_bytes: float

    @property
    def miss_rate(self) -> float:
        """Measured fraction of sessions no node fully observed."""
        if self.total_sessions == 0:
            return 0.0
        return 1.0 - self.covered_sessions / self.total_sessions


@dataclass
class ScanEmulationReport:
    """Outcome of a distributed-scan emulation run."""

    distributed_alerts: Dict[str, Tuple[int, ...]]
    centralized_alerts: Dict[str, Tuple[int, ...]]
    record_hops: float
    byte_hops: float
    work_units: Dict[str, float]

    @property
    def semantically_equivalent(self) -> bool:
        """True when aggregation flagged exactly the centralized set."""
        return self.distributed_alerts == self.centralized_alerts


# The two aggregated flow-level replays differ only in which detector
# runs, which report it ships, and which entity it flags. One spec per
# kind keeps the replay logic written once (scalar and fast).
#
# Fields: detector factory, report method name, centralized flagged
# method name, and whether the counted entity is the flow's source
# ("src" = scan: distinct destinations per source) or destination
# ("dst" = flood: distinct sources per destination).
_AGG_KINDS = {
    "scan": (ScanDetector, "source_count_report", "flagged_sources",
             "src"),
    "flood": (FloodDetector, "destination_count_report",
              "flagged_destinations", "dst"),
}


class Emulation:
    """Drives shims + engines over a session trace.

    Args:
        state: the calibrated network (for routing and link lookup).
        configs: per-node shim configurations compiled from an LP
            result (see :mod:`repro.shim.config`).
        classifier: packet-to-class mapping shared by all shims.
        hash_seed: network-wide hash seed.
    """

    def __init__(self, state: NetworkState,
                 configs: Dict[str, ShimConfig],
                 classifier: Classifier, hash_seed: int = 0) -> None:
        self.state = state
        self.configs = configs
        self.classifier = classifier
        self.hash_seed = hash_seed
        self.shims: Dict[str, Shim] = {
            node: Shim(configs[node], classifier, hash_seed)
            for node in state.nids_nodes
        }
        self._kernel_cache: Dict[Tuple[str, ...], object] = {}
        self._link_index: Optional[MirrorLinkIndex] = None

    def _publish_run_metrics(self, kind: str,
                             work_units: Dict[str, float],
                             packets: int, elapsed: float,
                             bytes_total: Optional[float] = None
                             ) -> None:
        """End-of-run observability: throughput and per-node work.

        Published once per replay (never per packet), so the emulation
        loop itself carries no instrumentation overhead. For the
        flow-level scan/flood replays ``packets`` counts flows.
        ``bytes_total`` (wire bytes replayed) additionally publishes
        byte throughput when the caller tracked it.
        """
        metrics = get_registry()
        if not metrics.enabled:
            return
        metrics.inc("emulation.runs")
        metrics.inc("emulation.packets", packets)
        metrics.observe(f"emulation.run_{kind}.seconds", elapsed)
        if elapsed > 0:
            metrics.gauge("emulation.packets_per_second",
                          packets / elapsed)
            if bytes_total is not None:
                metrics.gauge("emulation.bytes_per_second",
                              bytes_total / elapsed)
        for node, work in work_units.items():
            metrics.gauge(f"emulation.work_units.{node}", work)

    # -- fast-path plumbing ----------------------------------------------

    def _kernel(self, class_names: Tuple[str, ...]) -> BatchShimKernel:
        """The compiled decision kernel for one class-name universe.

        Compilation happens once per universe; an uncompilable config
        set is also cached (as the exception) so repeated fast-path
        attempts fall back without re-walking every rule list.
        """
        cached = self._kernel_cache.get(class_names)
        if cached is None:
            try:
                cached = BatchShimKernel(
                    self.configs, class_names,
                    tuple(self.state.nids_nodes), self.hash_seed)
            except UnsupportedShimConfig as exc:
                cached = exc
            self._kernel_cache[class_names] = cached
        if isinstance(cached, UnsupportedShimConfig):
            raise cached
        return cached

    def _links(self) -> MirrorLinkIndex:
        if self._link_index is None:
            self._link_index = MirrorLinkIndex(
                self.state.routing, tuple(self.state.nids_nodes))
        return self._link_index

    def _note_fallback(self, reason: str) -> None:
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("emulation.fast.fallbacks")
        self._last_fallback_reason = reason

    def _note_fast_run(self) -> None:
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("emulation.fast.runs")

    def _packet_batch(self, trace: Trace) -> PacketBatch:
        if isinstance(trace, PacketBatch):
            if tuple(trace.sessions.node_order) != \
                    tuple(self.state.nids_nodes):
                raise ValueError("batch node order does not match "
                                 "this network's NIDS nodes")
            return trace
        return PacketBatch.from_sessions(
            trace, self.classifier, tuple(self.state.nids_nodes),
            self.hash_seed)

    def _session_batch(self, trace: FlowTrace) -> SessionBatch:
        if isinstance(trace, PacketBatch):
            trace = trace.sessions
        if isinstance(trace, SessionBatch):
            if tuple(trace.node_order) != \
                    tuple(self.state.nids_nodes):
                raise ValueError("batch node order does not match "
                                 "this network's NIDS nodes")
            return trace
        return SessionBatch.from_sessions(
            trace, self.classifier, tuple(self.state.nids_nodes),
            self.hash_seed)

    @staticmethod
    def _require_sessions(trace, label: str) -> Sequence[Session]:
        if isinstance(trace, (PacketBatch, SessionBatch)):
            raise TypeError(
                f"{label} fell back to the scalar path, which needs "
                f"Session objects; pass the original trace instead of "
                f"a prebuilt batch")
        return trace

    def _decide_batch(self, kernel: BatchShimKernel,
                      sessions: SessionBatch, obs_sess: np.ndarray,
                      obs_node: np.ndarray, directions: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Kernel decisions for an observation expansion: class ids and
        hash values are session-level columns gathered per
        observation."""
        hash_columns = {
            mode: sessions.hash_column(mode)[obs_sess]
            for mode in kernel.modes_used}
        return kernel.decide(
            obs_node, sessions.class_id[obs_sess].astype(np.int64),
            directions, hash_columns)

    # -- signature / replication -----------------------------------------

    def run_signature(self, sessions: Trace,
                      engine_factory: Optional[Callable[[],
                                               SignatureEngine]] = None,
                      fast: bool = False) -> EmulationReport:
        """Replay the trace through Signature engines.

        Every packet visits each node on its direction's path; the
        node's shim decides process/replicate/ignore. Replicated
        packets are delivered to the mirror's engine and their bytes
        charged to every link on the node-to-mirror route.

        With ``fast=True`` the vectorized engine replays the batch and
        returns an identical report; a custom ``engine_factory`` or an
        uncompilable config set falls back to the scalar oracle.
        """
        if fast:
            if engine_factory is not None:
                self._note_fallback("custom engine factory")
            else:
                batch = self._packet_batch(sessions)
                try:
                    return self._fast_signature(batch)
                except UnsupportedShimConfig as exc:
                    self._note_fallback(str(exc))
        sessions = self._require_sessions(sessions, "run_signature")

        factory = engine_factory or SignatureEngine
        engines: Dict[str, SignatureEngine] = {
            node: factory() for node in self.state.nids_nodes}
        link_bytes: Dict[Link, float] = {}
        replicated = 0.0
        packets = 0
        start = time.perf_counter()
        for session in sessions:
            key = session.five_tuple
            for packet in session.packets:
                packets += 1
                for node in session.observers(packet.direction):
                    decision = self.shims[node].handle(
                        session.five_tuple, packet.direction,
                        packet.size_bytes)
                    if decision.is_process:
                        engines[node].inspect(key, packet.payload)
                    elif decision.is_replicate:
                        engines[decision.target].inspect(
                            key, packet.payload)
                        replicated += packet.size_bytes
                        for link in self.state.routing.path_links(
                                node, decision.target):
                            link_bytes[link] = (link_bytes.get(link, 0.0)
                                                + packet.size_bytes)
        report = EmulationReport(
            work_units={n: e.stats.work_units
                        for n, e in engines.items()},
            sessions_processed={n: e.stats.sessions_seen
                                for n, e in engines.items()},
            alerts=sum(e.stats.alerts for e in engines.values()),
            replicated_bytes=replicated,
            link_replicated_bytes=link_bytes,
            packets_total=packets)
        self._publish_run_metrics("signature", report.work_units,
                                  packets, time.perf_counter() - start)
        return report

    def _fast_signature(self, batch: PacketBatch) -> EmulationReport:
        """Vectorized :meth:`run_signature` over a packet batch.

        Work units decompose exactly as the scalar engine charges them:
        1.0 x payload bytes per delivered packet (integer byte counts,
        so the float sums are exact in any order) plus 100.0 per
        distinct (node, five-tuple) delivery pair. Alerts multiply each
        packet's precomputed pattern-occurrence count by its delivery
        count — the same total the scalar engine accumulates one
        ``inspect`` at a time.
        """
        sess = batch.sessions
        kernel = self._kernel(sess.class_names)
        start = time.perf_counter()
        obs_pkt, obs_node = batch.packet_observers()
        obs_sess = batch.session_of_packet[obs_pkt]
        actions, targets = self._decide_batch(
            kernel, sess, obs_sess, obs_node,
            batch.direction[obs_pkt].astype(np.int64))
        deliver = delivery_nodes(actions, targets, obs_node)
        mask = deliver >= 0
        num_nodes = len(sess.node_order)

        payload_len = batch.payload_lengths
        byte_work = accumulate_per_node(
            deliver, payload_len[obs_pkt].astype(np.float64), num_nodes)
        keys = max(sess.num_keys, 1)
        pair = deliver[mask] * keys + sess.session_key[obs_sess[mask]]
        distinct_pairs = np.unique(pair)
        session_counts = np.bincount(distinct_pairs // keys,
                                     minlength=num_nodes)
        work = byte_work + 100.0 * session_counts

        match_counts = batch.payload_match_counts(DEFAULT_SIGNATURES)
        alerts = int(match_counts[obs_pkt[mask]].sum())

        repl = actions == ACTION_REPLICATE
        repl_sizes = batch.size_bytes[obs_pkt[repl]]
        replicated = float(repl_sizes.sum()) if repl.any() else 0.0
        link_bytes = self._links().link_bytes(
            obs_node[repl], targets[repl].astype(np.int64), repl_sizes)

        report = EmulationReport(
            work_units={n: float(work[i])
                        for i, n in enumerate(sess.node_order)},
            sessions_processed={n: int(session_counts[i])
                                for i, n in enumerate(sess.node_order)},
            alerts=alerts,
            replicated_bytes=replicated,
            link_replicated_bytes=link_bytes,
            packets_total=batch.num_packets)
        self._note_fast_run()
        self._publish_run_metrics("signature", report.work_units,
                                  batch.num_packets,
                                  time.perf_counter() - start,
                                  bytes_total=float(
                                      batch.size_bytes.sum()))
        return report

    def run_signature_chunked(self, replay: "ChunkedReplay"
                              ) -> EmulationReport:
        """Signature replay over a chunk stream — bit-identical to
        :meth:`run_signature` with ``fast=True`` on the whole batch,
        at O(chunk) instead of O(trace) memory.

        Per-node byte work, alerts, replicated bytes, and per-link
        bytes are integer-valued float sums, exact in any grouping, so
        they accumulate across chunks directly. Distinct (node,
        five-tuple) delivery pairs are **not** additive — the same
        session's packets may recur in later chunks on another node's
        range, and duplicate five-tuples can span chunks — so each
        chunk contributes its distinct global-key pairs and the union
        is deduplicated once at the end.
        """
        kernel = self._kernel(replay.class_names)
        if tuple(replay.node_order) != tuple(self.state.nids_nodes):
            raise ValueError("batch node order does not match "
                             "this network's NIDS nodes")
        start = time.perf_counter()
        num_nodes = len(replay.node_order)
        keys = max(replay.num_keys, 1)
        byte_work = np.zeros(num_nodes, dtype=np.float64)
        pair_chunks: List[np.ndarray] = []
        alerts = 0
        replicated = 0.0
        bytes_total = 0.0
        link_bytes: Dict[Link, float] = {}
        for chunk in replay:
            sess = chunk.sessions
            obs_pkt, obs_node = chunk.packet_observers()
            obs_sess = chunk.session_of_packet[obs_pkt]
            actions, targets = self._decide_batch(
                kernel, sess, obs_sess, obs_node,
                chunk.direction[obs_pkt].astype(np.int64))
            deliver = delivery_nodes(actions, targets, obs_node)
            mask = deliver >= 0

            payload_len = chunk.payload_lengths
            byte_work += accumulate_per_node(
                deliver, payload_len[obs_pkt].astype(np.float64),
                num_nodes)
            pair = (deliver[mask] * keys +
                    sess.session_key[obs_sess[mask]])
            pair_chunks.append(np.unique(pair))

            match_counts = chunk.payload_match_counts(
                DEFAULT_SIGNATURES)
            alerts += int(match_counts[obs_pkt[mask]].sum())

            repl = actions == ACTION_REPLICATE
            repl_sizes = chunk.size_bytes[obs_pkt[repl]]
            if repl.any():
                replicated += float(repl_sizes.sum())
            for link, value in self._links().link_bytes(
                    obs_node[repl], targets[repl].astype(np.int64),
                    repl_sizes).items():
                link_bytes[link] = link_bytes.get(link, 0.0) + value
            bytes_total += float(chunk.size_bytes.sum())

        if pair_chunks:
            distinct_pairs = np.unique(np.concatenate(pair_chunks))
        else:
            distinct_pairs = np.zeros(0, dtype=np.int64)
        session_counts = np.bincount(distinct_pairs // keys,
                                     minlength=num_nodes)
        work = byte_work + 100.0 * session_counts

        report = EmulationReport(
            work_units={n: float(work[i])
                        for i, n in enumerate(replay.node_order)},
            sessions_processed={n: int(session_counts[i])
                                for i, n in
                                enumerate(replay.node_order)},
            alerts=alerts,
            replicated_bytes=replicated,
            link_replicated_bytes=link_bytes,
            packets_total=replay.num_packets)
        self._note_fast_run()
        self._publish_run_metrics("signature", report.work_units,
                                  replay.num_packets,
                                  time.perf_counter() - start,
                                  bytes_total=bytes_total)
        return report

    # -- stateful / split traffic ------------------------------------------

    def run_stateful(self, sessions: Trace, fast: bool = False
                     ) -> StatefulEmulationReport:
        """Replay an (asymmetric) trace through stateful analyzers.

        A session counts as covered when at least one location —
        on-path node or replication target — observed both directions.
        """
        if fast:
            batch = self._packet_batch(sessions)
            try:
                return self._fast_stateful(batch)
            except UnsupportedShimConfig as exc:
                self._note_fallback(str(exc))
        sessions = self._require_sessions(sessions, "run_stateful")

        analyzers: Dict[str, StatefulSessionAnalyzer] = {
            node: StatefulSessionAnalyzer()
            for node in self.state.nids_nodes}
        replicated = 0.0
        packets = 0
        start = time.perf_counter()
        for session in sessions:
            key = session.five_tuple
            for packet in session.packets:
                packets += 1
                for node in session.observers(packet.direction):
                    decision = self.shims[node].handle(
                        session.five_tuple, packet.direction,
                        packet.size_bytes)
                    if decision.is_process:
                        analyzers[node].observe(
                            key, packet.direction, packet.size_bytes)
                    elif decision.is_replicate:
                        analyzers[decision.target].observe(
                            key, packet.direction, packet.size_bytes)
                        replicated += packet.size_bytes
        covered: Set = set()
        for analyzer in analyzers.values():
            covered |= analyzer.covered_sessions()
        report = StatefulEmulationReport(
            covered_sessions=len(covered),
            total_sessions=len(sessions),
            work_units={n: a.stats.work_units
                        for n, a in analyzers.items()},
            replicated_bytes=replicated)
        self._publish_run_metrics("stateful", report.work_units,
                                  packets, time.perf_counter() - start)
        return report

    def _fast_stateful(self, batch: PacketBatch
                       ) -> StatefulEmulationReport:
        """Vectorized :meth:`run_stateful`.

        Coverage reduces to sets: a (node, session) delivery pair is
        covered when its distinct (node, session, direction) triples
        number two; covered sessions are the distinct five-tuples in
        any covered pair. Work is 0.5 x wire bytes (exact — halving a
        float is lossless) plus 50 per distinct delivery pair.
        """
        sess = batch.sessions
        kernel = self._kernel(sess.class_names)
        start = time.perf_counter()
        obs_pkt, obs_node = batch.packet_observers()
        obs_sess = batch.session_of_packet[obs_pkt]
        directions = batch.direction[obs_pkt].astype(np.int64)
        actions, targets = self._decide_batch(
            kernel, sess, obs_sess, obs_node, directions)
        deliver = delivery_nodes(actions, targets, obs_node)
        mask = deliver >= 0
        num_nodes = len(sess.node_order)

        sizes = batch.size_bytes[obs_pkt]
        byte_sum = accumulate_per_node(deliver, sizes, num_nodes)
        keys = max(sess.num_keys, 1)
        pair = deliver[mask] * keys + sess.session_key[obs_sess[mask]]
        distinct_pairs_all = np.unique(pair)
        work = 0.5 * byte_sum + 50.0 * np.bincount(
            distinct_pairs_all // keys, minlength=num_nodes)

        triples = np.unique(pair * 2 + directions[mask])
        pairs_of_triples, dir_counts = np.unique(triples // 2,
                                                 return_counts=True)
        covered_keys = np.unique(
            pairs_of_triples[dir_counts == 2] % keys)

        repl = actions == ACTION_REPLICATE
        replicated = (float(batch.size_bytes[obs_pkt[repl]].sum())
                      if repl.any() else 0.0)

        report = StatefulEmulationReport(
            covered_sessions=int(len(covered_keys)),
            total_sessions=sess.num_sessions,
            work_units={n: float(work[i])
                        for i, n in enumerate(sess.node_order)},
            replicated_bytes=replicated)
        self._note_fast_run()
        self._publish_run_metrics("stateful", report.work_units,
                                  batch.num_packets,
                                  time.perf_counter() - start)
        return report

    # -- scan & flood / aggregation ---------------------------------------

    def run_scan(self, sessions: FlowTrace, threshold: int,
                 class_gateway: Optional[Dict[str, str]] = None,
                 fast: bool = False) -> ScanEmulationReport:
        """Distributed Scan detection with per-source splitting.

        Each on-path node counts the sources its hash range assigns it
        (local threshold 0), reports per-source counts to the class's
        gateway, and each gateway's aggregator applies the real
        threshold ``k``. A centralized detector per gateway provides
        the semantic-equivalence baseline.

        Args:
            sessions: the trace (each session is one flow).
            threshold: the aggregator's alert threshold ``k``.
            class_gateway: class name -> aggregation node; defaults to
                each class's ingress.
            fast: replay through the vectorized engine (identical
                report; falls back to scalar when uncompilable).
        """
        return self._run_aggregated("scan", sessions, threshold,
                                    class_gateway, fast)

    def run_flood(self, sessions: FlowTrace, threshold: int,
                  class_gateway: Optional[Dict[str, str]] = None,
                  fast: bool = False) -> ScanEmulationReport:
        """Distributed flood/DoS detection with per-destination
        splitting (the Section 6 extension).

        Mirrors :meth:`run_scan` with the roles of source and
        destination swapped: nodes count distinct sources per assigned
        destination (shim rules compiled with
        ``HashMode.DESTINATION``), the gateway aggregator sums the
        per-destination counts, and a centralized detector provides
        the equivalence baseline.
        """
        return self._run_aggregated("flood", sessions, threshold,
                                    class_gateway, fast)

    def _run_aggregated(self, kind: str, sessions: FlowTrace,
                        threshold: int,
                        class_gateway: Optional[Dict[str, str]],
                        fast: bool = False) -> ScanEmulationReport:
        """Shared scan/flood replay (parameterized by ``_AGG_KINDS``)."""
        if class_gateway is None:
            class_gateway = {cls.name: cls.ingress
                             for cls in self.state.classes}
        if fast:
            batch = self._session_batch(sessions)
            try:
                return self._fast_aggregated(kind, batch, threshold,
                                             class_gateway)
            except UnsupportedShimConfig as exc:
                self._note_fallback(str(exc))
        sessions = self._require_sessions(sessions, f"run_{kind}")

        detector_cls, report_method, flagged_method, _ = _AGG_KINDS[kind]
        detectors: Dict[Tuple[str, str], object] = {}
        central: Dict[str, object] = {}
        flows = 0
        start = time.perf_counter()
        for session in sessions:
            gateway = class_gateway.get(session.class_name)
            if gateway is None:
                continue
            flows += 1
            central.setdefault(
                gateway, detector_cls(threshold=threshold)).observe_flow(
                session.src_ip, session.dst_ip,
                flow_key=session.five_tuple)
            for node in session.fwd_path:
                decision = self.shims[node].handle(
                    session.five_tuple, "fwd", 0.0)
                if decision.is_process:
                    detectors.setdefault(
                        (node, gateway), detector_cls()).observe_flow(
                            session.src_ip, session.dst_ip,
                            flow_key=session.five_tuple)

        record_hops = 0.0
        byte_hops = 0.0
        distributed: Dict[str, Tuple[int, ...]] = {}
        for gateway in sorted(central):
            aggregator = ScanAggregator(
                threshold, SplitStrategy.SOURCE_LEVEL)
            reports = [getattr(det, report_method)(node)
                       for (node, gw), det in sorted(detectors.items())
                       if gw == gateway]
            aggregator.submit_all(reports)
            distances = {r.node: self.state.routing.hop_count(
                r.node, gateway) for r in reports}
            hops, bytes_ = report_cost_record_hops(reports, distances)
            record_hops += hops
            byte_hops += bytes_
            distributed[gateway] = tuple(aggregator.alerts())

        centralized = {
            gateway: tuple(getattr(detector, flagged_method)())
            for gateway, detector in central.items()
        }
        work: Dict[str, float] = {n: 0.0 for n in self.state.nids_nodes}
        for (node, _), det in detectors.items():
            work[node] += det.stats.work_units
        report = ScanEmulationReport(
            distributed_alerts=distributed,
            centralized_alerts=centralized,
            record_hops=record_hops,
            byte_hops=byte_hops,
            work_units=work)
        self._publish_run_metrics(kind, work, flows,
                                  time.perf_counter() - start)
        return report

    def _fast_aggregated(self, kind: str, sess: SessionBatch,
                         threshold: int,
                         class_gateway: Dict[str, str]
                         ) -> ScanEmulationReport:
        """Vectorized scan/flood replay over a session batch.

        Everything reduces to distinct-row counting: the centralized
        baseline is per-(gateway, entity) distinct counterpart counts;
        the distributed side is the same with the processing node as an
        extra key, then summed across nodes per (gateway, entity) — the
        source-level aggregation invariant. Work is 10 per distinct
        (node, gateway, flow) triple; report cost is 16 bytes per
        report row times the node-gateway hop count.
        """
        detector_cls, _, _, entity_field = _AGG_KINDS[kind]
        kernel = self._kernel(sess.class_names)
        start = time.perf_counter()

        # Per-session gateway codes via the class-name column.
        gw_names: List[str] = []
        gw_index: Dict[str, int] = {}
        class_gw = np.full(len(sess.class_names), -1, dtype=np.int64)
        for ci, cname in enumerate(sess.class_names):
            gateway = class_gateway.get(cname)
            if gateway is None:
                continue
            code = gw_index.get(gateway)
            if code is None:
                code = len(gw_names)
                gw_index[gateway] = code
                gw_names.append(gateway)
            class_gw[ci] = code
        sess_gw = class_gw[sess.trace_class_id]

        if entity_field == "src":
            entity = sess.src_ip.astype(np.int64)
            counted = sess.dst_ip.astype(np.int64)
        else:
            entity = sess.dst_ip.astype(np.int64)
            counted = sess.src_ip.astype(np.int64)

        # Centralized baseline: distinct (gw, entity, counterpart)
        # rows, reduced to per-(gw, entity) counts.
        valid = sess_gw >= 0
        flows = int(valid.sum())
        present = np.unique(sess_gw[valid])
        centralized: Dict[str, Tuple[int, ...]] = {}
        central_rows = np.unique(np.stack(
            [sess_gw[valid], entity[valid], counted[valid]], axis=1),
            axis=0)
        if len(central_rows):
            groups, counts = np.unique(central_rows[:, :2], axis=0,
                                       return_counts=True)
            # Only gateways that saw at least one flow exist in the
            # scalar path's central-detector dict.
            for code in present:
                hits = groups[:, 0] == code
                flagged = groups[hits][counts[hits] > threshold, 1]
                centralized[gw_names[int(code)]] = tuple(
                    int(e) for e in flagged)

        # Distributed side: forward-path observers of flows that have
        # a gateway, kept where the kernel says PROCESS (replication
        # decisions never feed flow counters, as in the scalar path).
        obs_sess, obs_node = sess.flow_observers()
        keep = valid[obs_sess]
        obs_sess, obs_node = obs_sess[keep], obs_node[keep]
        actions, _ = self._decide_batch(
            kernel, sess, obs_sess, obs_node,
            np.full(len(obs_sess), DIR_FWD, dtype=np.int64))
        processed = actions == ACTION_PROCESS
        obs_sess, obs_node = obs_sess[processed], obs_node[processed]

        num_nodes = len(sess.node_order)
        work_array = np.zeros(num_nodes, dtype=np.float64)
        record_hops = 0.0
        distributed: Dict[str, Tuple[int, ...]] = {
            gw_names[int(code)]: () for code in present}
        if len(obs_sess):
            # Work: 10 per distinct (node, gw, flow five-tuple).
            flow_rows = np.unique(np.stack(
                [obs_node, sess_gw[obs_sess],
                 sess.session_key[obs_sess]], axis=1), axis=0)
            work_array += (detector_cls().per_session_cost *
                           np.bincount(flow_rows[:, 0],
                                       minlength=num_nodes))
            # Counting: distinct (node, gw, entity, counterpart) rows.
            rows = np.unique(np.stack(
                [obs_node, sess_gw[obs_sess], entity[obs_sess],
                 counted[obs_sess]], axis=1), axis=0)
            node_gw_entity, counts = np.unique(rows[:, :3], axis=0,
                                               return_counts=True)
            # Report cost: one 16-byte row per (node, gw, entity),
            # shipped hop_count(node, gw) hops.
            report_rows, rows_per = np.unique(node_gw_entity[:, :2],
                                              axis=0,
                                              return_counts=True)
            for (node_id, gw_code), row_count in zip(report_rows,
                                                     rows_per):
                record_hops += float(row_count) * \
                    self.state.routing.hop_count(
                        sess.node_order[int(node_id)],
                        gw_names[int(gw_code)])
            # Aggregation: sum per-node counts per (gw, entity) and
            # apply the real threshold.
            gw_entity, totals = _sum_by_group(
                node_gw_entity[:, 1:], counts)
            for code in np.unique(gw_entity[:, 0]):
                hits = gw_entity[:, 0] == code
                flagged = gw_entity[hits][totals[hits] > threshold, 1]
                distributed[gw_names[int(code)]] = tuple(
                    int(e) for e in flagged)

        report = ScanEmulationReport(
            distributed_alerts=distributed,
            centralized_alerts=centralized,
            record_hops=record_hops,
            byte_hops=SOURCE_COUNT_RECORD_BYTES * record_hops,
            work_units={n: float(work_array[i])
                        for i, n in enumerate(sess.node_order)})
        self._note_fast_run()
        self._publish_run_metrics(kind, report.work_units, flows,
                                  time.perf_counter() - start)
        return report

    def run_scan_epochs(self, epochs: Sequence[Sequence[Session]],
                        threshold: int,
                        class_gateway: Optional[Dict[str, str]] = None,
                        fast: bool = False) -> List[ScanEmulationReport]:
        """Scan detection over successive measurement epochs.

        The Scan module counts destinations contacted "in the previous
        measurement epoch" (Section 6); counters reset between epochs,
        so a slow scanner that spreads its probes across epochs stays
        under the per-epoch threshold while a burst is flagged. Each
        epoch produces its own aggregated reports and alerts.
        """
        return [self.run_scan(batch, threshold, class_gateway,
                              fast=fast)
                for batch in epochs]


def _sum_by_group(keys: np.ndarray, values: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` grouped by distinct rows of ``keys`` (2-D)."""
    groups, inverse = np.unique(keys, axis=0, return_inverse=True)
    totals = np.bincount(inverse.reshape(-1), weights=values,
                         minlength=len(groups))
    return groups, totals
