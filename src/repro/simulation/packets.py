"""Packet and session models for the trace-driven emulation.

Addressing scheme: PoP number ``i`` owns the synthetic /16 prefix
``10.i.0.0/16``; hosts are low bits. This lets the shim classify a
packet to its traffic class from addresses alone, as the real shim does
from prefixes and ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.shim.hashing import FiveTuple

_BASE_IP = 10 << 24  # 10.0.0.0


def pop_prefix_ip(pop_index: int, host: int = 1) -> int:
    """An address inside PoP ``pop_index``'s /16 prefix."""
    if not 0 <= pop_index < 256:
        raise ValueError("pop_index must fit in one octet")
    if not 0 <= host < 2 ** 16:
        raise ValueError("host must fit in 16 bits")
    return _BASE_IP | (pop_index << 16) | host


def pop_index_of_ip(ip: int) -> int:
    """Inverse of :func:`pop_prefix_ip` (the PoP octet)."""
    return (ip >> 16) & 0xFF


@dataclass(frozen=True)
class Packet:
    """One packet of a session.

    ``direction`` is relative to the session's initiator ("fwd" =
    initiator to responder). ``tuple_fwd`` is the session's forward-
    oriented 5-tuple; the bidirectional canonical hash makes the
    orientation immaterial for session hashing.
    """

    tuple_fwd: FiveTuple
    direction: str
    size_bytes: int
    payload: bytes = b""

    def wire_tuple(self) -> FiveTuple:
        """The 5-tuple as it appears on the wire for this direction."""
        if self.direction == "fwd":
            return self.tuple_fwd
        return self.tuple_fwd.reversed()


@dataclass
class Session:
    """One end-to-end session of some traffic class.

    Attributes:
        five_tuple: forward-oriented 5-tuple.
        class_name: owning traffic class.
        fwd_path: nodes observing forward packets.
        rev_path: nodes observing reverse packets (defaults to the
            reversed forward path — symmetric routing).
        packets: the session's packets in order.
    """

    five_tuple: FiveTuple
    class_name: str
    fwd_path: Tuple[str, ...]
    rev_path: Optional[Tuple[str, ...]] = None
    packets: List[Packet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rev_path is None:
            self.rev_path = tuple(reversed(self.fwd_path))

    @property
    def src_ip(self) -> int:
        return self.five_tuple.src_ip

    @property
    def dst_ip(self) -> int:
        return self.five_tuple.dst_ip

    @property
    def total_bytes(self) -> int:
        return sum(p.size_bytes for p in self.packets)

    def observers(self, direction: str) -> Tuple[str, ...]:
        """Nodes that see this session's packets in one direction."""
        return self.fwd_path if direction == "fwd" else self.rev_path

    def add_packet(self, direction: str, size_bytes: int,
                   payload: bytes = b"") -> Packet:
        """Append one packet; returns it."""
        if direction not in ("fwd", "rev"):
            raise ValueError(f"bad direction {direction!r}")
        packet = Packet(self.five_tuple, direction, size_bytes, payload)
        self.packets.append(packet)
        return packet
