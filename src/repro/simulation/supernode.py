"""The stateful "supernode" packet injector (Section 8.1).

The paper's Emulab setup injects traffic through a supernode that is
logically connected to every ingress and "injects packets within each
session in order and at the appropriate ingress". This module
reproduces that scheduling: sessions get arrival times over an
interval, packets get in-session offsets, and the supernode emits a
single global time-ordered stream that preserves intra-session order —
plus time-window slicing that feeds the epoch-based scan pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.simulation.packets import Packet, Session


@dataclass(frozen=True)
class ScheduledPacket:
    """One packet with its global injection time and ingress node."""

    time: float
    ingress: str
    session: Session
    packet: Packet


class Supernode:
    """Schedules sessions into a time-ordered packet stream.

    Args:
        duration: length of the injection interval (seconds).
        mean_packet_gap: mean in-session inter-packet spacing; actual
            gaps are exponential, so sessions interleave realistically.
        seed: RNG seed for arrival times and gaps.
    """

    def __init__(self, duration: float = 60.0,
                 mean_packet_gap: float = 0.05, seed: int = 0) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if mean_packet_gap <= 0:
            raise ValueError("mean_packet_gap must be positive")
        self.duration = duration
        self.mean_packet_gap = mean_packet_gap
        self.seed = seed

    def schedule(self, sessions: Sequence[Session]
                 ) -> List[ScheduledPacket]:
        """Build the global injection schedule.

        Session arrivals are uniform over the interval; each session's
        packets keep their generation order with exponential gaps. The
        returned list is sorted by time (ties broken by arrival order,
        keeping the sort stable and intra-session order intact).
        """
        rng = np.random.default_rng(self.seed)
        scheduled: List[ScheduledPacket] = []
        for session in sessions:
            start = float(rng.uniform(0.0, self.duration))
            clock = start
            for packet in session.packets:
                ingress = session.observers(packet.direction)[0]
                scheduled.append(ScheduledPacket(
                    time=clock, ingress=ingress, session=session,
                    packet=packet))
                clock += float(rng.exponential(self.mean_packet_gap))
        scheduled.sort(key=lambda sp: sp.time)
        return scheduled

    def stream(self, sessions: Sequence[Session]
               ) -> Iterator[ScheduledPacket]:
        """Iterator form of :meth:`schedule`."""
        return iter(self.schedule(sessions))

    def epochs(self, sessions: Sequence[Session],
               epoch_seconds: float) -> List[List[Session]]:
        """Slice sessions into measurement epochs by arrival time.

        A session belongs to the epoch its *first* packet falls in
        (flows are attributed to the epoch they start in, matching the
        per-epoch scan counters of Section 6).
        """
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        first_seen = {}
        for sp in self.schedule(sessions):
            key = id(sp.session)
            if key not in first_seen:
                first_seen[key] = (sp.time, sp.session)
        num_epochs = max(1, int(np.ceil(self.duration / epoch_seconds)))
        batches: List[List[Session]] = [[] for _ in range(num_epochs)]
        for time, session in first_seen.values():
            index = min(num_epochs - 1, int(time // epoch_seconds))
            batches[index].append(session)
        return batches


def validate_in_session_order(scheduled: Sequence[ScheduledPacket]
                              ) -> bool:
    """True when every session's packets appear in generation order —
    the supernode's correctness property ("faithfully emulate the
    ordering of packets within a logical session")."""
    pointer = {}
    for sp in scheduled:
        key = id(sp.session)
        expected = pointer.get(key, 0)
        packets = sp.session.packets
        # Identity comparison: packets may be value-equal duplicates.
        if expected >= len(packets) or packets[expected] is not sp.packet:
            return False
        pointer[key] = expected + 1
    return True
