"""Trace-driven emulation substrate.

The paper's "live" evaluation generates traffic from seed traces with
Scapy, injects it into an Emulab testbed, and measures per-node Snort
CPU instructions. The reproduction's equivalent: a synthetic
session/packet :class:`TraceGenerator`, and an :class:`Emulation` that
replays packets past every on-path shim, forwards replicated packets to
mirrors, feeds the simulated NIDS engines, and collects per-node work
units, detection outcomes, and replication byte counts.
"""

from repro.simulation.batch import PacketBatch, SessionBatch
from repro.simulation.packets import Packet, Session, pop_prefix_ip
from repro.simulation.tracegen import (
    PrefixClassifier,
    TraceGenerator,
)
from repro.simulation.tracestore import (
    ChunkedReplay,
    TraceStore,
    TraceStoreError,
    trace_fingerprint,
)
from repro.simulation.emulation import (
    Emulation,
    EmulationReport,
    ScanEmulationReport,
    StatefulEmulationReport,
)
from repro.simulation.supernode import (
    ScheduledPacket,
    Supernode,
    validate_in_session_order,
)
from repro.simulation.metrics import (
    peak_to_mean,
    predicted_work_shares,
    share_divergence,
    work_shares,
)

__all__ = [
    "ChunkedReplay",
    "Emulation",
    "EmulationReport",
    "Packet",
    "PacketBatch",
    "PrefixClassifier",
    "ScanEmulationReport",
    "SessionBatch",
    "ScheduledPacket",
    "Session",
    "StatefulEmulationReport",
    "Supernode",
    "TraceGenerator",
    "TraceStore",
    "TraceStoreError",
    "trace_fingerprint",
    "peak_to_mean",
    "pop_prefix_ip",
    "predicted_work_shares",
    "share_divergence",
    "validate_in_session_order",
    "work_shares",
]
