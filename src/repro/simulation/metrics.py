"""Metrics bridging emulation measurements and LP predictions.

The Figure 10 methodology hinges on the trace-driven emulation agreeing
with the optimizer's plan. These helpers normalize an emulation
report's per-node work into comparable load shares and quantify the
agreement with an LP result's predicted distribution.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.inputs import NetworkState
from repro.core.results import AssignmentResult
from repro.simulation.emulation import EmulationReport


def work_shares(report: EmulationReport) -> Dict[str, float]:
    """Each node's fraction of the total emulated work."""
    total = sum(report.work_units.values())
    if total <= 0:
        return {node: 0.0 for node in report.work_units}
    return {node: work / total
            for node, work in report.work_units.items()}


def predicted_work_shares(state: NetworkState,
                          result: AssignmentResult,
                          resource: str = "cpu") -> Dict[str, float]:
    """The LP's predicted per-node share of total work.

    Normalized loads are de-normalized by capacity (load x capacity is
    work in footprint units) and expressed as fractions.
    """
    work = {node: result.node_loads[resource][node] *
            state.capacity(resource, node)
            for node in state.nids_nodes}
    total = sum(work.values())
    if total <= 0:
        return {node: 0.0 for node in work}
    return {node: value / total for node, value in work.items()}


def share_divergence(measured: Dict[str, float],
                     predicted: Dict[str, float]) -> float:
    """Total variation distance between the two share distributions.

    0.0 means the emulation realized exactly the planned distribution;
    values under ~0.05 are typical for a few thousand hashed sessions.
    """
    nodes = set(measured) | set(predicted)
    return 0.5 * sum(abs(measured.get(node, 0.0) -
                         predicted.get(node, 0.0)) for node in nodes)


def peak_to_mean(values: Dict[str, float]) -> float:
    """Max/mean ratio of a per-node metric (NaN-safe)."""
    if not values:
        return float("nan")
    mean = sum(values.values()) / len(values)
    if mean == 0 or math.isnan(mean):
        return float("nan")
    return max(values.values()) / mean
