"""Metrics bridging emulation measurements and LP predictions.

The Figure 10 methodology hinges on the trace-driven emulation agreeing
with the optimizer's plan. These helpers normalize an emulation
report's per-node work into comparable load shares and quantify the
agreement with an LP result's predicted distribution.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Union

from repro.core.inputs import NetworkState
from repro.core.results import AssignmentResult
from repro.simulation.emulation import EmulationReport


def _normalized(work: Mapping[str, float]) -> Dict[str, float]:
    """Shares of a non-negative per-node quantity.

    Degenerate totals — empty input, all-zero work, NaN or negative
    sums — uniformly yield an all-zeros dict over the same keys
    instead of raising or propagating NaNs.
    """
    total = sum(work.values())
    if not (total > 0) or math.isinf(total):  # catches NaN too
        return {node: 0.0 for node in work}
    return {node: value / total for node, value in work.items()}


def work_shares(report: Union[EmulationReport, Mapping[str, float]]
                ) -> Dict[str, float]:
    """Each node's fraction of the total emulated work.

    Accepts any emulation report with ``work_units`` or a plain
    per-node work mapping; degenerate inputs give all-zeros.
    """
    work = getattr(report, "work_units", report)
    return _normalized(work)


def predicted_work_shares(state: NetworkState,
                          result: AssignmentResult,
                          resource: str = "cpu") -> Dict[str, float]:
    """The LP's predicted per-node share of total work.

    Normalized loads are de-normalized by capacity (load x capacity is
    work in footprint units) and expressed as fractions. Nodes or
    resources absent from the result/state contribute zero work, and a
    degenerate (zero/NaN) total gives all-zeros — mirroring
    :func:`work_shares`.
    """
    loads = result.node_loads.get(resource, {})
    capacities = state.node_capacity.get(resource, {})
    work = {node: loads.get(node, 0.0) * capacities.get(node, 0.0)
            for node in state.nids_nodes}
    return _normalized(work)


def share_divergence(measured: Dict[str, float],
                     predicted: Dict[str, float]) -> float:
    """Total variation distance between the two share distributions.

    0.0 means the emulation realized exactly the planned distribution;
    values under ~0.05 are typical for a few thousand hashed sessions.
    """
    nodes = set(measured) | set(predicted)
    return 0.5 * sum(abs(measured.get(node, 0.0) -
                         predicted.get(node, 0.0)) for node in nodes)


def share_rms(measured: Dict[str, float],
              predicted: Dict[str, float]) -> float:
    """Root-mean-square error between two share distributions.

    The Figure 10 agreement metric: per-node difference between the
    emulated and LP-predicted work shares, RMS over the union of
    nodes. 0.0 is perfect agreement; missing nodes count as 0 share.
    """
    nodes = set(measured) | set(predicted)
    if not nodes:
        return 0.0
    total = sum((measured.get(node, 0.0) - predicted.get(node, 0.0)) ** 2
                for node in nodes)
    return math.sqrt(total / len(nodes))


def peak_to_mean(values: Dict[str, float]) -> float:
    """Max/mean ratio of a per-node metric (NaN-safe)."""
    if not values:
        return float("nan")
    mean = sum(values.values()) / len(values)
    if mean == 0 or math.isnan(mean):
        return float("nan")
    return max(values.values()) / mean
