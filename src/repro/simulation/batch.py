"""Columnar (struct-of-arrays) trace representation for batch replay.

The scalar emulation walks Python ``Session``/``Packet`` objects one
packet at a time. The vectorized fast path instead operates on two
column stores:

- :class:`SessionBatch` — one row per session: uint32 5-tuple columns
  (forward-oriented, exactly what the scalar path feeds
  ``Shim.handle``), class ids, path ids, and lazily cached per-mode
  hash columns computed with the bit-exact ``*_batch`` hash functions.
- :class:`PacketBatch` — one row per packet: owning session index,
  direction, wire size, and all payloads packed into one contiguous
  byte buffer with an offsets column.

Both also precompute the *observation expansion* — the (packet,
on-path node) pairs the scalar loops enumerate — grouped by path so
the expansion itself is a handful of ``np.repeat``/``np.tile`` calls
rather than a per-packet loop.

Distinct-session accounting keys on the five-tuple *value*
(``np.unique`` over the five columns), matching the scalar engines,
which dedupe on the ``FiveTuple`` they are handed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.shim.config import HashMode
from repro.shim.hashing import field_hash_batch, session_hash_batch
from repro.simulation.packets import Session

DIR_FWD = 0
DIR_REV = 1

_DIR_CODE = {"fwd": DIR_FWD, "rev": DIR_REV}


class SessionBatch:
    """Struct-of-arrays view of a session trace.

    Build with :meth:`from_sessions`; all columns are aligned by
    session row. ``class_id`` is what the *classifier* assigns (the
    column the shim kernel consumes; -1 = unmonitored), while
    ``trace_class_id`` is the session's declared ``class_name`` (the
    column gateway lookup consumes) — the scalar path makes the same
    distinction.
    """

    def __init__(self, proto: np.ndarray, src_ip: np.ndarray,
                 src_port: np.ndarray, dst_ip: np.ndarray,
                 dst_port: np.ndarray, class_id: np.ndarray,
                 trace_class_id: np.ndarray,
                 class_names: Tuple[str, ...],
                 fwd_path_id: np.ndarray, rev_path_id: np.ndarray,
                 paths: List[np.ndarray],
                 node_order: Tuple[str, ...], hash_seed: int = 0,
                 session_key: Optional[np.ndarray] = None,
                 num_keys: Optional[int] = None) -> None:
        self.proto = proto
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.class_id = class_id
        self.trace_class_id = trace_class_id
        self.class_names = class_names
        self.fwd_path_id = fwd_path_id
        self.rev_path_id = rev_path_id
        self.paths = paths
        self.node_order = node_order
        self.hash_seed = hash_seed
        self.num_sessions = len(proto)
        if session_key is None:
            tuples = np.stack([proto.astype(np.int64),
                               src_ip.astype(np.int64),
                               src_port.astype(np.int64),
                               dst_ip.astype(np.int64),
                               dst_port.astype(np.int64)], axis=1)
            _, session_key = np.unique(tuples, axis=0,
                                       return_inverse=True)
            session_key = session_key.reshape(-1)
        # Injected keys (trace-store reopen, chunked sub-batches) may
        # span a larger universe than this batch's rows, so num_keys
        # travels with them — chunked distinct-session accounting
        # needs the *global* key space.
        self.session_key = np.asarray(session_key,
                                      dtype=np.int64).reshape(-1)
        if num_keys is None:
            num_keys = (int(self.session_key.max()) + 1
                        if len(self.session_key) else 0)
        self.num_keys = num_keys
        self._hash_cache: Dict[HashMode, np.ndarray] = {}
        self._flow_obs: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_sessions(cls, sessions: Sequence[Session], classifier,
                      node_order: Sequence[str], hash_seed: int = 0
                      ) -> "SessionBatch":
        """Columnarize ``sessions`` (packets are ignored here).

        Args:
            sessions: the trace.
            classifier: the shims' packet-to-class mapping; applied to
                each forward 5-tuple exactly as the scalar path does.
            node_order: node-name universe; every path node must be in
                it (the scalar path would KeyError on unknown
                observers too).
            hash_seed: network-wide hash seed for the hash columns.
        """
        count = len(sessions)
        node_index = {name: i for i, name in enumerate(node_order)}
        proto = np.zeros(count, dtype=np.uint32)
        src_ip = np.zeros(count, dtype=np.uint32)
        src_port = np.zeros(count, dtype=np.uint32)
        dst_ip = np.zeros(count, dtype=np.uint32)
        dst_port = np.zeros(count, dtype=np.uint32)
        class_id = np.full(count, -1, dtype=np.int32)
        trace_class_id = np.full(count, -1, dtype=np.int32)
        fwd_path_id = np.zeros(count, dtype=np.int32)
        rev_path_id = np.zeros(count, dtype=np.int32)

        names = sorted({s.class_name for s in sessions} |
                       {name for name in
                        (classifier(s.five_tuple) for s in sessions)
                        if name is not None})
        name_index = {name: i for i, name in enumerate(names)}
        paths: List[np.ndarray] = []
        path_index: Dict[Tuple[str, ...], int] = {}

        def path_id(path: Tuple[str, ...]) -> int:
            pid = path_index.get(path)
            if pid is None:
                pid = len(paths)
                path_index[path] = pid
                paths.append(np.array([node_index[n] for n in path],
                                      dtype=np.int64))
            return pid

        for row, session in enumerate(sessions):
            tup = session.five_tuple
            proto[row] = tup.proto
            src_ip[row] = tup.src_ip
            src_port[row] = tup.src_port
            dst_ip[row] = tup.dst_ip
            dst_port[row] = tup.dst_port
            assigned = classifier(tup)
            if assigned is not None:
                class_id[row] = name_index[assigned]
            trace_class_id[row] = name_index[session.class_name]
            fwd_path_id[row] = path_id(tuple(session.fwd_path))
            rev_path_id[row] = path_id(tuple(session.rev_path))

        return cls(proto, src_ip, src_port, dst_ip, dst_port,
                   class_id, trace_class_id, tuple(names),
                   fwd_path_id, rev_path_id, paths,
                   tuple(node_order), hash_seed)

    def hash_column(self, mode: HashMode) -> np.ndarray:
        """Per-session hash values in [0, 1) for one hash mode,
        bit-exact against the scalar functions (cached)."""
        column = self._hash_cache.get(mode)
        if column is None:
            if mode is HashMode.SESSION:
                column = session_hash_batch(
                    self.proto, self.src_ip, self.src_port,
                    self.dst_ip, self.dst_port, seed=self.hash_seed)
            elif mode is HashMode.SOURCE:
                column = field_hash_batch(self.src_ip,
                                          seed=self.hash_seed)
            else:
                column = field_hash_batch(self.dst_ip,
                                          seed=self.hash_seed)
            self._hash_cache[mode] = column
        return column

    def _expand_paths(self, row_ids: np.ndarray, path_ids: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """(row, on-path node) expansion, grouped by path id.

        Returns observation-aligned ``(obs_row, obs_node)`` arrays; the
        ordering is arbitrary (grouped by path), which is fine — every
        consumer reduces with order-independent sums and sets.
        """
        if len(row_ids) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        order = np.argsort(path_ids, kind="stable")
        sorted_paths = path_ids[order]
        unique_paths, firsts = np.unique(sorted_paths,
                                         return_index=True)
        bounds = np.append(firsts, len(row_ids))
        obs_rows: List[np.ndarray] = []
        obs_nodes: List[np.ndarray] = []
        for gi, pid in enumerate(unique_paths):
            members = order[firsts[gi]:bounds[gi + 1]]
            nodes = self.paths[int(pid)]
            if len(nodes) == 0:
                continue
            obs_rows.append(np.repeat(members, len(nodes)))
            obs_nodes.append(np.tile(nodes, len(members)))
        if not obs_rows:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return (np.concatenate(obs_rows), np.concatenate(obs_nodes))

    def flow_observers(self) -> Tuple[np.ndarray, np.ndarray]:
        """(session, forward-path node) expansion — what the scan and
        flood replays enumerate (one shim call per session per
        forward-path node). Cached."""
        if self._flow_obs is None:
            rows = np.arange(self.num_sessions, dtype=np.int64)
            self._flow_obs = self._expand_paths(rows, self.fwd_path_id)
        return self._flow_obs


class PacketBatch:
    """Struct-of-arrays view of a packet trace (plus its sessions).

    ``payload_buffer`` is normally ``bytes``; a trace-store reopen
    supplies a read-only uint8 ``np.memmap`` instead (zero-copy —
    payload bytes are only paged in when a consumer scans them).
    """

    def __init__(self, sessions: SessionBatch,
                 session_of_packet: np.ndarray, direction: np.ndarray,
                 size_bytes: np.ndarray,
                 payload_buffer: Union[bytes, np.ndarray],
                 payload_offsets: np.ndarray) -> None:
        self.sessions = sessions
        self.session_of_packet = session_of_packet
        self.direction = direction
        self.size_bytes = size_bytes
        self.payload_buffer = payload_buffer
        self.payload_offsets = payload_offsets
        self.num_packets = len(session_of_packet)
        self._packet_obs: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_sessions(cls, sessions: Sequence[Session], classifier,
                      node_order: Sequence[str], hash_seed: int = 0
                      ) -> "PacketBatch":
        """Columnarize a trace including per-packet payloads."""
        batch = SessionBatch.from_sessions(sessions, classifier,
                                           node_order, hash_seed)
        session_of_packet: List[int] = []
        direction: List[int] = []
        size_bytes: List[float] = []
        chunks: List[bytes] = []
        offsets: List[int] = [0]
        cursor = 0
        for row, session in enumerate(sessions):
            for packet in session.packets:
                session_of_packet.append(row)
                direction.append(_DIR_CODE[packet.direction])
                size_bytes.append(packet.size_bytes)
                chunks.append(packet.payload)
                cursor += len(packet.payload)
                offsets.append(cursor)
        return cls(batch,
                   np.array(session_of_packet, dtype=np.int64),
                   np.array(direction, dtype=np.uint8),
                   np.array(size_bytes, dtype=np.float64),
                   b"".join(chunks),
                   np.array(offsets, dtype=np.int64))

    @property
    def payload_lengths(self) -> np.ndarray:
        """Per-packet payload size in bytes (int64)."""
        return np.diff(self.payload_offsets)

    def packet_observers(self) -> Tuple[np.ndarray, np.ndarray]:
        """(packet, on-path node) expansion for every packet, using
        each packet's direction's path. Cached."""
        if self._packet_obs is None:
            sess = self.sessions
            path_of_packet = np.where(
                self.direction == DIR_FWD,
                sess.fwd_path_id[self.session_of_packet],
                sess.rev_path_id[self.session_of_packet])
            packets = np.arange(self.num_packets, dtype=np.int64)
            self._packet_obs = sess._expand_paths(
                packets, path_of_packet.astype(np.int64))
        return self._packet_obs

    def payload_match_counts(self, patterns: Sequence[bytes]
                             ) -> np.ndarray:
        """Per-packet count of pattern occurrences, Aho-Corasick
        semantics: every (pattern, end offset) occurrence counts, so
        overlapping and repeated hits all count, exactly like
        ``AhoCorasick.search``.

        Scans the packed buffer with ``bytes.find`` per pattern (a C
        loop), attributing each hit to the packet whose payload region
        contains it and rejecting hits that straddle a packet boundary.
        """
        counts = np.zeros(self.num_packets, dtype=np.int64)
        buffer = self.payload_buffer
        if not isinstance(buffer, bytes):
            buffer = buffer.tobytes()
        offsets = self.payload_offsets
        for pattern in patterns:
            width = len(pattern)
            if width == 0:
                raise ValueError("empty patterns are not allowed")
            pos = buffer.find(pattern)
            while pos != -1:
                packet = int(np.searchsorted(offsets, pos,
                                             side="right")) - 1
                if pos + width <= offsets[packet + 1]:
                    counts[packet] += 1
                pos = buffer.find(pattern, pos + 1)
        return counts
