"""Hash-range compilation (Section 7.1).

The management engine converts the LP's fractional decisions into
non-overlapping hash ranges: for each class it loops over the ``p_{c,j}``
values, mapping each to a hash range and extending the range as it
moves to the next node, then loops similarly over the ``o_{c,j,j'}``.
The order of iteration is irrelevant for correctness (the paper notes
only *some* fixed order is required); we sort keys for determinism.
Because the formulations make the fractions sum to 1 per class, the
union of the ranges covers [0, 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

_EPSILON = 1e-9


@dataclass(frozen=True)
class HashRange:
    """A half-open hash interval [start, end) owned by one action key."""

    key: Hashable
    start: float
    end: float

    @property
    def width(self) -> float:
        return self.end - self.start

    def contains(self, value: float) -> bool:
        """Membership test for a hash value in [0, 1)."""
        return self.start <= value < self.end


def compile_hash_ranges(fractions: Sequence[Tuple[Hashable, float]],
                        require_full_coverage: bool = True
                        ) -> List[HashRange]:
    """Map ordered (key, fraction) pairs to contiguous hash ranges.

    Args:
        fractions: pairs in the order the ranges should be laid out;
            zero-fraction entries produce no range.
        require_full_coverage: when True, the fractions must sum to 1
            (within tolerance) and the final range is snapped to end
            exactly at 1.0 so no hash value is unowned. When False
            (partial coverage, e.g., an infeasible split-traffic class)
            the tail of [0, 1) is simply left unassigned.

    Returns:
        Non-overlapping :class:`HashRange` objects covering [0, total).

    Raises:
        ValueError: on negative fractions, or totals above 1 + tol, or
            (with ``require_full_coverage``) totals below 1 - tol.
    """
    total = 0.0
    for key, fraction in fractions:
        if fraction < -_EPSILON:
            raise ValueError(f"negative fraction for key {key!r}")
        total += max(0.0, fraction)
    if total > 1.0 + 1e-6:
        raise ValueError(f"fractions sum to {total}, above 1")
    if require_full_coverage and total < 1.0 - 1e-6:
        raise ValueError(
            f"fractions sum to {total}, below 1 while full coverage "
            "was required")

    ranges: List[HashRange] = []
    cursor = 0.0
    for key, fraction in fractions:
        fraction = max(0.0, fraction)
        if fraction <= _EPSILON:
            continue
        ranges.append(HashRange(key, cursor, cursor + fraction))
        cursor += fraction
    if require_full_coverage and ranges:
        last = ranges[-1]
        ranges[-1] = HashRange(last.key, last.start, 1.0)
    return ranges


def lookup(ranges: Sequence[HashRange], value: float) -> Hashable:
    """Owner key of ``value``, or ``None`` if it falls in a gap."""
    for rng in ranges:
        if rng.contains(value):
            return rng.key
    return None
