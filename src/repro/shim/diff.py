"""Incremental shim-config diffs: minimum INSTALL/RETIRE deltas.

Between controller epochs most of the hash-range layout is unchanged
— traffic drifts a few percent, the LP re-solve moves a few fractions
— yet the rollout machinery historically re-shipped every node its
*full* table. This module computes the exact rule-level difference
between two compiled :class:`~repro.shim.config.ShimConfig` sets:

- :func:`diff_config` / :func:`diff_configs` — the minimum set of
  rules to INSTALL (in new, not in old) and RETIRE (in old, not in
  new), per node. Rules are compared by value (class, exact range
  bounds, action, target, direction, hash mode), so an unchanged
  fraction whose range compiled to identical floats ships nothing.
- :func:`apply_delta` — replays a delta onto the old config; the
  result is bit-identical (after canonical ordering) to the freshly
  compiled new config, which is the property the diff-equivalence
  tests pin.
- :func:`canonical_config` — the canonical rule ordering (sorted
  per class by range position, then action/target/direction). Within
  one (node, class, direction) bucket compiled ranges are disjoint,
  so re-ordering never changes first-match semantics.

The D-NIDS line of work motivates this: reconfiguration churn is the
operational cost of network-wide balancing, and the vulnerable
mid-rollout window shrinks with the traffic a rollout has to move.
The :class:`~repro.runtime.rollout.RolloutDriver` ``delta`` strategy
ships these deltas with overlap semantics (installs first, retires
only after every node acknowledged), so coverage never drops while
strictly fewer rules cross the control channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.obs import get_registry
from repro.shim.config import ShimConfig, ShimRule


def _rule_sort_key(rule: ShimRule) -> Tuple:
    return (rule.hash_range.start, rule.hash_range.end,
            rule.action.value, rule.target or "", rule.direction,
            rule.hash_mode.value)


def canonical_config(config: ShimConfig) -> ShimConfig:
    """The config with every class's rules in canonical order.

    Compiled rule sets are disjoint within each (class, direction,
    hash-field) bucket, so sorting by range position preserves
    first-match semantics while making configs comparable by ``==``.
    """
    return ShimConfig(
        node=config.node,
        rules={cls: sorted(rules, key=_rule_sort_key)
               for cls, rules in sorted(config.rules.items())
               if rules})


@dataclass(frozen=True)
class ConfigDelta:
    """The rule-level difference between two configs of one node.

    ``installs``/``retires`` are (class_name, rule) pairs in
    canonical order. An empty delta means the node's table is
    already exact — the rollout can skip it entirely.
    """

    node: str
    installs: Tuple[Tuple[str, ShimRule], ...] = field(default=())
    retires: Tuple[Tuple[str, ShimRule], ...] = field(default=())

    @property
    def num_rules(self) -> int:
        """Total rules this delta moves over the channel."""
        return len(self.installs) + len(self.retires)

    @property
    def is_empty(self) -> bool:
        return not self.installs and not self.retires


def diff_config(old: ShimConfig, new: ShimConfig) -> ConfigDelta:
    """Minimum INSTALL/RETIRE rule sets turning ``old`` into ``new``.

    Raises:
        ValueError: when the configs belong to different nodes.
    """
    if old.node != new.node:
        raise ValueError(
            f"cannot diff configs of different nodes "
            f"({old.node!r} vs {new.node!r})")
    installs: List[Tuple[str, ShimRule]] = []
    retires: List[Tuple[str, ShimRule]] = []
    for cls in sorted(set(old.rules) | set(new.rules)):
        old_rules = set(old.rules.get(cls, ()))
        new_rules = set(new.rules.get(cls, ()))
        for rule in sorted(new_rules - old_rules, key=_rule_sort_key):
            installs.append((cls, rule))
        for rule in sorted(old_rules - new_rules, key=_rule_sort_key):
            retires.append((cls, rule))
    return ConfigDelta(node=old.node, installs=tuple(installs),
                       retires=tuple(retires))


def diff_configs(old: Mapping[str, ShimConfig],
                 new: Mapping[str, ShimConfig]
                 ) -> Dict[str, ConfigDelta]:
    """Per-node deltas for a whole network's epoch transition.

    Nodes only in ``new`` diff against an empty table (pure install);
    nodes only in ``old`` get a pure-retire delta. Publishes the
    rollout-churn metrics: ``rollout.delta_rules`` (rules the deltas
    move) and ``rollout.delta_fraction`` (that count relative to
    re-shipping the new tables whole).
    """
    deltas: Dict[str, ConfigDelta] = {}
    for node in sorted(set(old) | set(new)):
        empty = ShimConfig(node=node, rules={})
        deltas[node] = diff_config(old.get(node, empty),
                                   new.get(node, empty))
    metrics = get_registry()
    if metrics.enabled:
        delta_rules = sum(d.num_rules for d in deltas.values())
        full_rules = sum(cfg.num_rules for cfg in new.values())
        metrics.observe("rollout.delta_rules", delta_rules)
        if full_rules > 0:
            metrics.observe("rollout.delta_fraction",
                            delta_rules / full_rules)
    return deltas


def apply_delta(config: ShimConfig, delta: ConfigDelta) -> ShimConfig:
    """Replay ``delta`` onto ``config``; returns the canonical result.

    Retires remove by value (a retire for an absent rule is a no-op,
    so replayed deltas are idempotent); installs add by value without
    duplicating rules already present. ``apply_delta(old,
    diff_config(old, new))`` equals ``canonical_config(new)``.

    Raises:
        ValueError: when the delta addresses a different node.
    """
    if config.node != delta.node:
        raise ValueError(
            f"delta for {delta.node!r} applied to {config.node!r}")
    rules: Dict[str, List[ShimRule]] = {
        cls: list(existing) for cls, existing in config.rules.items()}
    for cls, rule in delta.retires:
        kept = [r for r in rules.get(cls, []) if r != rule]
        if kept:
            rules[cls] = kept
        else:
            rules.pop(cls, None)
    for cls, rule in delta.installs:
        bucket = rules.setdefault(cls, [])
        if rule not in bucket:
            bucket.append(rule)
    return canonical_config(ShimConfig(node=config.node, rules=rules))
