"""Rule-budgeted hash-range lowering (the TCAM model).

:func:`~repro.shim.ranges.compile_hash_ranges` emits one range per
nonzero LP fraction — however many fall out. Real shims install their
ranges into bounded rule tables (switch TCAMs, the runtime agents'
``rule_capacity``), so the compiler must be able to *approximate* the
LP's weight partition with a bounded number of ranges. "Optimal
Weighted Load Balancing in TCAMs" (Sadeh, Rottenstreich, Kaplan)
studies exactly this approximation problem; this module implements the
variant our layout needs:

- keep the ``budget`` largest fractions (deterministic ties: first in
  layout order), drop the rest;
- scale the kept fractions proportionally so they absorb the dropped
  mass — the emitted ranges still tile the same span of hash space,
  so coverage is never sacrificed, only *balance fidelity*;
- quantify the fidelity loss as the L1/Linf deviation of the realized
  range widths from the target fractions (dropped keys deviate by
  their full target weight).

Proportional redistribution makes both error norms monotonically
non-increasing in the budget: with ``D`` the dropped mass, the L1
error is exactly ``2 * D`` (the dropped mass plus the same mass
re-landed on kept keys), and the Linf error is the larger of the
biggest dropped fraction and the overshoot of the biggest kept one —
all shrinking as the budget grows. ``tests/test_budget_properties.py``
pins these properties over random fraction vectors.

An unset budget (``None``) reproduces the unbudgeted compiler
bit-for-bit, so the budgeted mode is a strict superset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.shim.ranges import HashRange, compile_hash_ranges

_EPSILON = 1e-9


@dataclass(frozen=True)
class BudgetedLowering:
    """The outcome of one budgeted range compilation.

    Attributes:
        ranges: the emitted ranges (at most ``budget`` of them; they
            tile the same span the unbudgeted compiler would cover).
        budget: the budget applied (``None`` = unbounded).
        targets: the requested per-key fractions (zero entries kept
            for error accounting).
        realized: the per-key widths actually emitted; dropped keys
            are present with width 0.
        dropped_keys: keys whose fractions were dropped to fit.
    """

    ranges: Tuple[HashRange, ...]
    budget: Optional[int]
    targets: Dict[Hashable, float]
    realized: Dict[Hashable, float]
    dropped_keys: Tuple[Hashable, ...]

    @property
    def num_rules(self) -> int:
        return len(self.ranges)

    @property
    def error_l1(self) -> float:
        """Total absolute deviation of realized widths from targets."""
        return sum(abs(self.realized[key] - target)
                   for key, target in self.targets.items())

    @property
    def error_linf(self) -> float:
        """Worst single-key deviation of realized width from target."""
        return max((abs(self.realized[key] - target)
                    for key, target in self.targets.items()),
                   default=0.0)


def budgeted_hash_ranges(fractions: Sequence[Tuple[Hashable, float]],
                         budget: Optional[int],
                         require_full_coverage: bool = True
                         ) -> BudgetedLowering:
    """Compile ``fractions`` into at most ``budget`` hash ranges.

    Args:
        fractions: ordered (key, fraction) pairs, exactly as
            :func:`~repro.shim.ranges.compile_hash_ranges` takes them.
        budget: maximum number of ranges to emit; ``None`` disables
            the bound (the result is then identical to the unbudgeted
            compiler's).
        require_full_coverage: forwarded to the range compiler — when
            True the fractions must sum to 1 and the emitted ranges
            tile all of [0, 1); when False the covered prefix is
            preserved instead.

    Returns:
        A :class:`BudgetedLowering`; ``.ranges`` always tiles the same
        total span as the unbudgeted layout (coverage is preserved,
        only the per-key weights are approximated).

    Raises:
        ValueError: on a non-positive budget, on negative fractions,
            or when a budget is smaller than 1 range while nonzero
            fractions exist.
    """
    if budget is not None and budget < 1:
        raise ValueError(f"rule budget must be >= 1, got {budget}")

    targets: Dict[Hashable, float] = {}
    for key, fraction in fractions:
        if fraction < -_EPSILON:
            raise ValueError(f"negative fraction for key {key!r}")
        if key in targets:
            raise ValueError(f"duplicate layout key {key!r}")
        targets[key] = max(0.0, fraction)

    nonzero = [(key, fraction) for key, fraction in fractions
               if max(0.0, fraction) > _EPSILON]

    if budget is None or len(nonzero) <= budget:
        ranges = compile_hash_ranges(
            list(fractions),
            require_full_coverage=require_full_coverage)
        realized = {key: 0.0 for key in targets}
        for rng in ranges:
            realized[rng.key] = rng.width
        return BudgetedLowering(ranges=tuple(ranges), budget=budget,
                                targets=targets, realized=realized,
                                dropped_keys=())

    # Keep the `budget` largest fractions; ties resolve to the
    # earliest layout position so the choice is deterministic.
    ordered = sorted(range(len(nonzero)),
                     key=lambda i: (-nonzero[i][1], i))
    kept_positions = sorted(ordered[:budget])
    dropped_positions = sorted(ordered[budget:])
    kept_sum = sum(nonzero[i][1] for i in kept_positions)
    total = sum(fraction for _, fraction in nonzero)
    scale = total / kept_sum

    scaled: List[Tuple[Hashable, float]] = [
        (nonzero[i][0], nonzero[i][1] * scale)
        for i in kept_positions]
    ranges = compile_hash_ranges(
        scaled, require_full_coverage=require_full_coverage)

    realized = {key: 0.0 for key in targets}
    for rng in ranges:
        realized[rng.key] = rng.width
    dropped = tuple(nonzero[i][0] for i in dropped_positions)
    return BudgetedLowering(ranges=tuple(ranges), budget=budget,
                            targets=targets, realized=realized,
                            dropped_keys=dropped)
