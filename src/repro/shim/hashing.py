"""Lightweight bidirectional 5-tuple hashing (Section 7.2).

As a packet arrives, the shim computes a lightweight hash (the paper
cites Bob Jenkins' hash [5]) over the IP 5-tuple. The hash must be
*bidirectional*: both directions of a session must land in the same
hash bucket so the session is consistently pinned or offloaded to one
node. Following [37], the 5-tuple is first put into a canonical form
with the smaller endpoint first.

For aggregation (Section 7.2, last paragraph), the hash is computed
over the split field instead — the source address for a per-source
split, the destination for a per-destination split.

Two implementations share the algorithm: the scalar functions used by
the per-packet :class:`~repro.shim.shim.Shim` (the correctness oracle),
and ``*_batch`` variants that run the identical mixing rounds on whole
``uint32`` numpy columns at once for the vectorized replay engine.
The batch variants are bit-exact against the scalar ones — wrap-around
arithmetic on ``uint32`` arrays is exactly the scalar ``& 0xFFFFFFFF``
fold — and the property suite (`tests/test_batch_hashing.py`) pins
that equivalence.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np


class FiveTuple(NamedTuple):
    """An IP 5-tuple; addresses and ports are plain ints here."""

    proto: int
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The same session seen in the opposite direction."""
        return FiveTuple(self.proto, self.dst_ip, self.dst_port,
                         self.src_ip, self.src_port)


_MASK32 = 0xFFFFFFFF


def _rot(value: int, bits: int) -> int:
    value &= _MASK32
    return ((value << bits) | (value >> (32 - bits))) & _MASK32


def _mix(a: int, b: int, c: int):
    """One mixing round of Bob Jenkins' lookup3."""
    a = (a - c) & _MASK32; a ^= _rot(c, 4);  c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 6);  a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 8);  b = (b + a) & _MASK32
    a = (a - c) & _MASK32; a ^= _rot(c, 16); c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 19); a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 4);  b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> int:
    """Final avalanche of lookup3."""
    c ^= b; c = (c - _rot(b, 14)) & _MASK32
    a ^= c; a = (a - _rot(c, 11)) & _MASK32
    b ^= a; b = (b - _rot(a, 25)) & _MASK32
    c ^= b; c = (c - _rot(b, 16)) & _MASK32
    a ^= c; a = (a - _rot(c, 4)) & _MASK32
    b ^= a; b = (b - _rot(a, 14)) & _MASK32
    c ^= b; c = (c - _rot(b, 24)) & _MASK32
    return c


def bob_hash(*words: int, seed: int = 0) -> int:
    """Bob Jenkins' lookup3-style hash over 32-bit words.

    Args:
        words: arbitrary integers (folded to 32 bits).
        seed: optional seed for independent hash functions.

    Returns:
        A 32-bit hash value.
    """
    a = b = c = (0xDEADBEEF + (len(words) << 2) + seed) & _MASK32
    # Index walk instead of data.pop(0): popping the head shifts the
    # whole list, turning long inputs O(n^2).
    count = len(words)
    i = 0
    while count - i > 3:
        a = (a + (words[i] & _MASK32)) & _MASK32
        b = (b + (words[i + 1] & _MASK32)) & _MASK32
        c = (c + (words[i + 2] & _MASK32)) & _MASK32
        a, b, c = _mix(a, b, c)
        i += 3
    rest = count - i
    if rest > 0:
        a = (a + (words[i] & _MASK32)) & _MASK32
    if rest > 1:
        b = (b + (words[i + 1] & _MASK32)) & _MASK32
    if rest > 2:
        c = (c + (words[i + 2] & _MASK32)) & _MASK32
    return _final(a, b, c)


def canonical_five_tuple(tup: FiveTuple) -> FiveTuple:
    """Canonicalize so both directions hash identically.

    The endpoint with the smaller (ip, port) pair becomes the source,
    per the NIDS-cluster convention [37].
    """
    if (tup.src_ip, tup.src_port) <= (tup.dst_ip, tup.dst_port):
        return tup
    return tup.reversed()


def session_hash(tup: FiveTuple, seed: int = 0) -> float:
    """Bidirectional session hash mapped into [0, 1).

    Both directions of a 5-tuple produce the same value, so hash-range
    membership consistently pins a whole session.
    """
    canon = canonical_five_tuple(tup)
    word = bob_hash(canon.proto, canon.src_ip, canon.src_port,
                    canon.dst_ip, canon.dst_port, seed=seed)
    return word / 2.0 ** 32


def field_hash(value: int, seed: int = 0) -> float:
    """Hash of a single split field (e.g., source IP) into [0, 1).

    Used for aggregation-mode splitting where responsibility is
    per-source (or per-destination), not per-session.
    """
    return bob_hash(value, seed=seed) / 2.0 ** 32


# -- vectorized (columnar) variants --------------------------------------
#
# uint32 numpy arithmetic wraps modulo 2^32, which is exactly the scalar
# code's `& _MASK32` fold, so each helper below is the literal
# transcription of its scalar twin onto whole columns.

def _rot_batch(value: np.ndarray, bits: int) -> np.ndarray:
    return (value << np.uint32(bits)) | (value >> np.uint32(32 - bits))


def _mix_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray):
    """One lookup3 mixing round over uint32 columns."""
    a = a - c; a ^= _rot_batch(c, 4);  c = c + b
    b = b - a; b ^= _rot_batch(a, 6);  a = a + c
    c = c - b; c ^= _rot_batch(b, 8);  b = b + a
    a = a - c; a ^= _rot_batch(c, 16); c = c + b
    b = b - a; b ^= _rot_batch(a, 19); a = a + c
    c = c - b; c ^= _rot_batch(b, 4);  b = b + a
    return a, b, c


def _final_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Final avalanche over uint32 columns."""
    c ^= b; c = c - _rot_batch(b, 14)
    a ^= c; a = a - _rot_batch(c, 11)
    b ^= a; b = b - _rot_batch(a, 25)
    c ^= b; c = c - _rot_batch(b, 16)
    a ^= c; a = a - _rot_batch(c, 4)
    b ^= a; b = b - _rot_batch(a, 14)
    c ^= b; c = c - _rot_batch(b, 24)
    return c


def _as_u32(column: "np.ndarray") -> np.ndarray:
    """Fold an integer column to uint32 (the scalar ``w & _MASK32``)."""
    # This is the fold itself: it must accept whatever integer dtype
    # the caller has before normalizing.  # repro-lint: allow[NUM002]
    arr = np.asarray(column)
    if arr.dtype == np.uint32:
        return arr
    return (arr.astype(np.int64) & _MASK32).astype(np.uint32)


def bob_hash_batch(columns: Sequence["np.ndarray"], seed: int = 0,
                   size: Optional[int] = None) -> np.ndarray:
    """Vectorized :func:`bob_hash`: element ``i`` of the result equals
    ``bob_hash(columns[0][i], ..., columns[k-1][i], seed=seed)``.

    Args:
        columns: one integer array per hash word, all the same length
            (a struct-of-arrays row set).
        seed: optional seed for independent hash functions.
        size: row count, required only when ``columns`` is empty.

    Returns:
        A uint32 array of hash values.
    """
    cols = [_as_u32(c) for c in columns]
    if size is None:
        if not cols:
            raise ValueError("size is required with no columns")
        size = len(cols[0])
    init = np.uint32((0xDEADBEEF + (len(cols) << 2) + seed) & _MASK32)
    a = np.full(size, init, dtype=np.uint32)
    b = a.copy()
    c = a.copy()
    count = len(cols)
    i = 0
    while count - i > 3:
        a = a + cols[i]
        b = b + cols[i + 1]
        c = c + cols[i + 2]
        a, b, c = _mix_batch(a, b, c)
        i += 3
    rest = count - i
    if rest > 0:
        a = a + cols[i]
    if rest > 1:
        b = b + cols[i + 1]
    if rest > 2:
        c = c + cols[i + 2]
    return _final_batch(a, b, c)


def session_hash_batch(proto: "np.ndarray", src_ip: "np.ndarray",
                       src_port: "np.ndarray", dst_ip: "np.ndarray",
                       dst_port: "np.ndarray", seed: int = 0
                       ) -> np.ndarray:
    """Vectorized :func:`session_hash` over 5-tuple columns.

    Canonicalizes every row (smaller endpoint first) and returns
    float64 hash values in [0, 1), bit-identical to the scalar path —
    ``word / 2**32`` is exact for 32-bit words in either
    implementation.
    """
    proto = _as_u32(proto)
    src_ip, src_port = _as_u32(src_ip), _as_u32(src_port)
    dst_ip, dst_port = _as_u32(dst_ip), _as_u32(dst_port)
    swap = (src_ip > dst_ip) | ((src_ip == dst_ip) &
                                (src_port > dst_port))
    canon_src_ip = np.where(swap, dst_ip, src_ip)
    canon_src_port = np.where(swap, dst_port, src_port)
    canon_dst_ip = np.where(swap, src_ip, dst_ip)
    canon_dst_port = np.where(swap, src_port, dst_port)
    words = bob_hash_batch(
        [proto, canon_src_ip, canon_src_port, canon_dst_ip,
         canon_dst_port], seed=seed)
    return words.astype(np.float64) / 2.0 ** 32


def field_hash_batch(values: "np.ndarray", seed: int = 0) -> np.ndarray:
    """Vectorized :func:`field_hash`: float64 hashes in [0, 1)."""
    words = bob_hash_batch([values], seed=seed)
    return words.astype(np.float64) / 2.0 ** 32
