"""Lightweight bidirectional 5-tuple hashing (Section 7.2).

As a packet arrives, the shim computes a lightweight hash (the paper
cites Bob Jenkins' hash [5]) over the IP 5-tuple. The hash must be
*bidirectional*: both directions of a session must land in the same
hash bucket so the session is consistently pinned or offloaded to one
node. Following [37], the 5-tuple is first put into a canonical form
with the smaller endpoint first.

For aggregation (Section 7.2, last paragraph), the hash is computed
over the split field instead — the source address for a per-source
split, the destination for a per-destination split.
"""

from __future__ import annotations

from typing import NamedTuple


class FiveTuple(NamedTuple):
    """An IP 5-tuple; addresses and ports are plain ints here."""

    proto: int
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The same session seen in the opposite direction."""
        return FiveTuple(self.proto, self.dst_ip, self.dst_port,
                         self.src_ip, self.src_port)


_MASK32 = 0xFFFFFFFF


def _rot(value: int, bits: int) -> int:
    value &= _MASK32
    return ((value << bits) | (value >> (32 - bits))) & _MASK32


def _mix(a: int, b: int, c: int):
    """One mixing round of Bob Jenkins' lookup3."""
    a = (a - c) & _MASK32; a ^= _rot(c, 4);  c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 6);  a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 8);  b = (b + a) & _MASK32
    a = (a - c) & _MASK32; a ^= _rot(c, 16); c = (c + b) & _MASK32
    b = (b - a) & _MASK32; b ^= _rot(a, 19); a = (a + c) & _MASK32
    c = (c - b) & _MASK32; c ^= _rot(b, 4);  b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> int:
    """Final avalanche of lookup3."""
    c ^= b; c = (c - _rot(b, 14)) & _MASK32
    a ^= c; a = (a - _rot(c, 11)) & _MASK32
    b ^= a; b = (b - _rot(a, 25)) & _MASK32
    c ^= b; c = (c - _rot(b, 16)) & _MASK32
    a ^= c; a = (a - _rot(c, 4)) & _MASK32
    b ^= a; b = (b - _rot(a, 14)) & _MASK32
    c ^= b; c = (c - _rot(b, 24)) & _MASK32
    return c


def bob_hash(*words: int, seed: int = 0) -> int:
    """Bob Jenkins' lookup3-style hash over 32-bit words.

    Args:
        words: arbitrary integers (folded to 32 bits).
        seed: optional seed for independent hash functions.

    Returns:
        A 32-bit hash value.
    """
    a = b = c = (0xDEADBEEF + (len(words) << 2) + seed) & _MASK32
    data = [w & _MASK32 for w in words]
    while len(data) > 3:
        a = (a + data.pop(0)) & _MASK32
        b = (b + data.pop(0)) & _MASK32
        c = (c + data.pop(0)) & _MASK32
        a, b, c = _mix(a, b, c)
    if data:
        a = (a + data[0]) & _MASK32
    if len(data) > 1:
        b = (b + data[1]) & _MASK32
    if len(data) > 2:
        c = (c + data[2]) & _MASK32
    return _final(a, b, c)


def canonical_five_tuple(tup: FiveTuple) -> FiveTuple:
    """Canonicalize so both directions hash identically.

    The endpoint with the smaller (ip, port) pair becomes the source,
    per the NIDS-cluster convention [37].
    """
    if (tup.src_ip, tup.src_port) <= (tup.dst_ip, tup.dst_port):
        return tup
    return tup.reversed()


def session_hash(tup: FiveTuple, seed: int = 0) -> float:
    """Bidirectional session hash mapped into [0, 1).

    Both directions of a 5-tuple produce the same value, so hash-range
    membership consistently pins a whole session.
    """
    canon = canonical_five_tuple(tup)
    word = bob_hash(canon.proto, canon.src_ip, canon.src_port,
                    canon.dst_ip, canon.dst_port, seed=seed)
    return word / 2.0 ** 32


def field_hash(value: int, seed: int = 0) -> float:
    """Hash of a single split field (e.g., source IP) into [0, 1).

    Used for aggregation-mode splitting where responsibility is
    per-source (or per-destination), not per-session.
    """
    return bob_hash(value, seed=seed) / 2.0 ** 32
