"""The backwards-compatible shim layer (Section 7 of the paper).

The real system interposes a Click-based shim between the network and
an unmodified NIDS process. Per packet it computes a lightweight hash
of the canonicalized IP 5-tuple, looks up the packet's class, and — per
the hash-range configuration compiled from the LP solution — processes
the packet locally, replicates it to a mirror node, or ignores it.
This package reproduces that logic exactly (hash canonicalization for
bidirectional consistency included); the Click data path is replaced by
in-process Python objects driven by the trace simulator.
"""

from repro.shim.batch import (
    BatchShimKernel,
    MirrorLinkIndex,
    UnsupportedShimConfig,
)
from repro.shim.budget import BudgetedLowering, budgeted_hash_ranges
from repro.shim.diff import (
    ConfigDelta,
    apply_delta,
    canonical_config,
    diff_config,
    diff_configs,
)
from repro.shim.hashing import (
    FiveTuple,
    bob_hash,
    bob_hash_batch,
    canonical_five_tuple,
    field_hash,
    field_hash_batch,
    session_hash,
    session_hash_batch,
)
from repro.shim.ranges import HashRange, compile_hash_ranges
from repro.shim.config import (
    ShimAction,
    ShimConfig,
    ShimRule,
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.shim.shim import Shim, ShimDecision

__all__ = [
    "BatchShimKernel",
    "BudgetedLowering",
    "ConfigDelta",
    "FiveTuple",
    "HashRange",
    "MirrorLinkIndex",
    "Shim",
    "ShimAction",
    "ShimConfig",
    "ShimDecision",
    "ShimRule",
    "UnsupportedShimConfig",
    "apply_delta",
    "bob_hash",
    "bob_hash_batch",
    "budgeted_hash_ranges",
    "build_aggregation_configs",
    "build_replication_configs",
    "build_split_configs",
    "canonical_config",
    "canonical_five_tuple",
    "compile_hash_ranges",
    "diff_config",
    "diff_configs",
    "field_hash",
    "field_hash_batch",
    "session_hash",
    "session_hash_batch",
]
