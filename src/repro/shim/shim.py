"""The runtime shim instance that sits in front of each NIDS node.

Mirrors the behavior of the paper's 255-line Click module: per packet,
compute the lightweight bidirectional hash, look up the packet's class,
and act per the installed hash-range rules — deliver to the local NIDS
process, replicate into the tunnel toward a mirror node, or drop
(another node is responsible). Counters track the overhead-relevant
quantities (packets/bytes seen, processed, replicated).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import get_registry
from repro.shim.config import HashMode, ShimAction, ShimConfig, ShimRule
from repro.shim.hashing import FiveTuple, field_hash, session_hash

Classifier = Callable[[FiveTuple], Optional[str]]


@dataclass(frozen=True)
class ShimDecision:
    """Outcome of the shim for one packet."""

    action: Optional[ShimAction]   # None == ignore
    target: Optional[str] = None   # mirror node for REPLICATE
    rule: Optional[ShimRule] = None

    @property
    def is_process(self) -> bool:
        return self.action is ShimAction.PROCESS

    @property
    def is_replicate(self) -> bool:
        return self.action is ShimAction.REPLICATE

    @property
    def is_ignore(self) -> bool:
        return self.action is None


@dataclass
class ShimCounters:
    """Lightweight per-shim statistics."""

    packets_seen: int = 0
    packets_processed: int = 0
    packets_replicated: int = 0
    packets_ignored: int = 0
    bytes_replicated: float = 0.0


class Shim:
    """One shim instance, bound to a node and its installed config.

    Args:
        config: the node's compiled :class:`ShimConfig`.
        classifier: maps a packet's 5-tuple to its traffic class name
            (the paper's port/prefix lookup); returning ``None`` means
            the packet belongs to no monitored class.
        hash_seed: seed for the hash function (all shims in a network
            must share it so their ranges refer to the same hash).
    """

    def __init__(self, config: ShimConfig, classifier: Classifier,
                 hash_seed: int = 0) -> None:
        self.config = config
        self.classifier = classifier
        self.hash_seed = hash_seed
        self.counters = ShimCounters()
        # Observability is bound at construction time: with the default
        # null registry the class-level ``handle`` stays untouched and
        # the per-packet path pays nothing; with a recording registry
        # installed, an instrumented wrapper shadows it per instance.
        self._metrics = get_registry()
        if self._metrics.enabled:
            self.handle = self._handle_instrumented

    @property
    def node(self) -> str:
        return self.config.node

    def _hash_for(self, tup: FiveTuple, mode: HashMode) -> float:
        if mode is HashMode.SESSION:
            return session_hash(tup, seed=self.hash_seed)
        if mode is HashMode.SOURCE:
            return field_hash(tup.src_ip, seed=self.hash_seed)
        return field_hash(tup.dst_ip, seed=self.hash_seed)

    def handle(self, tup: FiveTuple, direction: str = "fwd",
               size_bytes: float = 0.0) -> ShimDecision:
        """Decide what to do with one packet.

        Args:
            tup: the packet's 5-tuple *as seen on the wire* (reverse
                packets arrive with source/destination swapped; the
                canonical hash makes both directions agree). For
                SOURCE/DESTINATION hash modes the caller must present
                the tuple in the session's forward orientation, since
                "the source" is a session-level notion.
            direction: ``"fwd"`` or ``"rev"`` relative to the session.
            size_bytes: packet size, for replication byte accounting.
        """
        self.counters.packets_seen += 1
        class_name = self.classifier(tup)
        if class_name is None:
            self.counters.packets_ignored += 1
            return ShimDecision(action=None)

        rules = self.config.rules_for(class_name)
        for rule in rules:
            value = self._hash_for(tup, rule.hash_mode)
            if rule.matches(value, direction):
                if rule.action is ShimAction.PROCESS:
                    self.counters.packets_processed += 1
                    return ShimDecision(ShimAction.PROCESS, rule=rule)
                self.counters.packets_replicated += 1
                self.counters.bytes_replicated += size_bytes
                return ShimDecision(ShimAction.REPLICATE,
                                    target=rule.target, rule=rule)
        self.counters.packets_ignored += 1
        return ShimDecision(action=None)

    def _handle_instrumented(self, tup: FiveTuple,
                             direction: str = "fwd",
                             size_bytes: float = 0.0) -> ShimDecision:
        """:meth:`handle` plus registry metrics (only installed when a
        recording registry was active at construction).

        Emits per-packet decision counters (``shim.decision.process``
        / ``.replicate`` / ``.ignore``, plus ``shim.packets``) and the
        ``shim.hash_lookup.seconds`` histogram covering the classify +
        hash + range-lookup path.
        """
        metrics = self._metrics
        start = time.perf_counter()
        decision = Shim.handle(self, tup, direction, size_bytes)
        metrics.observe("shim.hash_lookup.seconds",
                        time.perf_counter() - start)
        metrics.inc("shim.packets")
        if decision.action is ShimAction.PROCESS:
            metrics.inc("shim.decision.process")
        elif decision.action is ShimAction.REPLICATE:
            metrics.inc("shim.decision.replicate")
        else:
            metrics.inc("shim.decision.ignore")
        return decision
