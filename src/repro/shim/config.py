"""Per-node shim configurations compiled from LP solutions.

The management engine (Section 7.1) turns each formulation's fractional
decisions into hash-range rules and ships every node the rules that
concern it. Three builders cover the three formulations:

- :func:`build_replication_configs` — Section 4: per-class session-hash
  ranges for local processing and for replication to mirrors.
- :func:`build_split_configs` — Section 5: ranges laid out so that
  forward and reverse directions act consistently (bidirectional
  semantics): the locally-processed prefix of the hash space is shared,
  and each direction's offload ranges extend it, so a session is fully
  covered exactly when its hash is below ``min(cov_fwd, cov_rev)`` —
  realizing Eq (10) operationally.
- :func:`build_aggregation_configs` — Section 6: per-*source* hash
  ranges (the source-level split of Figure 8), plus which node
  aggregates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.inputs import NetworkState
from repro.core.results import (
    AggregationResult,
    ReplicationResult,
    SplitTrafficResult,
)
from repro.obs import get_registry
from repro.shim.budget import BudgetedLowering, budgeted_hash_ranges
from repro.shim.ranges import HashRange


class ShimAction(enum.Enum):
    """What a shim does with a matching packet."""

    PROCESS = "process"
    REPLICATE = "replicate"


class HashMode(enum.Enum):
    """Which field the range membership is computed over."""

    SESSION = "session"   # canonical bidirectional 5-tuple hash
    SOURCE = "source"     # per-source split (aggregation)
    DESTINATION = "destination"


@dataclass(frozen=True)
class ShimRule:
    """One hash-range rule installed at one node.

    Attributes:
        class_name: traffic class the rule applies to.
        hash_range: the owned slice of hash space.
        action: process locally or replicate.
        target: mirror node for replication rules.
        direction: ``"both"``, ``"fwd"`` or ``"rev"`` — split-traffic
            rules act on one direction only.
        hash_mode: field the hash is computed over.
    """

    class_name: str
    hash_range: HashRange
    action: ShimAction
    target: Optional[str] = None
    direction: str = "both"
    hash_mode: HashMode = HashMode.SESSION

    def matches(self, hash_value: float, direction: str) -> bool:
        """True when a packet with this hash/direction hits the rule."""
        if self.direction != "both" and direction != self.direction:
            return False
        return self.hash_range.contains(hash_value)


@dataclass
class ShimConfig:
    """All rules installed at one node, grouped by class."""

    node: str
    rules: Dict[str, List[ShimRule]]

    def rules_for(self, class_name: str) -> List[ShimRule]:
        return self.rules.get(class_name, [])

    def decide(self, class_name: str, hash_value: float,
               direction: str = "fwd") -> Optional[ShimRule]:
        """First rule matching a packet, or None (ignore)."""
        for rule in self.rules_for(class_name):
            if rule.matches(hash_value, direction):
                return rule
        return None

    @property
    def num_rules(self) -> int:
        """Installable rule count — the exact quantity the runtime
        agents charge against ``rule_capacity``.

        Zero-width ranges can never match a packet (``contains`` is
        start-inclusive/end-exclusive), so they occupy no table entry
        and are not counted; builders avoid emitting them. Keeping
        this definition shared between compiler and agents is what
        makes "compiled within budget" imply "installable within
        budget".
        """
        return sum(1 for rules in self.rules.values()
                   for rule in rules
                   if rule.hash_range.end > rule.hash_range.start)


def _empty_configs(state: NetworkState) -> Dict[str, ShimConfig]:
    return {node: ShimConfig(node=node, rules={})
            for node in state.nids_nodes}


def _record_budget_metrics(
        configs: Dict[str, ShimConfig],
        lowerings: Dict[str, BudgetedLowering]) -> None:
    """Publish the budgeted-compile fidelity metrics.

    ``shim.coverage_error`` gets one sample per compiled layout (the
    Linf deviation of realized widths from the LP fractions) and
    ``shim.rules_per_node`` one sample per node (total rules across
    classes) — the two quantities a TCAM-bounded deployment watches.
    """
    metrics = get_registry()
    if not metrics.enabled:
        return
    for lowering in lowerings.values():
        metrics.observe("shim.coverage_error", lowering.error_linf)
    for config in configs.values():
        metrics.observe("shim.rules_per_node", config.num_rules)


def build_replication_configs(
        state: NetworkState, result: ReplicationResult,
        budget: Optional[int] = None,
        lowerings: Optional[Dict[str, BudgetedLowering]] = None
        ) -> Dict[str, ShimConfig]:
    """Compile Section 4 decisions into per-node shim configs.

    For each class, lays out the ``p_{c,j}`` ranges first and the
    ``o_{c,j,j'}`` ranges after them (Section 7.1's two loops), then
    installs each range at the node that must act on it.

    Args:
        budget: optional per-class rule budget — the layout is lowered
            through :func:`~repro.shim.budget.budgeted_hash_ranges`,
            emitting at most ``budget`` ranges per class (so no node
            installs more than ``budget`` rules for any class) whose
            widths approximate the LP fractions. ``None`` reproduces
            the exact, unbounded lowering.
        lowerings: when provided, filled with each class's
            :class:`~repro.shim.budget.BudgetedLowering` so callers
            can inspect the quantified coverage error.
    """
    configs = _empty_configs(state)
    recorded: Dict[str, BudgetedLowering] = {}
    for cls in state.classes:
        entries: List[Tuple[tuple, float]] = []
        process = result.process_fractions.get(cls.name, {})
        for node in sorted(process):
            entries.append((("process", node), process[node]))
        offload = result.offload_fractions.get(cls.name, {})
        for node, mirror in sorted(offload):
            entries.append((("replicate", node, mirror),
                            offload[(node, mirror)]))
        lowering = budgeted_hash_ranges(entries, budget)
        recorded[cls.name] = lowering
        for rng in lowering.ranges:
            if rng.key[0] == "process":
                _, node = rng.key
                rule = ShimRule(cls.name, rng, ShimAction.PROCESS)
            else:
                _, node, mirror = rng.key
                rule = ShimRule(cls.name, rng, ShimAction.REPLICATE,
                                target=mirror)
            configs[node].rules.setdefault(cls.name, []).append(rule)
        # The replication target must also process what it receives:
        # give mirrors PROCESS rules over the ranges replicated to them.
        for rng in lowering.ranges:
            if rng.key[0] == "replicate":
                _, _, mirror = rng.key
                configs[mirror].rules.setdefault(cls.name, []).append(
                    ShimRule(cls.name, rng, ShimAction.PROCESS))
    if lowerings is not None:
        lowerings.update(recorded)
    if budget is not None:
        _record_budget_metrics(configs, recorded)
    return configs


def build_split_configs(
        state: NetworkState, result: SplitTrafficResult,
        budget: Optional[int] = None,
        lowerings: Optional[Dict[str, BudgetedLowering]] = None
        ) -> Dict[str, ShimConfig]:
    """Compile Section 5 decisions with bidirectional semantics.

    Layout per class: ``p`` ranges occupy ``[0, sum_p)`` and apply to
    both directions; each direction's offload ranges extend from
    ``sum_p`` independently. A session hash below
    ``min(cov_fwd, cov_rev)`` therefore has both its directions
    analyzed at a single location (a common node or the datacenter).

    Args:
        budget: optional per-class-per-direction rule budget. The
            shared local prefix is lowered within ``budget`` ranges;
            each direction's offload tail then gets whatever is left
            of the budget after the shared rules (a direction's
            rule table is shared + its own offloads). A fully
            consumed budget drops that direction's offloads entirely
            — split coverage is partial by design, so this trades
            coverage, not correctness.
        lowerings: filled per compiled segment — key ``cls`` for the
            shared prefix, ``cls:fwd`` / ``cls:rev`` for the
            direction tails.
    """
    dc = state.dc_node
    configs = _empty_configs(state)
    recorded: Dict[str, BudgetedLowering] = {}
    for cls in state.classes:
        process = result.process_fractions.get(cls.name, {})
        shared: List[Tuple[tuple, float]] = []
        for node in sorted(process):
            shared.append((("process", node), process[node]))
        shared_lowering = budgeted_hash_ranges(
            shared, budget, require_full_coverage=False)
        shared_ranges = shared_lowering.ranges
        recorded[cls.name] = shared_lowering
        local_total = sum(rng.width for rng in shared_ranges)

        for rng in shared_ranges:
            _, node = rng.key
            configs[node].rules.setdefault(cls.name, []).append(
                ShimRule(cls.name, rng, ShimAction.PROCESS,
                         direction="both"))

        tail_budget = (None if budget is None
                       else budget - len(shared_ranges))
        for direction, offloads in (("fwd", result.fwd_offloads),
                                    ("rev", result.rev_offloads)):
            fractions = offloads.get(cls.name, {})
            entries = [(("replicate", node),
                        max(0.0, min(fractions[node],
                                     1.0 - local_total)))
                       for node in sorted(fractions)]
            if tail_budget is not None and tail_budget < 1:
                continue  # shared prefix consumed the whole budget
            tail = budgeted_hash_ranges(
                entries, tail_budget, require_full_coverage=False)
            recorded[f"{cls.name}:{direction}"] = tail
            for offset_rng in tail.ranges:
                _, node = offset_rng.key
                rng = HashRange(offset_rng.key,
                                local_total + offset_rng.start,
                                min(1.0,
                                    local_total + offset_rng.end))
                if rng.end <= rng.start:
                    continue
                configs[node].rules.setdefault(cls.name, []).append(
                    ShimRule(cls.name, rng, ShimAction.REPLICATE,
                             target=dc, direction=direction))
                if dc is not None:
                    configs[dc].rules.setdefault(cls.name, []).append(
                        ShimRule(cls.name, rng, ShimAction.PROCESS,
                                 direction=direction))
    if lowerings is not None:
        lowerings.update(recorded)
    if budget is not None:
        _record_budget_metrics(configs, recorded)
    return configs


def build_aggregation_configs(
        state: NetworkState, result: AggregationResult,
        hash_mode: HashMode = HashMode.SOURCE,
        budget: Optional[int] = None,
        lowerings: Optional[Dict[str, BudgetedLowering]] = None
        ) -> Dict[str, ShimConfig]:
    """Compile Section 6 decisions: per-source (or per-destination)
    counting ranges for each on-path node.

    ``budget``/``lowerings`` behave as in
    :func:`build_replication_configs` (at most ``budget`` counting
    ranges per class, realized widths approximating the fractions).
    """
    configs = _empty_configs(state)
    recorded: Dict[str, BudgetedLowering] = {}
    for cls in state.classes:
        process = result.process_fractions.get(cls.name, {})
        entries = [(("process", node), process[node])
                   for node in sorted(process)]
        lowering = budgeted_hash_ranges(entries, budget)
        recorded[cls.name] = lowering
        for rng in lowering.ranges:
            _, node = rng.key
            configs[node].rules.setdefault(cls.name, []).append(
                ShimRule(cls.name, rng, ShimAction.PROCESS,
                         hash_mode=hash_mode))
    if lowerings is not None:
        lowerings.update(recorded)
    if budget is not None:
        _record_budget_metrics(configs, recorded)
    return configs
