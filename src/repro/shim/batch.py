"""The compiled batch decision kernel (vectorized shim fast path).

A :class:`~repro.shim.shim.Shim` decides one packet at a time: classify,
hash, walk the class's rule list. This module lowers a whole network's
:class:`~repro.shim.config.ShimConfig` set into flat numpy tables —
per (node, class, direction) sorted range-boundary arrays with parallel
action/target columns — and resolves process/replicate/ignore for an
entire observation batch with ``np.searchsorted``.

The lowering is only valid when rule semantics reduce to range
membership: within one (node, class, direction) bucket every rule must
use the same hash field and the ranges must be non-overlapping, so
"first match wins" equals "the unique owning range wins". Every config
the builders in :mod:`repro.shim.config` emit satisfies this; anything
else (e.g. the union rule-sets a rollout transition installs) raises
:class:`UnsupportedShimConfig` and the caller falls back to the scalar
shim, which stays the correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.shim.config import HashMode, ShimAction, ShimConfig

# Action codes in the kernel's output column.
ACTION_IGNORE = 0
ACTION_PROCESS = 1
ACTION_REPLICATE = 2

_DIRECTIONS = ((0, "fwd"), (1, "rev"))


class UnsupportedShimConfig(ValueError):
    """The config cannot be lowered to disjoint range tables."""


@dataclass
class _RuleTable:
    """Sorted, disjoint ranges for one (node, class, direction)."""

    mode: HashMode
    starts: np.ndarray   # float64, ascending
    ends: np.ndarray     # float64, parallel to starts
    actions: np.ndarray  # int8 (ACTION_PROCESS / ACTION_REPLICATE)
    targets: np.ndarray  # int32 mirror-node index, -1 for PROCESS


class BatchShimKernel:
    """All shim configs of one network, compiled for batch decisions.

    Args:
        configs: per-node shim configurations (the same dict the
            scalar :class:`~repro.shim.shim.Shim` instances consume).
        class_names: traffic-class names in index order; class ids in
            the observation batch refer to this list.
        node_order: node names in index order (observer and mirror
            indices refer to this list).
        hash_seed: the network-wide hash seed the ranges refer to.

    Raises:
        UnsupportedShimConfig: when any rule bucket mixes hash fields
            or contains overlapping ranges (order-dependent matching).
    """

    def __init__(self, configs: Dict[str, ShimConfig],
                 class_names: Sequence[str],
                 node_order: Sequence[str], hash_seed: int = 0) -> None:
        self.hash_seed = hash_seed
        self.node_order = tuple(node_order)
        self.class_names = tuple(class_names)
        self._node_index = {n: i for i, n in enumerate(self.node_order)}
        self._class_index = {c: i for i, c in enumerate(self.class_names)}
        self._num_classes = len(self.class_names)
        self._tables: Dict[int, _RuleTable] = {}
        self.modes_used: Set[HashMode] = set()
        for node, config in configs.items():
            if node not in self._node_index:
                continue
            self._compile_node(self._node_index[node], config)

    def _group_key(self, node_id: int, class_id: int,
                   dir_id: int) -> int:
        return (node_id * self._num_classes + class_id) * 2 + dir_id

    def _compile_node(self, node_id: int, config: ShimConfig) -> None:
        for class_name, rules in config.rules.items():
            class_id = self._class_index.get(class_name)
            if class_id is None:
                continue  # no packet in the batch can carry this class
            for dir_id, dir_name in _DIRECTIONS:
                entries: List[Tuple[float, float, int, int]] = []
                modes = set()
                for rule in rules:
                    if rule.direction not in ("both", dir_name):
                        continue
                    rng = rule.hash_range
                    if rng.end <= rng.start:
                        continue  # zero-width: contains() never True
                    modes.add(rule.hash_mode)
                    if rule.action is ShimAction.PROCESS:
                        action, target = ACTION_PROCESS, -1
                    else:
                        action = ACTION_REPLICATE
                        target = self._node_index[rule.target]
                    entries.append((rng.start, rng.end, action, target))
                if not entries:
                    continue
                if len(modes) > 1:
                    raise UnsupportedShimConfig(
                        f"node {config.node!r} class {class_name!r} "
                        f"mixes hash modes {sorted(m.value for m in modes)}")
                entries.sort(key=lambda e: (e[0], e[1]))
                starts = np.array([e[0] for e in entries],
                                  dtype=np.float64)
                ends = np.array([e[1] for e in entries],
                                dtype=np.float64)
                if (starts[1:] < ends[:-1]).any():
                    raise UnsupportedShimConfig(
                        f"node {config.node!r} class {class_name!r} "
                        f"has overlapping hash ranges (order-dependent "
                        f"matching)")
                mode = modes.pop()
                self.modes_used.add(mode)
                self._tables[self._group_key(node_id, class_id, dir_id)] = \
                    _RuleTable(mode=mode, starts=starts, ends=ends,
                               actions=np.array([e[2] for e in entries],
                                                dtype=np.int8),
                               targets=np.array([e[3] for e in entries],
                                                dtype=np.int32))

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def max_table_rules(self) -> int:
        """Largest compiled (node, class, direction) range table —
        the per-table occupancy a TCAM rule budget bounds. Budgeted
        configs (``build_*_configs(budget=B)``) always lower to
        tables of at most ``B`` rows."""
        return max((len(table.starts)
                    for table in self._tables.values()), default=0)

    def decide(self, node_ids: np.ndarray, class_ids: np.ndarray,
               directions: np.ndarray,
               hash_columns: Dict[HashMode, np.ndarray]
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve a whole observation batch.

        Args:
            node_ids: observer-node index per observation.
            class_ids: traffic-class index per observation (-1 means
                unclassified — always ignored, like the scalar shim).
            directions: 0 (fwd) / 1 (rev) per observation.
            hash_columns: per hash mode in :attr:`modes_used`, the
                observation-aligned hash values in [0, 1).

        Returns:
            ``(actions, targets)`` — int8 action codes and int32 mirror
            node indices (-1 unless replicating), observation-aligned.

        The observations are grouped by (node, class, direction) with a
        stable argsort; each group present in the batch is resolved in
        one ``searchsorted`` against its compiled table, using the
        table's *original* float boundaries so the comparison semantics
        (``start <= h < end``) are exactly the scalar
        ``HashRange.contains``.
        """
        count = len(node_ids)
        actions = np.zeros(count, dtype=np.int8)
        targets = np.full(count, -1, dtype=np.int32)
        if count == 0:
            return actions, targets
        node_ids = np.asarray(node_ids, dtype=np.int64)
        class_ids = np.asarray(class_ids, dtype=np.int64)
        directions = np.asarray(directions, dtype=np.int64)
        keys = np.where(
            class_ids >= 0,
            (node_ids * self._num_classes + class_ids) * 2 + directions,
            -1)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        group_keys, firsts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(firsts, count)
        for gi, key in enumerate(group_keys):
            if key < 0:
                continue
            table = self._tables.get(int(key))
            if table is None:
                continue
            members = order[firsts[gi]:bounds[gi + 1]]
            values = hash_columns[table.mode][members]
            pos = np.searchsorted(table.starts, values,
                                  side="right") - 1
            inside = pos >= 0
            pos_clipped = np.where(inside, pos, 0)
            inside &= values < table.ends[pos_clipped]
            hits = members[inside]
            actions[hits] = table.actions[pos_clipped[inside]]
            targets[hits] = table.targets[pos_clipped[inside]]
        return actions, targets


def delivery_nodes(actions: np.ndarray, targets: np.ndarray,
                   node_ids: np.ndarray) -> np.ndarray:
    """Node index each observation's packet is *delivered* to — the
    observer itself for PROCESS, the mirror for REPLICATE, -1 for
    ignore."""
    return np.where(
        actions == ACTION_PROCESS, node_ids,
        np.where(actions == ACTION_REPLICATE, targets, -1)
    ).astype(np.int64)


def accumulate_per_node(node_ids: np.ndarray, weights: np.ndarray,
                        num_nodes: int) -> np.ndarray:
    """Sum ``weights`` per node index with ``np.bincount``, skipping
    -1 entries (non-deliveries)."""
    mask = node_ids >= 0
    return np.bincount(node_ids[mask],
                       weights=np.asarray(weights, dtype=np.float64)[mask],
                       minlength=num_nodes)


class MirrorLinkIndex:
    """Precomputed node→mirror path-link indices for byte accounting.

    Replicated packets charge their bytes to every link on the
    node-to-mirror route. This index resolves each (node, mirror) pair
    to link ids once, then accumulates bytes per pair with
    ``np.bincount`` and fans the totals out onto the links.

    Args:
        routing: anything with ``path_links(src, dst) -> [Link]``.
        node_order: node names in kernel index order.
    """

    def __init__(self, routing, node_order: Sequence[str]) -> None:
        self._routing = routing
        self._node_order = tuple(node_order)
        self._paths: Dict[int, List] = {}

    def _pair_links(self, pair: int) -> List:
        links = self._paths.get(pair)
        if links is None:
            count = len(self._node_order)
            src = self._node_order[pair // count]
            dst = self._node_order[pair % count]
            links = list(self._routing.path_links(src, dst))
            self._paths[pair] = links
        return links

    def link_bytes(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                   sizes: np.ndarray) -> Dict:
        """Per-link replicated bytes for a batch of replications."""
        totals: Dict = {}
        if len(src_ids) == 0:
            return totals
        count = len(self._node_order)
        pairs = (np.asarray(src_ids, dtype=np.int64) * count +
                 np.asarray(dst_ids, dtype=np.int64))
        unique_pairs, inverse = np.unique(pairs, return_inverse=True)
        per_pair = np.bincount(inverse,
                               weights=np.asarray(sizes, dtype=np.float64))
        for pair, volume in zip(unique_pairs, per_pair):
            for link in self._pair_links(int(pair)):
                totals[link] = totals.get(link, 0.0) + float(volume)
        return totals
