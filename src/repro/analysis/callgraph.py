"""Project-wide symbol table and call graph (AST-only, best-effort).

The per-file rules in :mod:`repro.analysis.rules` can see one module
at a time; the concurrency pack needs to reason about the *runtime as
a whole* — which callables execute as event-loop actions, and what
those actions can reach. This module supplies the substrate:

- :class:`ModuleSummary` — one module's symbol table: its dotted
  name, every callable defined in it (functions, methods, nested
  functions), and its module-level bindings.
- :class:`CallGraph` — callables as nodes, resolved call sites as
  edges, plus the set of *handler roots*: callables passed as the
  action argument to ``schedule_at``/``schedule_in`` (named
  functions, bound methods, lambdas, or ``functools.partial``
  wrappers). :meth:`CallGraph.handler_reachable` closes the roots
  over the edges — everything in that set can run in event-dispatch
  context, which is the scope the RACE rules police.

Resolution is deliberately conservative (an under-approximation):

- bare names resolve to nested functions, then module-level
  callables, then imports (via :class:`ImportMap`);
- ``self.method()`` resolves within the enclosing class;
- ``obj.method()`` on an arbitrary object resolves only when exactly
  one class in the scanned project defines that method name —
  ambiguous names produce no edge rather than false ones.

Unresolvable calls (callbacks received as parameters, dynamic
dispatch) simply drop off the graph; the dynamic half of the
contract — ``repro racecheck`` — covers what static reachability
cannot see.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: methods whose callable argument becomes an event-loop action
SCHEDULE_METHODS = frozenset({"schedule_at", "schedule_in"})

#: positional slot of the action argument in the schedule methods
#: (``schedule_at(instant, action)`` / ``schedule_in(delay, action)``)
_ACTION_ARG_INDEX = 1

#: method calls that mutate their receiver in place
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "update",
    "setdefault", "pop", "popleft", "popitem", "clear", "remove",
    "discard", "sort", "reverse",
})


def module_name_from_path(posix_path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/runtime/rollout.py`` -> ``repro.runtime.rollout``;
    package ``__init__`` files collapse onto the package name. Paths
    outside a ``src/`` layout (fixtures, tests) just use their own
    directory structure, which keeps them distinct per directory.
    """
    path = posix_path
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[:-len(".py")]
    parts = [part for part in path.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclasses.dataclass
class CallableInfo:
    """One function, method, nested function, or scheduled lambda."""

    qualname: str
    module: str
    file: str
    lineno: int
    class_name: Optional[str] = None

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclasses.dataclass
class ScheduleSite:
    """One ``schedule_at``/``schedule_in`` call site."""

    caller: str                 # qualname of the enclosing callable
    method: str                 # schedule_at | schedule_in
    module: str
    file: str
    lineno: int
    time_expr: Optional[str]    # normalized timestamp expression
    action_qualname: Optional[str]  # resolved action, when resolvable


@dataclasses.dataclass
class WriteSite:
    """One write to module-scope mutable state from inside a
    callable: a ``global``-declared rebind, a store through a
    module-level binding (``REGISTRY[k] = v``, ``Cls.attr = v``), or
    a mutating method call on one (``CACHE.append(x)``)."""

    caller: str      # qualname of the writing callable
    module: str
    target: str      # the module-level name being written
    file: str
    lineno: int
    kind: str        # "rebind" | "store" | "mutate"
    allowed: bool = False   # pragma-suppressed at the write line


@dataclasses.dataclass
class _CallRef:
    """An unresolved call edge recorded during the walk."""

    caller: str
    kind: str      # "qual" (absolute dotted path) | "method" (bare)
    target: str


class ModuleSummary:
    """Symbol table for one parsed module."""

    def __init__(self, module: str, file: str,
                 tree: ast.Module) -> None:
        from repro.analysis.rules.common import ImportMap

        self.module = module
        self.file = file
        self.tree = tree
        self.imports = ImportMap.from_tree(tree)
        #: local dotted name ("ConfigChannel.send") -> CallableInfo
        self.callables: Dict[str, CallableInfo] = {}
        #: names bound at module top level (assignments + defs)
        self.module_globals: Set[str] = set()
        #: local class name -> set of method names
        self.class_methods: Dict[str, Set[str]] = {}
        self._collect_top_level()

    def _collect_top_level(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign,
                                 ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    for name in _target_names(target):
                        self.module_globals.add(name)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.module_globals.add(node.name)


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def normalize_expr(node: ast.expr) -> str:
    """Whitespace-normalized source form of an expression, used to
    detect textually-identical timestamp expressions across modules."""
    return " ".join(ast.unparse(node).split())


class _ModuleWalker(ast.NodeVisitor):
    """Collects callables, call refs, and schedule sites for one
    module, tracking the enclosing callable/class as it descends."""

    def __init__(self, graph: "CallGraph",
                 summary: ModuleSummary) -> None:
        self.graph = graph
        self.summary = summary
        self._scope: List[str] = []        # local dotted name parts
        self._class: List[str] = []        # enclosing class names
        self._global_decls: List[Set[str]] = []  # per-function frames

    # -- scope bookkeeping -------------------------------------------------

    @property
    def _local_name(self) -> str:
        return ".".join(self._scope)

    @property
    def _qualname(self) -> str:
        if self._scope:
            return f"{self.summary.module}.{self._local_name}"
        return self.summary.module

    def _register(self, name: str, lineno: int) -> CallableInfo:
        local = ".".join([*self._scope, name])
        info = CallableInfo(
            qualname=f"{self.summary.module}.{local}",
            module=self.summary.module,
            file=self.summary.file,
            lineno=lineno,
            class_name=self._class[-1] if self._class else None)
        self.summary.callables[local] = info
        self.graph.callables[info.qualname] = info
        return info

    # -- definitions -------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.summary.class_methods.setdefault(node.name, set())
        self._scope.append(node.name)
        self._class.append(node.name)
        self.generic_visit(node)
        self._class.pop()
        self._scope.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        info = self._register(name, node.lineno)
        if self._class and info.class_name == self._class[-1]:
            methods = self.summary.class_methods.setdefault(
                self._class[-1], set())
            methods.add(name)
            self.graph.method_index.setdefault(name, set()).add(
                info.qualname)
        self._scope.append(name)
        self._global_decls.append(set())
        self.generic_visit(node)
        self._global_decls.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    # -- module-state writes -----------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        if self._global_decls:
            self._global_decls[-1].update(node.names)
            self.summary.module_globals.update(node.names)

    def _record_write(self, target: str, lineno: int,
                      kind: str) -> None:
        self.graph.write_sites.append(WriteSite(
            caller=self._qualname, module=self.summary.module,
            target=target, file=self.summary.file, lineno=lineno,
            kind=kind))

    def _check_store_target(self, target: ast.expr) -> None:
        if not self._global_decls:
            return  # module/class level: import-time init, not a race
        if isinstance(target, ast.Name):
            if target.id in self._global_decls[-1]:
                self._record_write(target.id, target.lineno, "rebind")
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if (root is not None and root != "self"
                    and root in self.summary.module_globals):
                self._record_write(root, target.lineno, "store")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    # -- call sites --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._qualname
        self._record_call_edge(caller, node.func)
        method = _attr_or_name(node.func)
        if method in SCHEDULE_METHODS:
            self._record_schedule(caller, method, node)
        if (self._global_decls
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS):
            root = _root_name(node.func.value)
            if (root is not None and root != "self"
                    and root in self.summary.module_globals):
                self._record_write(root, node.lineno, "mutate")
        self.generic_visit(node)

    def _record_call_edge(self, caller: str,
                          func: ast.expr) -> None:
        target = self._resolve_callable_expr(caller, func)
        if target is not None:
            kind, name = target
            self.graph.call_refs.append(
                _CallRef(caller=caller, kind=kind, target=name))

    def _resolve_callable_expr(self, caller: str, func: ast.expr
                               ) -> Optional[Tuple[str, str]]:
        """Classify a callable expression into a resolvable ref.

        Returns ``("qual", dotted)`` for a path checkable against the
        graph, ``("method", name)`` for an attribute call needing the
        unique-method index, or None for unresolvable expressions.
        """
        summary = self.summary
        if isinstance(func, ast.Name):
            # nearest enclosing scope first, then module level
            parts = list(self._scope)
            while True:
                local = ".".join([*parts, func.id])
                if local in summary.callables:
                    return ("qual", f"{summary.module}.{local}")
                if not parts:
                    break
                parts.pop()
            qualified = summary.imports.qualify(func)
            if qualified is not None and "." in qualified:
                return ("qual", qualified)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and self._class:
                return ("qual", f"{summary.module}."
                                f"{self._class[-1]}.{func.attr}")
            qualified = summary.imports.qualify(func)
            if qualified is not None:
                head = qualified.split(".", 1)[0]
                if head not in ("self",) and (
                        head in summary.imports.aliases
                        or head in summary.module_globals):
                    return ("qual", qualified)
            return ("method", func.attr)
        return None

    # -- schedule sites ----------------------------------------------------

    def _record_schedule(self, caller: str, method: str,
                         node: ast.Call) -> None:
        time_expr = None
        if node.args:
            time_expr = normalize_expr(node.args[0])
        action = self._action_expr(node)
        action_qualname = None
        if action is not None:
            action_qualname = self._resolve_action(caller, action)
        self.graph.schedule_sites.append(ScheduleSite(
            caller=caller, method=method,
            module=self.summary.module, file=self.summary.file,
            lineno=node.lineno, time_expr=time_expr,
            action_qualname=action_qualname))
        if action_qualname is not None:
            self.graph.handler_roots.add(action_qualname)

    @staticmethod
    def _action_expr(node: ast.Call) -> Optional[ast.expr]:
        if len(node.args) > _ACTION_ARG_INDEX:
            return node.args[_ACTION_ARG_INDEX]
        for keyword in node.keywords:
            if keyword.arg == "action":
                return keyword.value
        return None

    def _resolve_action(self, caller: str,
                        action: ast.expr) -> Optional[str]:
        if isinstance(action, ast.Lambda):
            qualname = f"{caller}.<lambda@{action.lineno}>"
            info = CallableInfo(
                qualname=qualname, module=self.summary.module,
                file=self.summary.file, lineno=action.lineno,
                class_name=self._class[-1] if self._class else None)
            self.graph.callables[qualname] = info
            for sub in ast.walk(action.body):
                if isinstance(sub, ast.Call):
                    self._record_call_edge(qualname, sub.func)
            return qualname
        if isinstance(action, ast.Call):
            # functools.partial(f, ...) schedules f
            head = _attr_or_name(action.func)
            if head == "partial" and action.args:
                return self._resolve_action(caller, action.args[0])
            return None
        resolved = self._resolve_callable_expr(caller, action)
        if resolved is None:
            return None
        kind, name = resolved
        if kind == "qual":
            return name
        # bare-method action: defer to the unique-method index
        self.graph.pending_handler_methods.add(name)
        return None


def _attr_or_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base variable of an attribute/subscript chain
    (``REGISTRY["a"].total`` -> ``REGISTRY``)."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class CallGraph:
    """The whole-project callable graph, built module by module.

    Feed every file through :meth:`add_module`, then call
    :meth:`finalize` once; after that :attr:`edges`,
    :attr:`handler_roots` and :meth:`handler_reachable` are valid.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.callables: Dict[str, CallableInfo] = {}
        self.call_refs: List[_CallRef] = []
        self.schedule_sites: List[ScheduleSite] = []
        self.write_sites: List[WriteSite] = []
        self.handler_roots: Set[str] = set()
        self.pending_handler_methods: Set[str] = set()
        self.method_index: Dict[str, Set[str]] = {}
        self.edges: Dict[str, Set[str]] = {}
        self._finalized = False

    def add_module(self, display_path: str,
                   tree: ast.Module) -> ModuleSummary:
        posix = display_path.replace("\\", "/")
        module = module_name_from_path(posix)
        summary = ModuleSummary(module, display_path, tree)
        self.modules[module] = summary
        _ModuleWalker(self, summary).visit(tree)
        return summary

    def finalize(self) -> None:
        """Resolve recorded refs into edges (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for name in self.pending_handler_methods:
            candidates = self.method_index.get(name, set())
            if len(candidates) == 1:
                self.handler_roots.add(next(iter(candidates)))
        for ref in self.call_refs:
            target: Optional[str] = None
            if ref.kind == "qual":
                target = self._existing(ref.target)
            elif ref.kind == "method":
                candidates = self.method_index.get(ref.target, set())
                if len(candidates) == 1:
                    target = next(iter(candidates))
            if target is not None:
                self.edges.setdefault(ref.caller, set()).add(target)

    def _existing(self, qualname: str) -> Optional[str]:
        """Map a dotted path onto a known callable, following a class
        reference to its ``__init__`` when one exists."""
        if qualname in self.callables:
            return qualname
        init = f"{qualname}.__init__"
        if init in self.callables:
            return init
        return None

    def handler_reachable(self) -> Set[str]:
        """Every callable reachable from a scheduled action (the
        roots themselves included). Requires :meth:`finalize`."""
        self.finalize()
        seen: Set[str] = set()
        frontier = list(self.handler_roots)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen
