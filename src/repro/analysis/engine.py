"""The static-analysis engine: file walker, rule registry, findings.

The engine parses every Python file once, hands the shared
:class:`FileContext` (source, AST, per-line pragma table) to each
registered rule, and collects :class:`Finding` records. Rules come in
two flavors:

- :class:`Rule` — per-file AST checks (``check(ctx)``).
- :class:`ProjectRule` — cross-file checks that accumulate state while
  files are scanned and emit findings in ``finalize()`` (e.g. the
  metrics rule, which compares every call site against the documented
  metric table).

Findings can be suppressed three ways, from narrowest to broadest:

- an inline pragma on the offending line —
  ``# repro-lint: allow[RULE-ID]`` (or ``allow[*]``);
- a baseline file (JSON, see :mod:`repro.analysis.baseline`) listing
  known findings to ignore, so the gate can be adopted incrementally;
- not registering the rule (``rules=`` filter on :class:`LintEngine`).

`repro lint` (the CLI front-end) exits nonzero when any unsuppressed
finding remains, which is what the CI job gates on.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import get_registry

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([A-Za-z0-9*,\- ]+)\]")


class Severity(enum.Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule fired at a location.

    Attributes:
        rule_id: stable identifier, e.g. ``DET001``.
        severity: :class:`Severity` (errors fail the lint gate).
        file: path the finding is anchored to (repo-relative when the
            engine was given a project root; model checks use a
            synthetic ``<model:...>`` path).
        line: 1-based line number (0 for file/model-level findings).
        message: human-readable description of the defect.
    """

    rule_id: str
    severity: Severity
    file: str
    line: int
    message: str

    def key(self) -> str:
        """Stable identity used by baselines (line numbers excluded so
        baselines survive unrelated edits)."""
        return f"{self.rule_id}:{self.file}:{self.message}"

    def to_json(self) -> Dict[str, object]:
        """Plain-dict form for ``repro lint --json``."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }

    def format(self) -> str:
        """One-line human rendering (``file:line: SEV RULE message``)."""
        return (f"{self.file}:{self.line}: {self.severity.value} "
                f"[{self.rule_id}] {self.message}")


class FileContext:
    """Everything a rule needs to know about one parsed file."""

    def __init__(self, path: Path, display_path: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self._allowed: Optional[Dict[int, frozenset]] = None

    @property
    def posix_path(self) -> str:
        """Display path with forward slashes (used for scope matching)."""
        return self.display_path.replace("\\", "/")

    def allowed_rules(self, line: int) -> frozenset:
        """Rule ids allowed by an inline pragma covering ``line``.

        A pragma on a pure comment line also covers the following
        line, so long messages can carry their justification::

            # Deliberate: the fold accepts any integer dtype.
            # repro-lint: allow[NUM002]
            arr = np.asarray(column)

        Pragmas cover whole *statements*, not just their own line: a
        pragma anywhere inside a multi-line statement suppresses a
        finding anchored to any of its lines, and on a decorated
        ``def`` a pragma on (or just above) a decorator covers the
        ``def`` line findings anchor to. Compound statements
        (``def``/``for``/``if``...) only spread pragmas across their
        *header* — their bodies are separate statements with their
        own spans.
        """
        if self._allowed is None:
            table: Dict[int, frozenset] = {}
            for num, text in enumerate(self.source.splitlines(), start=1):
                match = _PRAGMA_RE.search(text)
                if not match:
                    continue
                ids = frozenset(
                    part.strip()
                    for part in match.group(1).split(","))
                table[num] = table.get(num, frozenset()) | ids
                if text.lstrip().startswith("#"):
                    table[num + 1] = table.get(num + 1,
                                               frozenset()) | ids
            for start, end in self._statement_spans():
                span_ids = frozenset().union(*(
                    table.get(num, frozenset())
                    for num in range(start, end + 1)))
                if not span_ids:
                    continue
                for num in range(start, end + 1):
                    table[num] = table.get(num, frozenset()) | span_ids
            self._allowed = table
        return self._allowed.get(line, frozenset())

    def _statement_spans(self) -> List[Tuple[int, int]]:
        """(start, end) line ranges a pragma spreads across: full
        spans for simple statements, decorators + header for
        compound ones."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            body = getattr(node, "body", None)
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                start = min([node.lineno, *(
                    decorator.lineno
                    for decorator in node.decorator_list)])
                end = max(node.lineno, node.body[0].lineno - 1)
            elif isinstance(body, list) and body:
                # other compound statements: header lines only
                start = node.lineno
                end = max(node.lineno, body[0].lineno - 1)
            else:
                start = node.lineno
                end = node.end_lineno or node.lineno
            if end > start:
                spans.append((start, end))
        return spans

    def is_allowed(self, rule_id: str, line: int) -> bool:
        allowed = self.allowed_rules(line)
        return rule_id in allowed or "*" in allowed


class Rule:
    """Base class for per-file rules.

    Subclasses set :attr:`rule_id`, :attr:`title` and
    :attr:`severity`, and implement :meth:`check`.
    """

    rule_id = "RULE000"
    title = ""
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int,
                message: str) -> Finding:
        """Build a finding anchored to ``ctx``."""
        return Finding(self.rule_id, self.severity, ctx.display_path,
                       line, message)


class ProjectRule(Rule):
    """A rule that needs the whole project before it can conclude.

    ``check`` accumulates per-file state (and may still yield per-file
    findings); ``finalize`` runs after the walk and yields the
    cross-file findings.
    """

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Yield findings that required seeing every file."""
        return ()


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """All ``*.py`` files under ``paths`` (files pass through),
    sorted for deterministic output, skipping caches."""
    seen = set()
    for root in paths:
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


class LintEngine:
    """Walks files, runs rules, collects findings.

    Args:
        rules: rule instances to run (default: the full registry from
            :func:`repro.analysis.rules.default_rules`).
        project_root: directory findings are reported relative to;
            also where project-level rules look for ``docs/``.
        rule_ids: optional subset filter (keep only these ids).
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 project_root: Optional[Path] = None,
                 rule_ids: Optional[Sequence[str]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules
            rules = default_rules(project_root)
        if rule_ids is not None:
            wanted = set(rule_ids)
            rules = [rule for rule in rules if rule.rule_id in wanted]
        self.rules: List[Rule] = list(rules)
        self.project_root = project_root

    def _display_path(self, path: Path) -> str:
        if self.project_root is not None:
            try:
                return str(path.resolve().relative_to(
                    self.project_root.resolve()))
            except ValueError:
                pass
        return str(path)

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Scan ``paths`` and return unsuppressed-by-pragma findings
        (baseline suppression is applied by the caller so the engine
        output stays complete)."""
        metrics = get_registry()
        findings: List[Finding] = []
        files = 0
        for path in iter_python_files(paths):
            files += 1
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                findings.append(Finding(
                    "PARSE", Severity.ERROR, self._display_path(path),
                    exc.lineno or 0, f"syntax error: {exc.msg}"))
                continue
            ctx = FileContext(path, self._display_path(path), source,
                              tree)
            for rule in self.rules:
                for finding in rule.check(ctx):
                    if not ctx.is_allowed(finding.rule_id,
                                          finding.line):
                        findings.append(finding)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.finalize())
        metrics.inc("analysis.files_scanned", files)
        metrics.inc("analysis.findings", len(findings))
        return sorted(findings,
                      key=lambda f: (f.file, f.line, f.rule_id))


def filter_baseline(findings: Sequence[Finding],
                    baseline_keys: Iterable[str]
                    ) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, stale-baseline-entries).

    A finding whose :meth:`Finding.key` appears in the baseline is
    suppressed; baseline entries that no longer match any finding are
    returned as *stale* so the baseline can be shrunk over time.
    """
    keys = set(baseline_keys)
    fresh = [f for f in findings if f.key() not in keys]
    matched = {f.key() for f in findings}
    stale = sorted(keys - matched)
    return fresh, stale


def render_text(findings: Sequence[Finding],
                files_hint: str = "") -> str:
    """Human-readable report (one finding per line plus a summary)."""
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings
                 if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    summary = f"{errors} error(s), {warnings} warning(s)"
    if files_hint:
        summary += f" in {files_hint}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON report: ``{"version": 1, "findings": [...]}``."""
    return json.dumps(
        {"version": 1,
         "findings": [f.to_json() for f in findings]},
        indent=2, sort_keys=True)
