"""Source-of-truth sync between metric call sites and the docs table.

`docs/observability.md` carries the catalog of every metric name the
tree may emit. This module gives the metrics rule its two halves:

- :func:`parse_metric_table` — extract ``name -> kind`` from the
  markdown table (handles multi-name cells like ``` `lp.solves`,
  `lp.writes` ``` and suffix continuations like
  ``` `shim.decision.process` / `.replicate` ```; ``<placeholder>``
  segments become wildcards).
- :func:`scan_metric_calls` — collect every ``.inc( / .gauge( /
  .observe( / .span(`` call whose metric name is a string literal or
  f-string (f-string holes become ``*`` wildcards; ``span`` names get
  the automatic ``.seconds`` suffix).

Matching is fnmatch-based so dynamic call sites
(``f"runtime.refresh.{reason}"``) are satisfied by any documented
name they can produce, and wildcard doc rows
(``emulation.work_units.<node>``) are satisfied by any literal they
cover.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

#: metric-recording method -> documented kind
METHOD_KINDS = {
    "inc": "counter",
    "gauge": "gauge",
    "observe": "histogram",
    "span": "histogram",
}

_NAME_TOKEN_RE = re.compile(r"`([^`]+)`")
_PLACEHOLDER_RE = re.compile(r"<[^<>]+>")
_TABLE_HEADER = "## Metric names"


@dataclasses.dataclass(frozen=True)
class MetricCall:
    """One metric-emitting call site found in the source."""

    pattern: str   # literal name, or fnmatch pattern for f-strings
    kind: str      # counter / gauge / histogram
    line: int
    dynamic: bool  # True when the name came from an f-string


def _doc_pattern(raw: str) -> str:
    """A documented name with ``<placeholder>`` turned into ``*``."""
    return _PLACEHOLDER_RE.sub("*", raw.strip())


def parse_metric_table(text: str) -> Dict[str, str]:
    """``{name_pattern: kind}`` from the ``## Metric names`` table.

    Raises ValueError when the section or table is missing — a broken
    docs file should fail the gate loudly, not pass it vacuously.
    """
    if _TABLE_HEADER not in text:
        raise ValueError(
            f"no {_TABLE_HEADER!r} section in the observability doc")
    section = text.split(_TABLE_HEADER, 1)[1]
    section = section.split("\n## ", 1)[0]

    names: Dict[str, str] = {}
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if len(cells) < 2:
            continue
        name_cell, kind_cell = cells[0], cells[1]
        if set(name_cell) <= {"-", " "} or name_cell.lower() == "name":
            continue
        kind = kind_cell.lower().strip()
        tokens = _NAME_TOKEN_RE.findall(name_cell)
        previous = ""
        for token in tokens:
            token = token.strip()
            if token.startswith(".") and previous:
                # `.replicate` continues `shim.decision.process`.
                prefix = previous.rsplit(".", 1)[0]
                token = prefix + token
            previous = token
            names[_doc_pattern(token)] = kind
    if not names:
        raise ValueError("observability doc metric table is empty")
    return names


def load_documented_metrics(doc_path: Path) -> Dict[str, str]:
    """Parse the metric table from ``doc_path``."""
    return parse_metric_table(doc_path.read_text(encoding="utf-8"))


def _call_name(node: ast.Call) -> Tuple[str, bool]:
    """(name_or_pattern, dynamic) from the first argument, or
    ``("", False)`` when it is not a recognizable string."""
    if not node.args:
        return "", False
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant) and isinstance(
                    piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts), True
    return "", False


def scan_metric_calls(tree: ast.AST) -> List[MetricCall]:
    """Every metric-recording call with a statically-known name."""
    calls: List[MetricCall] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        kind = METHOD_KINDS.get(func.attr)
        if kind is None:
            continue
        name, dynamic = _call_name(node)
        if not name:
            continue
        if func.attr == "span":
            name += ".seconds"
        calls.append(MetricCall(name, kind, node.lineno, dynamic))
    return calls


def match_documented(call: MetricCall,
                     documented: Dict[str, str]) -> Tuple[bool, str]:
    """Whether ``call`` is covered by the documented table.

    Returns ``(matched, kind_of_match)`` — the kind is the documented
    kind of the matching row (empty string when unmatched).
    """
    if call.pattern in documented:
        return True, documented[call.pattern]
    for doc_pattern, kind in documented.items():
        if call.dynamic:
            # Any documented name the dynamic pattern can produce.
            if fnmatchcase(doc_pattern, call.pattern):
                return True, kind
        if "*" in doc_pattern and fnmatchcase(call.pattern,
                                              doc_pattern):
            return True, kind
    return False, ""


def stale_documented(documented: Dict[str, str],
                     calls: Sequence[MetricCall]) -> List[str]:
    """Documented names never matched by any scanned call site."""
    stale: List[str] = []
    for doc_pattern in documented:
        used = False
        for call in calls:
            if call.pattern == doc_pattern:
                used = True
            elif call.dynamic and fnmatchcase(doc_pattern,
                                              call.pattern):
                used = True
            elif "*" in doc_pattern and fnmatchcase(call.pattern,
                                                    doc_pattern):
                used = True
            if used:
                break
        if not used:
            stale.append(doc_pattern)
    return sorted(stale)
