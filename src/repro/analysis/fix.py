"""Mechanical auto-fixes for lint findings (``repro lint --fix``).

Only rules whose fix is purely syntactic are eligible; today that is
HYG003 (unused module-level imports). The fixer re-derives unused
aliases with the same logic as the rule — usage collection includes
attribute roots and identifiers inside string annotations — so a fix
pass followed by a scan is always clean for HYG003, and a second fix
pass is a no-op (idempotence is pinned by a test).

Pragma-suppressed statements (``# repro-lint: allow[HYG003]`` on any
line of the import statement) and ``__init__.py`` re-export files
are left untouched, mirroring the rule's own blind spots.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.engine import FileContext
from repro.analysis.rules.hygiene import _UsageCollector, _dunder_all


@dataclasses.dataclass
class FixResult:
    """Outcome of one file's fix pass."""

    source: str
    removed: List[str]

    @property
    def changed(self) -> bool:
        return bool(self.removed)


def fix_unused_imports(source: str,
                       path: Optional[Path] = None) -> FixResult:
    """Remove unused module-level import aliases from ``source``.

    Import statements with every alias unused are deleted outright;
    statements with a mix are rewritten keeping only the used
    aliases. Returns the (possibly unchanged) source and the removed
    alias names.
    """
    display = str(path) if path is not None else "<memory>"
    if path is not None and path.name == "__init__.py":
        return FixResult(source=source, removed=[])
    tree = ast.parse(source, filename=display)
    ctx = FileContext(path or Path(display), display, source, tree)

    collector = _UsageCollector()
    collector.visit(tree)
    used = collector.names
    exported = _dunder_all(tree)

    lines = source.splitlines(keepends=True)
    removed: List[str] = []
    # (start_line, end_line, replacement-or-None), applied bottom-up
    edits: List[Tuple[int, int, Optional[str]]] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            prefix = "import "
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            if any(alias.name == "*" for alias in node.names):
                continue
            dots = "." * node.level
            prefix = f"from {dots}{node.module or ''} import "
        else:
            continue
        if ctx.is_allowed("HYG003", node.lineno):
            continue
        kept = []
        dropped = []
        for alias in node.names:
            if isinstance(node, ast.Import):
                local = alias.asname or alias.name.split(".")[0]
            else:
                local = alias.asname or alias.name
            if local in used or local in exported:
                kept.append(alias)
            else:
                dropped.append(local)
        if not dropped:
            continue
        removed.extend(dropped)
        end = node.end_lineno or node.lineno
        if not kept:
            edits.append((node.lineno, end, None))
            continue
        first = lines[node.lineno - 1]
        indent = first[:len(first) - len(first.lstrip())]
        names = ", ".join(
            f"{alias.name} as {alias.asname}" if alias.asname
            else alias.name for alias in kept)
        edits.append((node.lineno, end,
                      f"{indent}{prefix}{names}\n"))

    if not edits:
        return FixResult(source=source, removed=[])
    for start, end, replacement in sorted(edits, reverse=True):
        tail = [] if replacement is None else [replacement]
        lines[start - 1:end] = tail
    return FixResult(source="".join(lines), removed=sorted(removed))


def fix_file(path: Path) -> FixResult:
    """Apply :func:`fix_unused_imports` to a file in place."""
    source = path.read_text(encoding="utf-8")
    result = fix_unused_imports(source, path=path)
    if result.changed:
        path.write_text(result.source, encoding="utf-8")
    return result
