"""Domain-aware static analysis for the reproduction.

Two complementary layers:

- the **AST lint engine** (:mod:`~repro.analysis.engine` plus the
  rule packs in :mod:`~repro.analysis.rules`) — scans source files
  for violations of the codebase's load-bearing invariants:
  determinism of the runtime/simulation layers, uint32 discipline on
  the hash path, float-comparison hygiene on solver outputs, metric
  namespace vs the documented table, and general code health;
- the **model verifier** (:mod:`~repro.analysis.modelcheck`) — checks
  built LPs, solved results and compiled shim range tables against
  the paper's structural invariants (fractions partition a class;
  hash ranges tile [0, 2^32) without overlap).

Front ends: ``repro lint`` on the command line (what CI runs on the
repo itself) and :func:`~repro.analysis.modelcheck.precheck` as a
library pre-solve guard (enabled globally with
``REPRO_VERIFY_MODELS=1``).
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import (
    FileContext,
    Finding,
    LintEngine,
    ProjectRule,
    Rule,
    Severity,
    filter_baseline,
    iter_python_files,
    render_json,
    render_text,
)
from repro.analysis.modelcheck import (
    ModelCheckError,
    check_model,
    check_result,
    check_budgeted_configs,
    check_shim_configs,
    precheck,
)
from repro.analysis.rules import default_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "ModelCheckError",
    "ProjectRule",
    "Rule",
    "Severity",
    "check_model",
    "check_result",
    "check_budgeted_configs",
    "check_shim_configs",
    "default_rules",
    "filter_baseline",
    "iter_python_files",
    "load_baseline",
    "precheck",
    "render_json",
    "render_text",
    "write_baseline",
]
