"""Domain-aware static analysis for the reproduction.

Two complementary layers:

- the **AST lint engine** (:mod:`~repro.analysis.engine` plus the
  rule packs in :mod:`~repro.analysis.rules`) — scans source files
  for violations of the codebase's load-bearing invariants:
  determinism of the runtime/simulation layers, uint32 discipline on
  the hash path, float-comparison hygiene on solver outputs, metric
  namespace vs the documented table, and general code health. The
  project-wide substrate (:mod:`~repro.analysis.callgraph` symbol
  table/call graph and :mod:`~repro.analysis.dataflow` seed taint)
  lets the concurrency pack reason across modules — which callables
  run as event-loop actions, and which seeds descend from
  ``Scenario.seed``;
- the **model verifier** (:mod:`~repro.analysis.modelcheck`) — checks
  built LPs, solved results and compiled shim range tables against
  the paper's structural invariants (fractions partition a class;
  hash ranges tile [0, 2^32) without overlap).

Front ends: ``repro lint`` on the command line (what CI runs on the
repo itself) and :func:`~repro.analysis.modelcheck.precheck` as a
library pre-solve guard (enabled globally with
``REPRO_VERIFY_MODELS=1``).
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import SeedTaint, is_seed_name
from repro.analysis.engine import (
    FileContext,
    Finding,
    LintEngine,
    ProjectRule,
    Rule,
    Severity,
    filter_baseline,
    iter_python_files,
    render_json,
    render_text,
)
from repro.analysis.modelcheck import (
    ModelCheckError,
    check_model,
    check_result,
    check_budgeted_configs,
    check_shim_configs,
    precheck,
)
from repro.analysis.fix import FixResult, fix_file, fix_unused_imports
from repro.analysis.rules import default_rules

__all__ = [
    "CallGraph",
    "FileContext",
    "Finding",
    "FixResult",
    "LintEngine",
    "SeedTaint",
    "ModelCheckError",
    "ProjectRule",
    "Rule",
    "Severity",
    "check_model",
    "check_result",
    "check_budgeted_configs",
    "check_shim_configs",
    "default_rules",
    "filter_baseline",
    "fix_file",
    "fix_unused_imports",
    "is_seed_name",
    "iter_python_files",
    "load_baseline",
    "precheck",
    "render_json",
    "render_text",
    "write_baseline",
]
