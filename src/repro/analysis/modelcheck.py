"""Model-level verification: LP structure and paper invariants.

Where the AST rules guard *source*, this module guards *built
artifacts*: a :class:`~repro.lpsolve.Model` about to be solved, a
formulation result, or a compiled set of
:class:`~repro.shim.config.ShimConfig` tables. The checks mirror the
properties the paper's architecture depends on (Heorhiadi et al.,
CoNEXT'12, Sections 4 and 7):

- **LP structure** (MDL001-MDL005): no dangling variables, no
  duplicate constraint rows, no degenerate (all-zero) rows, no
  contradictory variable bounds, and every per-class ``cover[...]``
  row keeps the unit-coefficient / unit-rhs shape that makes the
  process+replication fractions a partition of the class.
- **Fraction sanity** (RES001-RES002): solved per-class processing +
  replication fractions land in [0, 1] and sum to at most 1.
- **Shim range tables** (SHIM001-SHIM002): per (node, class,
  direction) the installed hash ranges are non-overlapping, and
  per class the network-wide PROCESS ranges tile the full hash space
  ``[0, 2^32)`` — a misconfigured range table fails *silently* at
  runtime (sessions just go unanalyzed), so this is checked statically
  at compile/rollout time.
- **Budgeted tables** (SHIM003-SHIM004): a rule-budgeted compile
  (``build_*_configs(budget=B)``) must still tile ``[0, 2^32)``
  *exactly* — the approximation moves range boundaries, never opens
  gaps — and no (node, class, direction) bucket may hold more than
  ``B`` rules, the declared TCAM capacity.
- **Sharded control plane** (SHRD001-SHRD002): the per-region config
  sets produced by the sharded planner, *unioned*, must still tile
  every class's hash space exactly (each class is planned by exactly
  one region, so cross-region double-coverage or a dropped class is a
  coordination bug), and the coordinator's summed per-region capacity
  allocations at any shared node must not exceed the node's actual
  capacity.

:func:`precheck` is the library pre-solve guard: call it (or export
``REPRO_VERIFY_MODELS=1`` to have every
:meth:`Formulation.solve <repro.core.formulation.Formulation.solve>`
call it) to fail fast on malformed models instead of shipping bad
configs.

Note on rollout transients: an *overlap* transition deliberately
installs the union of old and new rules, which double-covers hash
space by design. Run :func:`check_shim_configs` on freshly compiled
config sets (the controller's output), not on mid-transition union
tables.
"""

from __future__ import annotations

import math
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from repro.analysis.engine import Finding, Severity
from repro.lpsolve.constraint import Constraint, ConstraintSense
from repro.lpsolve.model import Model
from repro.shim.config import ShimAction, ShimConfig, ShimRule

_TOL = 1e-6
_HASH_SPACE = float(2 ** 32)


class ModelCheckError(ValueError):
    """Raised by :func:`precheck` when a model fails verification."""

    def __init__(self, findings: List[Finding]) -> None:
        self.findings = findings
        lines = "\n".join(f.format() for f in findings)
        super().__init__(
            f"model verification failed with {len(findings)} "
            f"finding(s):\n{lines}")


def _finding(rule_id: str, where: str, message: str,
             severity: Severity = Severity.ERROR) -> Finding:
    return Finding(rule_id, severity, where, 0, message)


# -- LP structure ---------------------------------------------------------

def check_model(model: Model) -> List[Finding]:
    """Structural findings for a built (not necessarily solved) model."""
    where = f"<model:{model.name}>"
    findings: List[Finding] = []

    used_vars = set()
    if model.objective is not None:
        for var, coeff in model.objective.coeffs.items():
            if coeff != 0.0:
                used_vars.add(var)

    seen_rows: Dict[Tuple, str] = {}
    for con in model.constraints:
        nonzero = tuple(sorted(
            (var.index, coeff)
            for var, coeff in con.expr.coeffs.items()
            if coeff != 0.0))
        for var, coeff in con.expr.coeffs.items():
            if coeff != 0.0:
                used_vars.add(var)

        if not nonzero:
            rhs = con.rhs
            violated = (abs(rhs) > _TOL
                        if con.sense is ConstraintSense.EQ
                        else (rhs < -_TOL
                              if con.sense is ConstraintSense.LE
                              else rhs > _TOL))
            label = ("trivially infeasible"
                     if violated else "degenerate (tautological)")
            findings.append(_finding(
                "MDL003", where,
                f"constraint {con.name!r} has no nonzero "
                f"coefficients — {label} row; a patch probably "
                "zeroed it out (rebuild instead of patching)"))
            continue

        # Canonical row identity: GE rows are negated into LE form so
        # `x >= 1` and `-x <= -1` collide as duplicates.
        if con.sense is ConstraintSense.GE:
            canonical = ("LE",
                         tuple((i, -c) for i, c in nonzero),
                         -con.rhs)
        else:
            canonical = (con.sense.name, nonzero, con.rhs)
        previous = seen_rows.get(canonical)
        if previous is not None:
            findings.append(_finding(
                "MDL002", where,
                f"constraint {con.name!r} duplicates row "
                f"{previous!r} (same coefficients, sense and rhs); "
                "duplicate rows bloat the basis and usually signal "
                "a double build"))
        else:
            seen_rows[canonical] = con.name or "<unnamed>"

        _check_cover_row(con, nonzero, where, findings)

    for var in model.variables:
        if var.ub is not None and var.ub < var.lb - _TOL:
            findings.append(_finding(
                "MDL004", where,
                f"variable {var.name!r} has contradictory bounds "
                f"[{var.lb}, {var.ub}]"))
        if math.isnan(var.lb) or (var.ub is not None
                                  and math.isnan(var.ub)):
            findings.append(_finding(
                "MDL004", where,
                f"variable {var.name!r} has a NaN bound"))
        if var not in used_vars:
            findings.append(_finding(
                "MDL001", where,
                f"variable {var.name!r} appears in no constraint "
                "or objective (dangling column); likely a stale "
                "build or a typo in the formulation"))

    return findings


def _check_cover_row(con: Constraint, nonzero: Tuple,
                     where: str, findings: List[Finding]) -> None:
    """MDL005: ``cover[...]`` rows must keep the paper's structure.

    Section 4 makes the per-class processing + replication fractions
    a partition of the class: every coefficient is +1 and the row
    says the fractions sum to exactly 1 (or at most 1 for relaxed
    variants). A patched coefficient or rhs breaks the
    hash-range compilation downstream, so it is checked here.
    """
    name = con.name or ""
    if not name.startswith("cover["):
        return
    sense = con.sense
    rhs = con.rhs
    bad_coeff = [index for index, coeff in nonzero
                 if abs(coeff - 1.0) > _TOL]
    if bad_coeff:
        findings.append(_finding(
            "MDL005", where,
            f"coverage row {name!r} has non-unit coefficients at "
            f"column(s) {bad_coeff}; per-class fraction rows must "
            "be plain sums for the hash-range compiler to be valid"))
    if sense is ConstraintSense.EQ:
        if abs(rhs - 1.0) > _TOL:
            findings.append(_finding(
                "MDL005", where,
                f"coverage row {name!r} pins the fraction sum to "
                f"{rhs} instead of 1"))
    elif sense is ConstraintSense.LE:
        if rhs > 1.0 + _TOL:
            findings.append(_finding(
                "MDL005", where,
                f"coverage row {name!r} allows the fraction sum to "
                f"reach {rhs} > 1; fractions of a class cannot "
                "exceed the class"))


# -- solved-result sanity -------------------------------------------------

def check_result(result: "object") -> List[Finding]:
    """RES001/RES002 on a formulation result (duck-typed).

    Works for every ``AssignmentResult`` subclass: validates
    ``process_fractions`` and, when present, ``offload_fractions``
    (replication) and ``fwd_offloads``/``rev_offloads`` (split).
    """
    where = f"<result:{type(result).__name__}>"
    findings: List[Finding] = []
    process: Mapping = getattr(result, "process_fractions", {}) or {}
    offload: Mapping = getattr(result, "offload_fractions", {}) or {}
    fwd: Mapping = getattr(result, "fwd_offloads", {}) or {}
    rev: Mapping = getattr(result, "rev_offloads", {}) or {}

    class_names = set(process) | set(offload) | set(fwd) | set(rev)
    for cls in sorted(class_names):
        fractions: List[Tuple[str, float]] = []
        for node, value in (process.get(cls, {}) or {}).items():
            fractions.append((f"p[{node}]", value))
        for key, value in (offload.get(cls, {}) or {}).items():
            fractions.append((f"o[{key}]", value))
        for name, value in fractions:
            if value < -_TOL or value > 1.0 + _TOL:
                findings.append(_finding(
                    "RES001", where,
                    f"class {cls!r}: fraction {name} = {value} is "
                    "outside [0, 1]"))
        total = sum(value for _, value in fractions)
        if total > 1.0 + 1e-4:
            findings.append(_finding(
                "RES002", where,
                f"class {cls!r}: processing+replication fractions "
                f"sum to {total:.6f} > 1 — the class is "
                "over-assigned, the hash-range layout would "
                "overflow [0, 2^32)"))
        # Directional offloads each extend the shared local prefix,
        # so local + either direction must stay within the class.
        local = sum((process.get(cls, {}) or {}).values())
        for label, table in (("fwd", fwd), ("rev", rev)):
            directional = sum((table.get(cls, {}) or {}).values())
            if local + directional > 1.0 + 1e-4:
                findings.append(_finding(
                    "RES002", where,
                    f"class {cls!r}: local + {label} offload "
                    f"fractions sum to {local + directional:.6f} "
                    "> 1"))
    return findings


# -- shim range tables ----------------------------------------------------

def _hash_units(value: float) -> int:
    """A [0,1) fraction as an integer point in [0, 2^32)."""
    return int(round(value * _HASH_SPACE))


def _directions(rule: ShimRule) -> Tuple[str, ...]:
    if rule.direction == "both":
        return ("fwd", "rev")
    return (rule.direction,)


def check_shim_configs(configs: Mapping[str, ShimConfig],
                       require_full_coverage: bool = True
                       ) -> List[Finding]:
    """SHIM001/SHIM002 on a compiled per-node config set.

    SHIM001 — within one (node, class, direction, hash field) bucket
    the installed ranges must be non-overlapping, otherwise "first
    match wins" silently shadows the later rule.

    SHIM002 — per (class, direction), the union of PROCESS ranges
    across *all* nodes must tile ``[0, 2^32)`` with neither overlap
    (a session analyzed twice distorts aggregation counts) nor gap
    (a session analyzed nowhere — the silent failure mode this check
    exists for). Gap detection is skipped with
    ``require_full_coverage=False`` (partial-coverage split classes).
    """
    findings: List[Finding] = []

    # SHIM001: per-node bucket overlap.
    for node in sorted(configs):
        config = configs[node]
        for cls_name, rules in sorted(config.rules.items()):
            buckets: Dict[Tuple[str, str],
                          List[Tuple[float, float, ShimRule]]] = {}
            for rule in rules:
                for direction in _directions(rule):
                    key = (direction, rule.hash_mode.value)
                    buckets.setdefault(key, []).append(
                        (rule.hash_range.start, rule.hash_range.end,
                         rule))
            for (direction, mode), spans in sorted(buckets.items()):
                spans.sort(key=lambda item: (item[0], item[1]))
                for (s1, e1, r1), (s2, e2, r2) in zip(spans,
                                                      spans[1:]):
                    if s2 < e1 - 1e-12:
                        findings.append(_finding(
                            "SHIM001", f"<shim:{node}>",
                            f"class {cls_name!r} ({direction}/"
                            f"{mode}): ranges "
                            f"[{_hash_units(s1)}, {_hash_units(e1)})"
                            f" ({r1.action.value}) and "
                            f"[{_hash_units(s2)}, {_hash_units(e2)})"
                            f" ({r2.action.value}) overlap — the "
                            "second rule is partially shadowed"))

    # SHIM002: network-wide PROCESS tiling per class and direction.
    per_class: Dict[Tuple[str, str],
                    List[Tuple[float, float, str]]] = {}
    for node in sorted(configs):
        config = configs[node]
        for cls_name, rules in sorted(config.rules.items()):
            for rule in rules:
                if rule.action is not ShimAction.PROCESS:
                    continue
                for direction in _directions(rule):
                    per_class.setdefault(
                        (cls_name, direction), []).append(
                        (rule.hash_range.start, rule.hash_range.end,
                         node))

    for (cls_name, direction), spans in sorted(per_class.items()):
        spans.sort(key=lambda item: (item[0], item[1]))
        cursor = 0.0
        for start, end, node in spans:
            if start < cursor - 1e-9:
                findings.append(_finding(
                    "SHIM002", "<shim:network>",
                    f"class {cls_name!r} ({direction}): PROCESS "
                    f"range [{_hash_units(start)}, "
                    f"{_hash_units(end)}) at node {node!r} "
                    f"overlaps coverage up to "
                    f"{_hash_units(cursor)} — sessions in the "
                    "overlap are analyzed twice"))
            elif start > cursor + 1e-6 and require_full_coverage:
                findings.append(_finding(
                    "SHIM002", "<shim:network>",
                    f"class {cls_name!r} ({direction}): coverage "
                    f"gap [{_hash_units(cursor)}, "
                    f"{_hash_units(start)}) — sessions hashing "
                    "there are analyzed nowhere (silent miss)"))
            cursor = max(cursor, end)
        if require_full_coverage and cursor < 1.0 - 1e-6:
            findings.append(_finding(
                "SHIM002", "<shim:network>",
                f"class {cls_name!r} ({direction}): PROCESS ranges "
                f"cover only [0, {_hash_units(cursor)}) of "
                "[0, 2^32) — the tail of the hash space is "
                "unanalyzed"))
    return findings


def check_budgeted_configs(configs: Mapping[str, ShimConfig],
                           budget: Optional[int],
                           require_full_coverage: bool = True
                           ) -> List[Finding]:
    """SHIM003/SHIM004 on a rule-budgeted compile.

    SHIM003 — per (class, direction) the network-wide PROCESS ranges,
    measured in exact integer hash units, must tile ``[0, 2^32)``
    seamlessly: the budgeted lowering rescales kept fractions so the
    layout still covers the whole space, and any gap or overlap means
    the approximation silently lost (or double-counts) sessions.
    With ``require_full_coverage=False`` (split-traffic classes whose
    coverage is partial by design) only overlaps are flagged.

    SHIM004 — with a finite ``budget``, no (node, class, direction)
    bucket may install more than ``budget`` positive-width rules;
    the compile would not fit the declared TCAM capacity. ``budget=
    None`` skips SHIM004 (the unbounded compile has no cap to honor).
    """
    findings: List[Finding] = []
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")

    # SHIM003: exact integer-unit tiling of PROCESS ownership. Every
    # (class, direction) any rule mentions is checked — a class whose
    # PROCESS owner went missing entirely must still be flagged.
    spans_by_class: Dict[Tuple[str, str],
                         List[Tuple[int, int, str]]] = {}
    seen_classes: Set[Tuple[str, str]] = set()
    for node in sorted(configs):
        config = configs[node]
        for cls_name, rules in sorted(config.rules.items()):
            seen_classes.add((cls_name, "fwd"))
            seen_classes.add((cls_name, "rev"))
            counts: Dict[Tuple[str, str], int] = {}
            for rule in rules:
                start = _hash_units(rule.hash_range.start)
                end = _hash_units(rule.hash_range.end)
                if end <= start:
                    continue
                for direction in _directions(rule):
                    counts[(direction, rule.hash_mode.value)] = \
                        counts.get(
                            (direction, rule.hash_mode.value), 0) + 1
                    if rule.action is ShimAction.PROCESS:
                        spans_by_class.setdefault(
                            (cls_name, direction), []).append(
                            (start, end, node))
            if budget is None:
                continue
            for (direction, mode), count in sorted(counts.items()):
                if count > budget:
                    findings.append(_finding(
                        "SHIM004", f"<shim:{node}>",
                        f"class {cls_name!r} ({direction}/{mode}): "
                        f"{count} rules exceed the declared budget "
                        f"of {budget} — the table does not fit the "
                        "TCAM it was compiled for"))

    space = int(_HASH_SPACE)
    for (cls_name, direction) in sorted(seen_classes):
        spans = spans_by_class.get((cls_name, direction), [])
        spans.sort(key=lambda item: (item[0], item[1]))
        cursor = 0
        for start, end, node in spans:
            if start < cursor:
                findings.append(_finding(
                    "SHIM003", "<shim:network>",
                    f"class {cls_name!r} ({direction}): budgeted "
                    f"PROCESS range [{start}, {end}) at node "
                    f"{node!r} overlaps coverage up to {cursor} — "
                    "the rescaled layout double-covers hash units"))
            elif start > cursor and require_full_coverage:
                findings.append(_finding(
                    "SHIM003", "<shim:network>",
                    f"class {cls_name!r} ({direction}): budgeted "
                    f"layout leaves hash units [{cursor}, {start}) "
                    "unowned — the rescale should have closed this "
                    "gap"))
            cursor = max(cursor, end)
        if require_full_coverage and cursor != space:
            findings.append(_finding(
                "SHIM003", "<shim:network>",
                f"class {cls_name!r} ({direction}): budgeted "
                f"PROCESS ranges end at {cursor}, not {space} — "
                "the tail of the hash space is unowned"))
    return findings


# -- sharded control plane ------------------------------------------------

def check_sharded_configs(
        regional_configs: Mapping[str, Mapping[str, ShimConfig]],
        class_names: Sequence[str]) -> List[Finding]:
    """SHRD001 — the union of regional configs tiles every class.

    The sharded planner assigns each traffic class to exactly one
    region, and that region's configs must own the class's *entire*
    hash space ``[0, 2^32)``. Measured in exact integer hash units
    with the SHIM003 cursor walk over the union of all regions'
    PROCESS ranges: an overlap means two regional controllers both
    claimed the hash units (sessions analyzed twice), a gap or a
    missing class means no region claimed them (silent miss). Every
    name in ``class_names`` must be covered — a class that vanished
    from every region is exactly the failover bug this rule exists
    to catch.
    """
    findings: List[Finding] = []
    spans_by_class: Dict[Tuple[str, str],
                         List[Tuple[int, int, str, str]]] = {}
    owners: Dict[str, Set[str]] = {}
    for region in sorted(regional_configs):
        configs = regional_configs[region]
        for node in sorted(configs):
            for cls_name, rules in sorted(configs[node].rules.items()):
                owners.setdefault(cls_name, set()).add(region)
                for rule in rules:
                    if rule.action is not ShimAction.PROCESS:
                        continue
                    start = _hash_units(rule.hash_range.start)
                    end = _hash_units(rule.hash_range.end)
                    if end <= start:
                        continue
                    for direction in _directions(rule):
                        spans_by_class.setdefault(
                            (cls_name, direction), []).append(
                            (start, end, region, node))

    space = int(_HASH_SPACE)
    for cls_name in sorted(class_names):
        regions = sorted(owners.get(cls_name, ()))
        if len(regions) > 1:
            findings.append(_finding(
                "SHRD001", "<shard:union>",
                f"class {cls_name!r} is configured by "
                f"{len(regions)} regions ({', '.join(regions)}) — "
                "the partition must assign each class to exactly "
                "one region"))
        for direction in ("fwd", "rev"):
            spans = spans_by_class.get((cls_name, direction), [])
            spans.sort(key=lambda item: (item[0], item[1]))
            cursor = 0
            for start, end, region, node in spans:
                if start < cursor:
                    findings.append(_finding(
                        "SHRD001", "<shard:union>",
                        f"class {cls_name!r} ({direction}): PROCESS "
                        f"range [{start}, {end}) from region "
                        f"{region!r} (node {node!r}) overlaps "
                        f"coverage up to {cursor} — two regional "
                        "controllers claim the same hash units"))
                elif start > cursor:
                    findings.append(_finding(
                        "SHRD001", "<shard:union>",
                        f"class {cls_name!r} ({direction}): no "
                        f"region owns hash units [{cursor}, {start})"
                        " — sessions hashing there are analyzed "
                        "nowhere"))
                cursor = max(cursor, end)
            if cursor != space:
                findings.append(_finding(
                    "SHRD001", "<shard:union>",
                    f"class {cls_name!r} ({direction}): the union "
                    f"of regional PROCESS ranges ends at {cursor}, "
                    f"not {space} — the tail of the hash space is "
                    "unowned"))
    return findings


def check_shard_capacity(
        capacities: Mapping[str, float],
        allocations: Mapping[str, Mapping[str, float]]
        ) -> List[Finding]:
    """SHRD002 — summed regional allocations fit the real capacity.

    The coordinator hands every region a slice of each shared node's
    capacity (datacenter, shared mirrors, cross-region path nodes) in
    absolute capacity units. Regions plan against their slice, so the
    merged assignment is only feasible if, per node, the slices sum
    to at most the node's actual capacity (within tolerance). An
    allocation for a node with no known capacity is flagged too — the
    coordinator is handing out capacity that does not exist.
    """
    findings: List[Finding] = []
    totals: Dict[str, float] = {}
    for region in sorted(allocations):
        for node, amount in sorted(allocations[region].items()):
            if node not in capacities:
                findings.append(_finding(
                    "SHRD002", "<shard:capacity>",
                    f"region {region!r} holds an allocation of "
                    f"{amount:g} at unknown node {node!r}"))
                continue
            if amount < 0:
                findings.append(_finding(
                    "SHRD002", "<shard:capacity>",
                    f"region {region!r} holds a negative allocation "
                    f"of {amount:g} at node {node!r}"))
                continue
            totals[node] = totals.get(node, 0.0) + amount
    for node in sorted(totals):
        capacity = capacities[node]
        if totals[node] > capacity * (1.0 + _TOL) + _TOL:
            regions = sorted(r for r in allocations
                             if node in allocations[r])
            findings.append(_finding(
                "SHRD002", "<shard:capacity>",
                f"node {node!r}: regional allocations sum to "
                f"{totals[node]:g} across {', '.join(regions)} but "
                f"the node's capacity is {capacity:g} — the "
                "coordinator oversubscribed a shared node"))
    return findings


# -- the pre-solve guard --------------------------------------------------

def precheck(model: Model,
             extra: Optional[Iterable[Finding]] = None) -> None:
    """Raise :class:`ModelCheckError` when ``model`` fails
    verification; the library-level guard for
    ``REPRO_VERIFY_MODELS=1``."""
    findings = check_model(model)
    if extra is not None:
        findings = [*findings, *extra]
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if errors:
        raise ModelCheckError(errors)
