"""Seed-provenance taint analysis for the determinism contract.

Every random draw in the reproducible layers must descend from
``Scenario.seed``. The chain is carried by *naming convention* plus
*local dataflow*: seeds travel through parameters, attributes and
dict slots whose names say so (``seed``, ``hash_seed``,
``drift_rng``, ...), and through arithmetic that mixes a rooted value
(``scenario.seed * 7919 + 1``). This module decides, for any
expression at any point in a module, whether its value is
*seed-rooted* under that contract:

- a :class:`Name` is rooted when it is seed-ish by name or was
  assigned from a rooted expression anywhere in the enclosing scope
  chain (a small fixed-point handles use-before-textual-def inside
  loops);
- an :class:`Attribute` / :class:`Subscript` is rooted when its
  attribute / string key is seed-ish (``self.seed``,
  ``manifest["hash_seed"]``) or its base object is rooted;
- any compound expression (arithmetic, calls, containers,
  conditionals) is rooted when *any* operand is — "derives from" is
  deliberately an over-approximation, so the DET003 rule, which fires
  on *un*-rooted seeds, errs toward silence.

A literal constant is never rooted: ``default_rng(42)`` buried in a
runtime module is exactly the hard-coded seed DET003 exists to catch.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterator, List, Set, Tuple, Union

#: identifier tokens that mark a value as part of the seed plumbing
_SEED_TOKEN_RE = re.compile(
    r"(?:^|_)(?:seed|seeds|rng|rngs)(?:_|$)", re.IGNORECASE)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: statements whose nested statements stay in the same variable scope
_BLOCK_FIELDS = ("body", "orelse", "finalbody")


def is_seed_name(name: str) -> bool:
    """True when an identifier participates in seed plumbing by
    naming convention (``seed``, ``hash_seed``, ``_tie_rng``, ...)."""
    return _SEED_TOKEN_RE.search(name) is not None


class SeedTaint:
    """The rooted-name environment for one scope.

    Build one per function (or module) with the names tainted by the
    scope's parameters and assignments, then ask :meth:`rooted`
    whether a given expression derives from the seed plumbing.
    """

    def __init__(self, tainted: FrozenSet[str]) -> None:
        self.tainted = tainted

    def rooted(self, expr: ast.expr) -> bool:
        """Does ``expr`` derive from a seed-rooted value?"""
        return _rooted(expr, self.tainted)


def _rooted(expr: ast.expr, tainted: FrozenSet[str]) -> bool:
    if isinstance(expr, ast.Constant):
        return False
    if isinstance(expr, ast.Name):
        return expr.id in tainted or is_seed_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return (is_seed_name(expr.attr)
                or _rooted(expr.value, tainted))
    if isinstance(expr, ast.Subscript):
        key = expr.slice
        if (isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and is_seed_name(key.value)):
            return True
        return _rooted(expr.value, tainted)
    # compound expressions: rooted when any operand is ("derives
    # from" over-approximates, which biases DET003 toward silence)
    return any(
        _rooted(child, tainted)
        for child in ast.iter_child_nodes(expr)
        if isinstance(child, ast.expr))


def _scope_params(node: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda]) -> Set[str]:
    args = node.args
    names = set()
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg))):
        if is_seed_name(arg.arg):
            names.add(arg.arg)
    return names


def _own_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope`` itself — descends through
    compound statements but stops at nested function/class scopes."""
    frontier: List[ast.stmt] = []
    body = getattr(scope, "body", None)
    if isinstance(body, list):
        frontier.extend(body)
    while frontier:
        stmt = frontier.pop()
        yield stmt
        if isinstance(stmt, (*_SCOPE_NODES, ast.ClassDef)):
            continue
        for fieldname in _BLOCK_FIELDS:
            block = getattr(stmt, fieldname, None)
            if isinstance(block, list):
                frontier.extend(block)
        for handler in getattr(stmt, "handlers", ()) or ():
            frontier.extend(handler.body)


def _assignment_fixed_point(scope: ast.AST,
                            tainted: Set[str]) -> FrozenSet[str]:
    """Propagate taint through this scope's assignments until
    stable (handles chains like ``a = seed; b = a * 3``)."""
    assignments: List[Tuple[List[str], ast.expr]] = []
    for stmt in _own_statements(scope):
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            names = [n for t in stmt.targets
                     for n in _name_targets(t)]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            names = list(_name_targets(stmt.target))
        elif isinstance(stmt, ast.AugAssign):
            value = stmt.value
            names = list(_name_targets(stmt.target))
        elif (isinstance(stmt, (ast.For, ast.AsyncFor))
                and isinstance(stmt.iter, ast.expr)):
            value = stmt.iter
            names = list(_name_targets(stmt.target))
        else:
            continue
        if names:
            assignments.append((names, value))
    changed = True
    while changed:
        changed = False
        frozen = frozenset(tainted)
        for names, value in assignments:
            if _rooted(value, frozen) and not set(names) <= tainted:
                tainted.update(names)
                changed = True
    return frozenset(tainted)


def _name_targets(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _name_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _name_targets(target.value)


def scope_env(scope: ast.AST,
              inherited: FrozenSet[str] = frozenset()) -> SeedTaint:
    """The :class:`SeedTaint` environment for one scope: inherited
    closure taint + seed-ish parameters + local assignment taint."""
    tainted = set(inherited)
    if isinstance(scope, _SCOPE_NODES):
        tainted |= _scope_params(scope)
    return SeedTaint(_assignment_fixed_point(scope, tainted))


def iter_scoped_calls(tree: ast.Module
                      ) -> Iterator[Tuple[SeedTaint, ast.Call]]:
    """Yield ``(taint_env, call)`` for every call in the module, with
    the environment of the innermost enclosing scope (closures
    inherit the taint of every scope they are nested in)."""

    def walk(scope: ast.AST, inherited: FrozenSet[str]
             ) -> Iterator[Tuple[SeedTaint, ast.Call]]:
        env = scope_env(scope, inherited)
        body = getattr(scope, "body", None)
        frontier: List[ast.AST] = (
            list(body) if isinstance(body, list)
            else [body] if isinstance(body, ast.expr) else [])
        nested: List[ast.AST] = []
        while frontier:
            node = frontier.pop()
            if isinstance(node, (*_SCOPE_NODES, ast.ClassDef)):
                nested.append(node)
                continue
            if isinstance(node, ast.Call):
                yield env, node
            frontier.extend(ast.iter_child_nodes(node))
        for child in nested:
            child_inherited = (frozenset() if isinstance(
                child, ast.ClassDef) else env.tainted)
            yield from walk(child, child_inherited)

    yield from walk(tree, frozenset())
