"""Baseline files: adopt the lint gate without fixing history first.

A baseline is a JSON file listing :meth:`Finding.key` strings for
known, accepted findings. ``repro lint --baseline PATH`` suppresses
them; ``--write-baseline`` records the current findings so a dirty
tree can turn the gate on immediately and burn the list down over
time. Keys omit line numbers, so unrelated edits above a finding do
not invalidate the baseline.

The repo ships with an *empty* baseline — the tree is clean — but the
mechanism is load-bearing for downstream forks and for staged
rule-pack rollouts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence

from repro.analysis.engine import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> List[str]:
    """Read suppression keys from ``path`` (empty list if absent)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "suppressions" not in data:
        raise ValueError(
            f"baseline {path} is not a repro-lint baseline "
            "(expected an object with a 'suppressions' list)")
    keys = data["suppressions"]
    if not all(isinstance(key, str) for key in keys):
        raise ValueError(f"baseline {path}: suppressions must be strings")
    return list(keys)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": sorted(finding.key() for finding in findings),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
