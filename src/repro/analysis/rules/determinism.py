"""Determinism rules (DET): keep the replay/runtime layers
bit-reproducible.

Scenario fingerprints (sha256 over per-epoch records) and the
scalar-vs-vectorized parity suite both assume that nothing in
``runtime/`` or ``simulation/`` reads the wall clock or draws from
process-global randomness. ``time.perf_counter`` stays legal — it is
the designated clock for timing *metrics*, which are excluded from
fingerprints by construction — and seeded generators
(``np.random.default_rng(seed)``) are the sanctioned randomness
source.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import ImportMap, path_in_scope

#: modules whose determinism the fingerprint tests depend on
DETERMINISM_SCOPE = ("/runtime/", "/simulation/")

#: wall-clock reads that break bit-reproducibility
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: numpy legacy global-state RNG entry points
_NUMPY_GLOBAL_RNG = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "poisson", "exponential", "seed", "bytes",
})


class WallClockRule(Rule):
    """DET001 — wall-clock reads inside the deterministic layers."""

    rule_id = "DET001"
    title = "wall-clock call in a bit-reproducible module"

    def __init__(self,
                 scope: Sequence[str] = DETERMINISM_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualify(node.func)
            if qualified in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node.lineno,
                    f"{qualified}() reads the wall clock; scenario "
                    "fingerprints require simulated time (SimClock) "
                    "or time.perf_counter for timing metrics only")


class UnseededRandomRule(Rule):
    """DET002 — process-global or unseeded randomness in the
    deterministic layers."""

    rule_id = "DET002"
    title = "unseeded randomness in a bit-reproducible module"

    def __init__(self,
                 scope: Sequence[str] = DETERMINISM_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualify(node.func)
            if qualified is None:
                continue
            finding = self._classify(qualified, node)
            if finding is not None:
                yield self.finding(ctx, node.lineno, finding)

    def _classify(self, qualified: str,
                  node: ast.Call) -> Optional[str]:
        if qualified.startswith("random."):
            tail = qualified.split(".", 1)[1]
            if tail == "Random":
                if not node.args and not node.keywords:
                    return ("random.Random() without a seed draws "
                            "from OS entropy; pass an explicit seed")
                return None
            if tail == "SystemRandom":
                return ("random.SystemRandom is never reproducible; "
                        "use a seeded generator")
            return (f"random.{tail}() uses the process-global RNG; "
                    "use a seeded np.random.default_rng / "
                    "random.Random instead")
        if qualified == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                return ("np.random.default_rng() without a seed is "
                        "non-reproducible; thread an explicit seed "
                        "through the Scenario/config")
            return None
        if qualified == "numpy.random.RandomState":
            if not node.args and not node.keywords:
                return ("np.random.RandomState() without a seed is "
                        "non-reproducible; pass an explicit seed")
            return None
        if qualified.startswith("numpy.random."):
            tail = qualified.rsplit(".", 1)[1]
            if tail in _NUMPY_GLOBAL_RNG:
                return (f"np.random.{tail}() mutates numpy's global "
                        "RNG state; use a seeded "
                        "np.random.default_rng(seed) generator")
        return None
