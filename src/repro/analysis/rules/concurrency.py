"""Concurrency & determinism rules (RACE/ORD/DET003): schedule-race
and seed-provenance hazards in the event-driven runtime.

The event loop is single-threaded, so these are not data races in
the pthread sense — they are *ordering* races: behaviors that change
when two same-timestamp events swap places. The seq tie-break keeps
such code reproducible today, but only by accident of insertion
order; ``repro racecheck`` (the dynamic verifier) shuffles
same-instant events with :class:`~repro.runtime.events.PerturbedEventLoop`
and this pack is its static mirror — every rule here names a hazard
the perturbation replays would surface as a fingerprint divergence.

- RACE001 — module-scope mutable state written from two or more
  event-handler callables (callables reachable from an action passed
  to ``schedule_at``/``schedule_in``, per the project
  :class:`~repro.analysis.callgraph.CallGraph`). Last-writer-wins
  depends on dispatch order; route the mutation through one owner.
- RACE002 — a closure scheduled onto the loop captures a loop
  variable (classic late binding: every firing sees the final
  iteration) or a local that is rebound after the schedule call.
- ORD001 — two modules schedule at the *textually identical*
  timestamp expression; whichever fires first is decided solely by
  ``seq`` insertion order, i.e. by import/iteration accidents.
- DET003 — an RNG construction or seed-ish keyword argument whose
  value does not derive from the scenario seed (see
  :mod:`repro.analysis.dataflow`); hard-coded or ambient seeds break
  the single-root provenance the fingerprint contract assumes.

RACE001 and ORD001 are :class:`ProjectRule`\\ s: they accumulate
sites during the walk and conclude in ``finalize()``. Because
finalize findings bypass the engine's inline-pragma filter, both
rules record each site's pragma state while the file context is
still in hand and filter manually.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    SCHEDULE_METHODS,
    module_name_from_path,
    normalize_expr,
)
from repro.analysis.dataflow import is_seed_name, iter_scoped_calls
from repro.analysis.engine import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
)
from repro.analysis.rules.common import ImportMap, path_in_scope

#: every rule this pack ships (the racecheck static cross-check and
#: the CI self-scan run exactly this set)
CONCURRENCY_RULE_IDS = ("RACE001", "RACE002", "ORD001", "DET003")

#: modules whose event-dispatch behavior feeds scenario fingerprints
RUNTIME_SCOPE = ("/runtime/", "/simulation/", "/ingest/")

#: modules whose seeds must descend from Scenario.seed
SEED_SCOPE = ("/runtime/", "/simulation/", "/ingest/", "/sketch/")

#: RNG constructors whose first argument is the seed
_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class HandlerSharedStateRule(ProjectRule):
    """RACE001 — module-scope state written by several handlers."""

    rule_id = "RACE001"
    title = "shared module state written from multiple event handlers"

    def __init__(self,
                 scope: Sequence[str] = RUNTIME_SCOPE) -> None:
        self.scope = tuple(scope)
        self.graph = CallGraph()

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        before = len(self.graph.write_sites)
        self.graph.add_module(ctx.display_path, ctx.tree)
        for site in self.graph.write_sites[before:]:
            site.allowed = ctx.is_allowed(self.rule_id, site.lineno)
        return ()

    def finalize(self) -> Iterable[Finding]:
        reachable = self.graph.handler_reachable()
        grouped: Dict[Tuple[str, str], List] = {}
        for site in self.graph.write_sites:
            posix = site.file.replace("\\", "/")
            if not path_in_scope(posix, self.scope):
                continue
            if site.caller in reachable:
                grouped.setdefault((site.module, site.target),
                                   []).append(site)
        for (_, target), sites in sorted(grouped.items()):
            writers = sorted({site.caller for site in sites})
            if len(writers) < 2:
                continue
            writer_names = ", ".join(
                w.rsplit(".", 2)[-1] if "<" in w
                else ".".join(w.rsplit(".", 2)[-2:])
                for w in writers)
            for site in sites:
                if site.allowed:
                    continue
                yield Finding(
                    self.rule_id, self.severity, site.file,
                    site.lineno,
                    f"module state {target!r} is written from "
                    f"{len(writers)} event-handler callables "
                    f"({writer_names}); same-instant dispatch order "
                    "decides the final value — give the state a "
                    "single owning handler or route updates through "
                    "the EventLoop")


class ScheduledClosureRule(Rule):
    """RACE002 — scheduled closures capturing unstable locals."""

    rule_id = "RACE002"
    title = "scheduled closure captures a loop variable or rebound local"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._scan_scope(ctx, ctx.tree, [])

    def _scan_scope(self, ctx: FileContext, scope: ast.AST,
                    loop_stack: List[Set[str]]
                    ) -> Iterable[Finding]:
        local_defs = _local_functions(scope)
        rebinds = _local_rebind_lines(scope)
        for call, loops in _scoped_schedule_calls(scope, loop_stack):
            action = _action_expr(call)
            if action is None:
                continue
            captured = self._captured_names(action, local_defs)
            if captured is None:
                continue
            hazard: Set[str] = set()
            for loop_names in loops:
                hazard |= loop_names
            late = sorted(captured & hazard)
            for name in late:
                yield self.finding(
                    ctx, call.lineno,
                    f"scheduled closure captures loop variable "
                    f"{name!r} by reference; every firing sees the "
                    "final iteration's value — bind it at schedule "
                    f"time (e.g. a default argument {name}={name})")
            if not late:
                stale = sorted(
                    name for name in captured
                    if any(line > call.lineno
                           for line in rebinds.get(name, ())))
                for name in stale:
                    yield self.finding(
                        ctx, call.lineno,
                        f"scheduled closure captures {name!r}, which "
                        "is rebound after this schedule call; the "
                        "action will observe the later value — "
                        "bind the current value explicitly")
        for nested in _nested_scopes(scope):
            yield from self._scan_scope(ctx, nested, [])

    @staticmethod
    def _captured_names(action: ast.expr,
                        local_defs: Dict[str, ast.AST]
                        ) -> Optional[Set[str]]:
        if isinstance(action, ast.Lambda):
            return _free_names(action)
        if isinstance(action, ast.Name) and action.id in local_defs:
            return _free_names(local_defs[action.id])
        return None


class ScheduleCollisionRule(ProjectRule):
    """ORD001 — identical schedule_at timestamps across modules."""

    rule_id = "ORD001"
    title = "cross-module schedule_at at an identical timestamp"

    def __init__(self) -> None:
        # normalized time expression -> list of recorded sites
        self._sites: Dict[str, List[Tuple[str, str, int, bool]]] = {}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        module = module_name_from_path(ctx.posix_path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None)
            if name != "schedule_at":
                continue
            key = normalize_expr(node.args[0])
            self._sites.setdefault(key, []).append(
                (module, ctx.display_path, node.lineno,
                 ctx.is_allowed(self.rule_id, node.lineno)))
        return ()

    def finalize(self) -> Iterable[Finding]:
        for key, sites in sorted(self._sites.items()):
            modules = {module for module, _, _, _ in sites}
            if len(modules) < 2:
                continue
            for module, file, lineno, allowed in sites:
                if allowed:
                    continue
                others = sorted(
                    f"{other_file}:{other_line}"
                    for other_module, other_file, other_line, _
                    in sites if other_module != module)
                yield Finding(
                    self.rule_id, self.severity, file, lineno,
                    f"schedule_at({key}) collides with the same "
                    f"timestamp expression in {', '.join(others)}; "
                    "which fires first is decided by seq insertion "
                    "order — stagger the instants or fold both into "
                    "one scheduling site")


class SeedProvenanceRule(Rule):
    """DET003 — seeds that do not descend from the scenario seed."""

    rule_id = "DET003"
    title = "RNG/sketch seed not derived from the scenario seed"

    def __init__(self, scope: Sequence[str] = SEED_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for env, call in iter_scoped_calls(ctx.tree):
            handled = set()
            qualified = imports.qualify(call.func)
            if qualified in _RNG_CONSTRUCTORS:
                seed_expr: Optional[ast.expr] = None
                if call.args:
                    seed_expr = call.args[0]
                else:
                    for keyword in call.keywords:
                        if keyword.arg == "seed":
                            seed_expr = keyword.value
                            handled.add(id(keyword))
                if seed_expr is not None \
                        and not env.rooted(seed_expr):
                    yield self.finding(
                        ctx, call.lineno,
                        f"{qualified}(...) is seeded with a value "
                        "whose provenance does not reach the "
                        "scenario seed; derive it from "
                        "Scenario.seed (or a seed-named parameter/"
                        "attribute) so replays stay single-rooted")
            for keyword in call.keywords:
                if id(keyword) in handled:
                    continue
                if (keyword.arg is None
                        or not is_seed_name(keyword.arg)):
                    continue
                if not env.rooted(keyword.value):
                    yield self.finding(
                        ctx, call.lineno,
                        f"keyword {keyword.arg}= receives a value "
                        "whose provenance does not reach the "
                        "scenario seed; thread the seed from "
                        "Scenario.seed instead of a constant or "
                        "ambient value")


# -- RACE002 helpers ---------------------------------------------------------


def _action_expr(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) > 1:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "action":
            return keyword.value
    return None


def _nested_scopes(scope: ast.AST) -> List[ast.AST]:
    """Function/lambda scopes one nesting level inside ``scope``
    (class bodies are transparent: methods count as nested here)."""
    found: List[ast.AST] = []
    frontier = _scope_children(scope)
    while frontier:
        node = frontier.pop()
        if isinstance(node, _SCOPE_NODES):
            found.append(node)
            continue
        frontier.extend(ast.iter_child_nodes(node))
    return found


def _scope_children(scope: ast.AST) -> List[ast.AST]:
    body = getattr(scope, "body", None)
    if isinstance(body, list):
        return list(body)
    if isinstance(body, ast.expr):
        return [body]
    return []


def _scoped_schedule_calls(scope: ast.AST,
                           loop_stack: List[Set[str]]
                           ) -> List[Tuple[ast.Call, List[Set[str]]]]:
    """``schedule_*`` calls in ``scope`` (excluding nested function
    scopes), each paired with the loop-variable sets of the loops
    enclosing it at that point."""
    calls: List[Tuple[ast.Call, List[Set[str]]]] = []

    def descend(node: ast.AST, loops: List[Set[str]]) -> None:
        if isinstance(node, _SCOPE_NODES):
            return
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None)
            if name in SCHEDULE_METHODS:
                calls.append((node, list(loops)))
        if isinstance(node, (ast.For, ast.AsyncFor)):
            names = set(_loop_target_names(node.target))
            names |= _assigned_names(node.body)
            for child in (*node.body, *node.orelse):
                descend(child, [*loops, names])
            descend(node.iter, loops)
            return
        if isinstance(node, ast.While):
            names = _assigned_names(node.body)
            for child in (*node.body, *node.orelse):
                descend(child, [*loops, names])
            descend(node.test, loops)
            return
        for child in ast.iter_child_nodes(node):
            descend(child, loops)

    for child in _scope_children(scope):
        descend(child, list(loop_stack))
    return calls


def _loop_target_names(target: ast.expr) -> List[str]:
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


def _assigned_names(body: Sequence[ast.stmt]) -> Set[str]:
    """Names rebound by plain assignments inside a loop body
    (excluding nested function scopes)."""
    names: Set[str] = set()
    frontier: List[ast.AST] = list(body)
    while frontier:
        node = frontier.pop()
        if isinstance(node, (*_SCOPE_NODES, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign,
                             ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                names.update(_loop_target_names(target))
        frontier.extend(ast.iter_child_nodes(node))
    return names


def _local_functions(scope: ast.AST) -> Dict[str, ast.AST]:
    """Named functions defined directly in ``scope``'s statement
    body (the candidates a bare-name action can refer to)."""
    defs: Dict[str, ast.AST] = {}
    frontier = _scope_children(scope)
    while frontier:
        node = frontier.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = node
            continue
        if isinstance(node, (*_SCOPE_NODES, ast.ClassDef)):
            continue
        frontier.extend(ast.iter_child_nodes(node))
    return defs


def _local_rebind_lines(scope: ast.AST) -> Dict[str, List[int]]:
    """Line numbers at which each local name is (re)assigned inside
    ``scope`` (nested scopes excluded)."""
    lines: Dict[str, List[int]] = {}
    frontier = _scope_children(scope)
    while frontier:
        node = frontier.pop()
        if isinstance(node, (*_SCOPE_NODES, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign,
                             ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for name in _loop_target_names(target):
                    lines.setdefault(name, []).append(node.lineno)
        frontier.extend(ast.iter_child_nodes(node))
    return lines


def _free_names(func: ast.AST) -> Set[str]:
    """Loaded names in a function/lambda body that it neither binds
    as a parameter nor assigns locally — its captured environment."""
    if isinstance(func, ast.Lambda):
        bodies: List[ast.AST] = [func.body]
    else:
        bodies = list(getattr(func, "body", []))
    params: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg))):
            params.add(arg.arg)
    loaded: Set[str] = set()
    bound: Set[str] = set(params)
    frontier: List[ast.AST] = list(bodies)
    while frontier:
        node = frontier.pop()
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            else:
                bound.add(node.id)
        # doubly-nested scopes are folded in wholesale: their frees
        # still flow through this closure, and their locals landing
        # in ``bound`` only ever hides a name (no false positives)
        frontier.extend(ast.iter_child_nodes(node))
    return loaded - bound
