"""Hygiene rules (HYG): review-time catches for known failure modes.

- HYG001 — ``build_model()`` inside a loop. PR 2 fixed a real
  non-idempotence bug where rebuilding into a cached model duplicated
  every variable; even now that the call is idempotent, a loop around
  it is either dead weight or a misunderstanding of the
  build-once/patch-many lifecycle (use ``resolve()`` for sweeps).
  Inside the controller package the same rule also flags
  ``*Problem(...)`` constructions in loop bodies: planners keep one
  warm problem per shard and patch it via ``resolve_traffic()``, so a
  per-iteration constructor there silently discards the warm LP. The
  one legitimate lazy-construction site carries an inline
  ``# repro-lint: allow[HYG001]`` pragma.
- HYG002 — mutable default arguments, the classic shared-state bug.
- HYG003 — unused module-level imports (the bulk of what
  ``ruff check``'s default F-rules flag; checking it here keeps the
  tree clean even where ruff is not installed).
- HYG004 — un- or partially-annotated function definitions inside the
  strict-typing scope (``lpsolve/``, ``obs/``, ``analysis/``); this is
  the local, dependency-free stand-in for the CI ``mypy`` gate.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set, Union

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import call_name, path_in_scope

#: packages the CI mypy job checks in strict mode
STRICT_TYPING_SCOPE = ("/lpsolve/", "/obs/", "/analysis/")

#: packages where problem objects follow the build-once/patch-many
#: lifecycle — constructing one inside a loop abandons the warm LP
PLANNER_SCOPE = ("/core/controller/",)

_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.SetComp, ast.DictComp)
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})


class BuildModelInLoopRule(Rule):
    """HYG001 — build-once/patch-many objects rebuilt inside a loop.

    Flags ``build_model()`` calls in any loop body, plus — inside the
    controller package (:data:`PLANNER_SCOPE`) — ``*Problem(...)``
    constructor calls, which throw away the warm compiled LP a planner
    is supposed to keep patching via ``resolve_traffic()``.
    """

    rule_id = "HYG001"
    title = "build-once object rebuilt inside a loop"

    def __init__(self, planner_scope: Sequence[str] = PLANNER_SCOPE
                 ) -> None:
        self.planner_scope = tuple(planner_scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        in_planner = path_in_scope(ctx.posix_path, self.planner_scope)
        for loop in ast.walk(ctx.tree):
            if isinstance(loop, _LOOP_NODES):
                bodies = [*loop.body, *loop.orelse]
            elif isinstance(loop, _COMPREHENSIONS):
                bodies = [loop]
            else:
                continue
            for body_node in bodies:
                for node in ast.walk(body_node):
                    if not isinstance(node, ast.Call):
                        continue
                    name = call_name(node)
                    if name == "build_model":
                        yield self.finding(
                            ctx, node.lineno,
                            "build_model() inside a loop: the model "
                            "is built once and cached — sweeps "
                            "should patch parameters via resolve() "
                            "(see Formulation), not rebuild per "
                            "iteration")
                    elif (in_planner and name is not None
                            and name.endswith("Problem")):
                        yield self.finding(
                            ctx, node.lineno,
                            f"{name}(...) constructed inside a loop: "
                            "planners keep one warm problem per "
                            "shard and patch it via "
                            "resolve_traffic(); rebuilding per "
                            "iteration abandons the compiled LP "
                            "(pragma the one lazy-construction site "
                            "with allow[HYG001])")


class MutableDefaultRule(Rule):
    """HYG002 — mutable default argument values."""

    rule_id = "HYG002"
    title = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults,
                        *[d for d in node.args.kw_defaults
                          if d is not None]]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default.lineno,
                        f"function {node.name!r} has a mutable "
                        "default argument; defaults are evaluated "
                        "once and shared across calls — use None "
                        "and create the value inside the body")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            return name in _MUTABLE_CTORS
        return False


class _UsageCollector(ast.NodeVisitor):
    """Collects every name that could satisfy an import.

    Usage includes attribute roots (``np.array`` uses ``np``) and
    identifiers inside *string* annotations (``"Model"``), which stay
    strings under ``from __future__ import annotations``.
    """

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self._annotation_depth = 0

    def visit_Name(self, node: ast.Name) -> None:
        self.names.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if self._annotation_depth and isinstance(node.value, str):
            for token in _identifier_tokens(node.value):
                self.names.add(token)

    def _visit_annotation(self, node: ast.AST) -> None:
        self._annotation_depth += 1
        self.visit(node)
        self._annotation_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node: Union[ast.FunctionDef,
                                           ast.AsyncFunctionDef]
                         ) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg))):
            if arg.annotation is not None:
                self._visit_annotation(arg.annotation)
        if node.returns is not None:
            self._visit_annotation(node.returns)
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_annotation(node.annotation)
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)


def _identifier_tokens(text: str) -> List[str]:
    """Identifier-shaped tokens inside a string annotation."""
    tokens: List[str] = []
    current: List[str] = []
    for char in text:
        if char.isidentifier() or (current and char.isdigit()):
            current.append(char)
        else:
            if current:
                tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return tokens


class UnusedImportRule(Rule):
    """HYG003 — module-level imports never referenced."""

    rule_id = "HYG003"
    title = "unused import"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.name == "__init__.py":
            # Package __init__ files import to re-export.
            return
        collector = _UsageCollector()
        collector.visit(ctx.tree)
        used = collector.names
        exported = _dunder_all(ctx.tree)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if local not in used and local not in exported:
                        yield self.finding(
                            ctx, node.lineno,
                            f"import {alias.name!r} is unused")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    if local not in used and local not in exported:
                        source = node.module or "."
                        yield self.finding(
                            ctx, node.lineno,
                            f"'{local}' imported from {source!r} "
                            "is unused")


def _dunder_all(tree: ast.Module) -> Set[str]:
    exported: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for element in ast.walk(value):
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        exported.add(element.value)
    return exported


class StrictAnnotationRule(Rule):
    """HYG004 — incomplete annotations in the strict-typing scope."""

    rule_id = "HYG004"
    title = "missing annotations in a strictly-typed package"

    def __init__(self,
                 scope: Sequence[str] = STRICT_TYPING_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            missing: List[str] = []
            if node.returns is None:
                missing.append("return type")
            args = node.args
            for arg in (*args.posonlyargs, *args.args,
                        *args.kwonlyargs,
                        *filter(None, (args.vararg, args.kwarg))):
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(f"argument {arg.arg!r}")
            if missing:
                yield self.finding(
                    ctx, node.lineno,
                    f"def {node.name} is missing annotations "
                    f"({', '.join(missing)}); this package is in "
                    "the mypy strict scope")
