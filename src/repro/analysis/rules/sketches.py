"""Sketch rules (SKT): keep the streaming estimators mergeable.

OctoSketch-style aggregation (``ClassVolumeSketch.merge``) is only
lossless when every worker hashes with the *same configured seed* —
two sketches built from wall-clock or entropy-derived seeds disagree
on every row permutation and refuse to merge. The estimation layers
(:mod:`repro.sketch`, :mod:`repro.ingest`) therefore ban wall-clock
reads and process-global randomness outright, and require every
``*Sketch(...)`` construction to pass an explicit ``seed=`` keyword
(the constructors are keyword-only on ``seed`` for exactly this
reason). ``time.perf_counter`` stays legal — it is the designated
clock for throughput metrics, which never feed a hash.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import ImportMap, path_in_scope
from repro.analysis.rules.determinism import (
    UnseededRandomRule,
    WALL_CLOCK_CALLS,
)

#: modules whose sketches must stay mergeable across workers
SKETCH_SCOPE = ("/sketch/", "/ingest/")


class SketchSeedRule(Rule):
    """SKT001 — unseeded or wall-clock sketch state in the
    estimation layers."""

    rule_id = "SKT001"
    title = "unseeded or wall-clock sketch state"

    def __init__(self, scope: Sequence[str] = SKETCH_SCOPE) -> None:
        self.scope = tuple(scope)
        # DET002's classifier already knows every global/unseeded RNG
        # spelling; reuse it (same package) rather than fork the list.
        self._random = UnseededRandomRule(scope=self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualify(node.func)
            if qualified in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node.lineno,
                    f"{qualified}() reads the wall clock in a sketch "
                    "layer; hash seeds and windows must come from "
                    "configuration (time.perf_counter is fine for "
                    "throughput metrics)")
                continue
            if qualified is not None:
                message = self._random._classify(qualified, node)
                if message is not None:
                    yield self.finding(
                        ctx, node.lineno,
                        f"{message}; an entropy-derived seed makes "
                        "worker sketches unmergeable")
                    continue
            yield from self._check_constructor(ctx, node)

    def _check_constructor(self, ctx: FileContext,
                           node: ast.Call) -> Iterable[Finding]:
        name = _constructed_name(node)
        if name is None or not name.endswith("Sketch"):
            return
        if not name[0].isupper():
            return
        has_splat = any(kw.arg is None for kw in node.keywords)
        has_seed = any(kw.arg == "seed" for kw in node.keywords)
        if has_seed or has_splat:
            # A **kwargs splat may carry the seed; trust it rather
            # than guess.
            return
        yield self.finding(
            ctx, node.lineno,
            f"{name}(...) without an explicit seed= keyword; "
            "mergeable sketches require identical configured hash "
            "seeds on every worker")


def _constructed_name(node: ast.Call) -> str | None:
    """Trailing class-ish name of a call target, or ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
