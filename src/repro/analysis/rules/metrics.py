"""Metrics rules (MET): call sites and the docs table cannot drift.

Every ``registry.inc/gauge/observe/span`` call with a statically-known
name is cross-checked against the ``## Metric names`` table in
``docs/observability.md``:

- MET001 (emitted per call site) — the name is undocumented, or its
  kind contradicts the documented kind (e.g. ``inc`` on a documented
  gauge).
- MET002 (emitted once, at finalize) — a documented name no longer
  has any call site: a stale row that would mislead anyone grepping
  the docs.

The ``repro.obs`` package itself (the registry/export plumbing, which
forwards caller-supplied names) is out of scope.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.docsync import (
    MetricCall,
    load_documented_metrics,
    match_documented,
    scan_metric_calls,
    stale_documented,
)
from repro.analysis.engine import (
    FileContext,
    Finding,
    ProjectRule,
    Severity,
)
from repro.analysis.rules.common import path_in_scope

#: the metric plumbing itself forwards arbitrary caller names
_EXCLUDED = ("/obs/",)

DOC_RELATIVE_PATH = Path("docs") / "observability.md"


class MetricsDocRule(ProjectRule):
    """MET001/MET002 — metric call sites vs the documented table."""

    rule_id = "MET001"
    title = "metric names must match docs/observability.md"

    def __init__(self, doc_path: Optional[Path]) -> None:
        self.doc_path = doc_path
        self._calls: List[Tuple[FileContext, MetricCall]] = []
        self._documented: Optional[Dict[str, str]] = None
        self._doc_error: Optional[str] = None
        if doc_path is not None and doc_path.exists():
            try:
                self._documented = load_documented_metrics(doc_path)
            except ValueError as exc:
                self._doc_error = str(exc)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if path_in_scope(ctx.posix_path, _EXCLUDED):
            return
        calls = scan_metric_calls(ctx.tree)
        if not calls:
            return
        for call in calls:
            self._calls.append((ctx, call))
        if self._documented is None:
            return
        for call in calls:
            matched, doc_kind = match_documented(call,
                                                 self._documented)
            if not matched:
                yield Finding(
                    "MET001", Severity.ERROR, ctx.display_path,
                    call.line,
                    f"metric {call.pattern!r} ({call.kind}) is not "
                    "documented in docs/observability.md — add a row "
                    "to the '## Metric names' table")
            elif doc_kind != call.kind:
                yield Finding(
                    "MET001", Severity.ERROR, ctx.display_path,
                    call.line,
                    f"metric {call.pattern!r} is recorded as a "
                    f"{call.kind} but documented as a {doc_kind}")

    def finalize(self) -> Iterable[Finding]:
        doc_name = str(self.doc_path) if self.doc_path else \
            str(DOC_RELATIVE_PATH)
        if self._doc_error is not None:
            yield Finding("MET002", Severity.ERROR, doc_name, 0,
                          f"unparseable metric table: "
                          f"{self._doc_error}")
            return
        if self._documented is None:
            if self._calls:
                yield Finding(
                    "MET002", Severity.ERROR, doc_name, 0,
                    f"{len(self._calls)} metric call site(s) found "
                    "but the observability doc is missing — the "
                    "metric namespace has no source of truth")
            return
        calls = [call for _, call in self._calls]
        if not calls:
            # A partial scan (no instrumented file in the path set)
            # says nothing about staleness.
            return
        for name in stale_documented(self._documented, calls):
            yield Finding(
                "MET002", Severity.ERROR, doc_name, 0,
                f"documented metric {name!r} has no call site left "
                "in the tree — delete the stale row (or restore the "
                "instrumentation)")
