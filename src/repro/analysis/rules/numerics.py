"""Numerics rules (NUM): float discipline on solver and hash paths.

NUM001 guards against ``==`` on LP solution values — solver outputs
are floating-point and backend-dependent in their last bits, so exact
comparison is a latent flake (use ``math.isclose`` /
``pytest.approx`` / an explicit tolerance). NUM002 guards the
vectorized hash path: lookup3 is bit-exact only when every array on
the path wraps modulo 2^32, which in numpy means *explicit*
``uint32`` dtypes — an implicit ``int64`` array silently changes
hashes for the top half of the space. NUM003 guards the zero-copy
trace path: ``np.memmap`` / ``np.frombuffer`` reinterpret raw bytes
as whatever dtype they are told — and their *defaults* disagree
(``uint8`` vs ``float64``), so a dtype-less call silently decodes
the trace store's columns as the wrong width.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import ImportMap, path_in_scope

#: attributes whose values come out of the solver
_SOLUTION_ATTRS = frozenset({"objective_value", "solve_seconds"})
#: methods whose return values come out of the solver
_SOLUTION_METHODS = frozenset({"value", "dual"})
#: comparison wrappers that make float comparison legitimate
_TOLERANT_CALLS = frozenset({"approx", "isclose", "allclose"})

#: modules where implicit numpy dtypes can corrupt hash values
HASH_PATH_SCOPE = ("/shim/",)

#: numpy array constructors that must pin a dtype on the hash path
_ARRAY_CTORS = frozenset({
    "numpy.array", "numpy.asarray", "numpy.zeros", "numpy.ones",
    "numpy.empty", "numpy.full", "numpy.arange",
})

#: modules where raw-byte reinterpretation feeds the replay engines
TRACE_PATH_SCOPE = ("/simulation/",)

#: byte-reinterpreting constructors that must pin a dtype on the
#: trace path (their defaults disagree: uint8 vs float64)
_RAW_BYTE_CTORS = frozenset({"numpy.memmap", "numpy.frombuffer"})


def _is_solution_value(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _SOLUTION_ATTRS
    if isinstance(node, ast.Call) and isinstance(node.func,
                                                 ast.Attribute):
        return node.func.attr in _SOLUTION_METHODS
    return False


def _is_tolerant(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return name in _TOLERANT_CALLS


class FloatEqualityRule(Rule):
    """NUM001 — exact ``==`` / ``!=`` on LP solution values."""

    rule_id = "NUM001"
    title = "float equality on an LP solution value"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_tolerant(operand) for operand in operands):
                continue
            if any(_is_solution_value(operand)
                   for operand in operands):
                yield self.finding(
                    ctx, node.lineno,
                    "exact ==/!= on a solver output (objective_value "
                    "/ .value() / .dual()); solver floats differ "
                    "across backends in their last bits — compare "
                    "with a tolerance (math.isclose, pytest.approx)")


class HashDtypeRule(Rule):
    """NUM002 — numpy arrays built without an explicit dtype on the
    uint32 hash path."""

    rule_id = "NUM002"
    title = "hash-path numpy array without explicit dtype"

    def __init__(self, scope: Sequence[str] = HASH_PATH_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualify(node.func)
            if qualified not in _ARRAY_CTORS:
                continue
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            if not has_dtype:
                ctor = qualified.rsplit(".", 1)[1]
                yield self.finding(
                    ctx, node.lineno,
                    f"np.{ctor}(...) without dtype= on the hash "
                    "path; lookup3 is bit-exact only under "
                    "disciplined uint32 (or an explicitly chosen) "
                    "dtype — implicit int64 silently changes hashes")


class MemmapDtypeRule(Rule):
    """NUM003 — ``np.memmap`` / ``np.frombuffer`` without an explicit
    dtype on the zero-copy trace path."""

    rule_id = "NUM003"
    title = "trace-path byte reinterpretation without explicit dtype"

    def __init__(self,
                 scope: Sequence[str] = TRACE_PATH_SCOPE) -> None:
        self.scope = tuple(scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not path_in_scope(ctx.posix_path, self.scope):
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualify(node.func)
            if qualified not in _RAW_BYTE_CTORS:
                continue
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            if not has_dtype:
                ctor = qualified.rsplit(".", 1)[1]
                yield self.finding(
                    ctx, node.lineno,
                    f"np.{ctor}(...) without dtype= on the trace "
                    "path; it reinterprets raw bytes and the "
                    "defaults disagree (memmap=uint8, "
                    "frombuffer=float64) — a dtype-less call decodes "
                    "trace-store columns at the wrong width")
