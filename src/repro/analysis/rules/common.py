"""Shared AST helpers for the rule packs."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Sequence


class ImportMap:
    """Resolves local names back to qualified import paths.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from datetime import datetime`` maps ``datetime`` to
    ``datetime.datetime``; ``from time import time`` maps ``time`` to
    ``time.time``. :meth:`qualify` then rewrites a dotted call target
    through the map, so rules can match on canonical module paths no
    matter how the file spelled its imports.
    """

    def __init__(self, aliases: Dict[str, str]) -> None:
        self.aliases = aliases

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are project-internal
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return cls(aliases)

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an expression, or None.

        ``np.random.default_rng`` (with ``import numpy as np``)
        resolves to ``numpy.random.default_rng``.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0])
        if root is not None:
            parts[0] = root
        return ".".join(parts)


def path_in_scope(posix_path: str,
                  patterns: Sequence[str]) -> bool:
    """True when the file path contains any of the scope fragments.

    A path that *starts* at a scope directory (``runtime/x.py``, as
    produced when the scan root is the package itself) matches the
    ``/runtime/`` fragment too.
    """
    return any(pattern in posix_path
               or posix_path.startswith(pattern.lstrip("/"))
               for pattern in patterns)


def call_name(node: ast.Call) -> Optional[str]:
    """Bare trailing name of a call target (``x.build_model`` ->
    ``build_model``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
