"""Rule packs for the :mod:`repro.analysis` engine.

Rules are grouped by the invariant family they protect:

- :mod:`~repro.analysis.rules.determinism` (DET) — bit-reproducible
  runtime/simulation layers.
- :mod:`~repro.analysis.rules.numerics` (NUM) — float and dtype
  discipline on solver and hash paths.
- :mod:`~repro.analysis.rules.metrics` (MET) — metric namespace vs
  the documented table.
- :mod:`~repro.analysis.rules.hygiene` (HYG) — general code health
  plus the strict-typing scope gate.
- :mod:`~repro.analysis.rules.sketches` (SKT) — mergeable,
  reproducibly-seeded streaming estimators.
- :mod:`~repro.analysis.rules.concurrency` (RACE/ORD/DET003) —
  schedule-race and seed-provenance hazards, built on the
  project-wide :mod:`~repro.analysis.callgraph` and
  :mod:`~repro.analysis.dataflow` layers; mirrored dynamically by
  ``repro racecheck``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import Rule
from repro.analysis.rules.concurrency import (
    CONCURRENCY_RULE_IDS,
    HandlerSharedStateRule,
    ScheduleCollisionRule,
    ScheduledClosureRule,
    SeedProvenanceRule,
)
from repro.analysis.rules.determinism import (
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.hygiene import (
    BuildModelInLoopRule,
    MutableDefaultRule,
    StrictAnnotationRule,
    UnusedImportRule,
)
from repro.analysis.rules.metrics import (
    DOC_RELATIVE_PATH,
    MetricsDocRule,
)
from repro.analysis.rules.numerics import (
    FloatEqualityRule,
    HashDtypeRule,
    MemmapDtypeRule,
)
from repro.analysis.rules.sketches import SketchSeedRule

__all__ = [
    "BuildModelInLoopRule",
    "CONCURRENCY_RULE_IDS",
    "FloatEqualityRule",
    "HandlerSharedStateRule",
    "HashDtypeRule",
    "MemmapDtypeRule",
    "MetricsDocRule",
    "MutableDefaultRule",
    "ScheduleCollisionRule",
    "ScheduledClosureRule",
    "SeedProvenanceRule",
    "SketchSeedRule",
    "StrictAnnotationRule",
    "UnseededRandomRule",
    "UnusedImportRule",
    "WallClockRule",
    "default_rules",
]


def default_rules(project_root: Optional[Path] = None) -> List[Rule]:
    """The full shipped rule set.

    The metrics cross-check needs a project root to find
    ``docs/observability.md``; without one it still runs (so a
    metric-emitting tree without docs fails loudly) but resolves the
    doc path relative to the current directory.
    """
    doc_path = (project_root or Path(".")) / DOC_RELATIVE_PATH
    return [
        WallClockRule(),
        UnseededRandomRule(),
        FloatEqualityRule(),
        HashDtypeRule(),
        MemmapDtypeRule(),
        BuildModelInLoopRule(),
        MutableDefaultRule(),
        UnusedImportRule(),
        StrictAnnotationRule(),
        SketchSeedRule(),
        MetricsDocRule(doc_path),
        HandlerSharedStateRule(),
        ScheduledClosureRule(),
        ScheduleCollisionRule(),
        SeedProvenanceRule(),
    ]
