"""Traffic classes, gravity-model matrices, and temporal variability.

Implements the evaluation setup of Section 8.2: a traffic matrix for
every ingress-egress PoP pair from a population gravity model, total
volume anchored at 8 million sessions for the 11-PoP Internet2 network
and scaled linearly with PoP count, plus an empirical-CDF variability
model that produces families of time-varying traffic matrices.
"""

from repro.traffic.classes import TrafficClass, DEFAULT_RESOURCES
from repro.traffic.matrix import EstimatedTrafficMatrix, TrafficMatrix
from repro.traffic.gravity import (
    gravity_traffic,
    gravity_traffic_matrix,
    paper_total_sessions,
    classes_from_matrix,
)
from repro.traffic.variability import TrafficVariabilityModel
from repro.traffic.applications import (
    ApplicationProfile,
    DEFAULT_APPLICATION_MIX,
    classes_with_applications,
    port_classifier_map,
    validate_mix,
)

__all__ = [
    "ApplicationProfile",
    "DEFAULT_APPLICATION_MIX",
    "DEFAULT_RESOURCES",
    "classes_with_applications",
    "port_classifier_map",
    "validate_mix",
    "TrafficClass",
    "EstimatedTrafficMatrix",
    "TrafficMatrix",
    "TrafficVariabilityModel",
    "classes_from_matrix",
    "gravity_traffic",
    "gravity_traffic_matrix",
    "paper_total_sessions",
]
