"""Application-level traffic classes (Section 3, input 1).

The paper identifies a class by a source/destination prefix pair *and*
application ports — "HTTP sessions may be analyzed by a payload
signature engine and through application-specific rules, while all
traffic (itself a class) might be subject to Scan analysis". The
evaluation collapses this to one aggregate class per pair "for
brevity"; this module provides the general form: an application mix
that splits each pair's volume into per-application classes with their
own ports, footprints, and session sizes (footnote 1: distinct logical
classes sharing the same routing path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.routing import RoutingTable, shortest_path_routing
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class ApplicationProfile:
    """One application's share of traffic and per-session behavior.

    Attributes:
        name: application label (e.g., ``"http"``).
        port: well-known destination port identifying the class.
        volume_share: fraction of each pair's sessions.
        session_bytes: mean bytes per session.
        footprints: per-session resource cost of this application's
            NIDS analysis (e.g., HTTP inspection is pricier than DNS).
        record_bytes: intermediate-report record size for aggregation.
    """

    name: str
    port: int
    volume_share: float
    session_bytes: float
    footprints: Tuple[Tuple[str, float], ...] = (("cpu", 1.0),)
    record_bytes: float = 16.0

    def footprint_dict(self) -> Dict[str, float]:
        return dict(self.footprints)


# A default enterprise-ish mix; shares sum to 1. Footprints reflect
# that payload-heavy protocols cost more per session to analyze [8].
DEFAULT_APPLICATION_MIX: Tuple[ApplicationProfile, ...] = (
    ApplicationProfile("http", 80, 0.45, 30_000.0, (("cpu", 1.2),)),
    ApplicationProfile("https", 443, 0.30, 25_000.0, (("cpu", 0.6),)),
    ApplicationProfile("smtp", 25, 0.10, 8_000.0, (("cpu", 1.0),)),
    ApplicationProfile("dns", 53, 0.10, 600.0, (("cpu", 0.2),)),
    ApplicationProfile("irc", 6667, 0.05, 4_000.0, (("cpu", 1.5),)),
)


def validate_mix(mix: Sequence[ApplicationProfile]) -> None:
    """Raise ``ValueError`` unless the mix is a sane distribution."""
    if not mix:
        raise ValueError("application mix is empty")
    total = sum(app.volume_share for app in mix)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"volume shares sum to {total}, expected 1")
    if any(app.volume_share < 0 for app in mix):
        raise ValueError("negative volume share")
    names = [app.name for app in mix]
    if len(set(names)) != len(names):
        raise ValueError("duplicate application names")
    ports = [app.port for app in mix]
    if len(set(ports)) != len(ports):
        raise ValueError("duplicate application ports")


def classes_with_applications(
        topology: Topology, matrix: TrafficMatrix,
        mix: Sequence[ApplicationProfile] = DEFAULT_APPLICATION_MIX,
        routing: Optional[RoutingTable] = None) -> List[TrafficClass]:
    """Per-application classes for every nonzero matrix entry.

    Each ingress-egress pair yields ``len(mix)`` classes sharing one
    routing path (footnote 1), with volumes/footprints/sizes from the
    application profiles. Class names are ``"src->dst/app"``.
    """
    validate_mix(mix)
    if routing is None:
        routing = shortest_path_routing(topology)
    classes: List[TrafficClass] = []
    for (source, target), volume in matrix.items():
        path = routing.path(source, target)
        for app in mix:
            share = volume * app.volume_share
            if share <= 0:
                continue
            classes.append(TrafficClass(
                name=f"{source}->{target}/{app.name}",
                source=source, target=target, path=path,
                num_sessions=share,
                session_bytes=app.session_bytes,
                footprints=app.footprint_dict(),
                record_bytes=app.record_bytes))
    return classes


def port_classifier_map(mix: Sequence[ApplicationProfile]
                        ) -> Dict[int, str]:
    """Destination-port -> application-name lookup (what the shim's
    class inference uses alongside the prefix pair)."""
    validate_mix(mix)
    return {app.port: app.name for app in mix}
