"""Traffic classes — the unit the optimizations reason about.

A class (Section 3, input 1) is a set of end-to-end sessions sharing a
routing path, identified in the paper by prefix pair and optionally
application ports. Following Section 8 we default to a single aggregate
class per ingress-egress pair, but nothing prevents several classes on
one path (e.g., HTTP and IRC between the same prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

# Resource kinds ``r`` with per-session footprints ``F_c^r``. The paper
# names CPU cycles and resident memory as examples; CPU is the default.
DEFAULT_RESOURCES = ("cpu",)


@dataclass(frozen=True)
class TrafficClass:
    """One traffic class ``c``.

    Attributes:
        name: unique identifier (e.g., ``"ATLA->NYCM"``).
        source: ingress PoP.
        target: egress PoP.
        path: symmetric routing path ``P_c`` (nodes, ingress first).
        num_sessions: ``|T_c|`` — session count for the epoch.
        session_bytes: ``Size_c`` — mean bytes per session, used to
            convert session counts into link bytes for Eq (4).
        footprints: ``F_c^r`` — per-session resource cost by resource
            name.
        record_bytes: ``Rec_c`` — bytes per intermediate report record
            for the aggregation formulation (Eq (13)).
        rev_path: reverse-direction path ``P_c^rev`` when routing is
            asymmetric; ``None`` means symmetric (reverse of ``path``).
    """

    name: str
    source: str
    target: str
    path: Tuple[str, ...]
    num_sessions: float
    session_bytes: float = 20_000.0
    footprints: Dict[str, float] = field(
        default_factory=lambda: {"cpu": 1.0})
    record_bytes: float = 16.0
    rev_path: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError(f"class {self.name!r} has an empty path")
        if self.path[0] != self.source:
            raise ValueError(
                f"class {self.name!r}: path must start at the source")
        if self.num_sessions < 0:
            raise ValueError(
                f"class {self.name!r}: negative session count")
        if self.session_bytes <= 0:
            raise ValueError(
                f"class {self.name!r}: session_bytes must be positive")
        for resource, cost in self.footprints.items():
            if cost < 0:
                raise ValueError(
                    f"class {self.name!r}: negative footprint for "
                    f"{resource!r}")

    @property
    def ingress(self) -> str:
        """The ingress gateway — today's deployment point (Figure 1)."""
        return self.path[0]

    @property
    def is_symmetric(self) -> bool:
        """True when forward and reverse traverse the same nodes."""
        return self.rev_path is None

    @property
    def fwd_nodes(self) -> Tuple[str, ...]:
        """``P_c^fwd`` — nodes observing the forward direction."""
        return self.path

    @property
    def rev_nodes(self) -> Tuple[str, ...]:
        """``P_c^rev`` — nodes observing the reverse direction."""
        if self.rev_path is not None:
            return self.rev_path
        return tuple(reversed(self.path))

    @property
    def common_nodes(self) -> Tuple[str, ...]:
        """``P_c^common`` — nodes observing both directions."""
        rev = set(self.rev_nodes)
        return tuple(n for n in self.path if n in rev)

    @property
    def total_bytes(self) -> float:
        """Aggregate bytes carried by this class in the epoch."""
        return self.num_sessions * self.session_bytes

    def footprint(self, resource: str) -> float:
        """``F_c^r`` for one resource (0.0 if the class is exempt)."""
        return self.footprints.get(resource, 0.0)

    def scaled(self, factor: float) -> "TrafficClass":
        """Copy with the session count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(self, num_sessions=self.num_sessions * factor)

    def with_paths(self, fwd_path: Tuple[str, ...],
                   rev_path: Optional[Tuple[str, ...]]) -> "TrafficClass":
        """Copy with replaced forward/reverse paths (asymmetry)."""
        return replace(self, path=tuple(fwd_path),
                       source=fwd_path[0], target=fwd_path[-1],
                       rev_path=None if rev_path is None
                       else tuple(rev_path))
