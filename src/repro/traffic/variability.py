"""Temporal traffic variability (Section 8.2, Figure 15).

The paper derives empirical CDFs of per-entry variation from measured
Internet2 traffic matrices and then samples 100 time-varying matrices.
The measured matrices are not shipped here, so the default model is an
empirical CDF *shaped like* measured backbone variability: heavy-tailed
multiplicative factors with mean 1 (lognormal discretized into the same
kind of bucketed CDF the paper describes — "probability that the volume
is between 0.6x and 0.8x the mean"). A constructor from raw samples is
provided so real measurements can be dropped in.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.traffic.matrix import TrafficMatrix

Pair = Tuple[str, str]


class TrafficVariabilityModel:
    """Samples multiplicative variation factors from a bucketed CDF.

    Args:
        bucket_edges: ascending factor-bucket boundaries, e.g.
            ``[0.2, 0.4, ..., 3.0]``.
        bucket_probs: probability mass per bucket (must sum to ~1).

    Factors are drawn by picking a bucket by mass and then uniformly
    within it — exactly the information content of the paper's
    empirical CDF description.
    """

    def __init__(self, bucket_edges: Sequence[float],
                 bucket_probs: Sequence[float]) -> None:
        edges = np.asarray(bucket_edges, dtype=float)
        probs = np.asarray(bucket_probs, dtype=float)
        if len(edges) != len(probs) + 1:
            raise ValueError("need len(bucket_edges) == len(bucket_probs) + 1")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bucket_edges must be strictly increasing")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0, atol=1e-6):
            raise ValueError("bucket_probs must be a distribution")
        if edges[0] < 0:
            raise ValueError("factors cannot be negative")
        self.bucket_edges = edges
        self.bucket_probs = probs / probs.sum()

    @classmethod
    def default(cls, sigma: float = 0.45,
                num_buckets: int = 15) -> "TrafficVariabilityModel":
        """Heavy-tailed default calibrated to backbone TM studies.

        A lognormal with median ``exp(-sigma^2/2)`` (so the mean factor
        is 1) discretized into ``num_buckets`` buckets spanning roughly
        the 0.1%..99.9% quantiles.
        """
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        mu = -sigma * sigma / 2.0
        lo = float(np.exp(mu - 3.1 * sigma))
        hi = float(np.exp(mu + 3.1 * sigma))
        edges = np.linspace(lo, hi, num_buckets + 1)
        from scipy import stats

        cdf = stats.lognorm.cdf(edges, s=sigma, scale=np.exp(mu))
        probs = np.diff(cdf)
        probs = probs / probs.sum()
        return cls(edges, probs)

    @classmethod
    def from_samples(cls, factors: Sequence[float],
                     num_buckets: int = 15) -> "TrafficVariabilityModel":
        """Build the empirical CDF from observed variation factors.

        This mirrors the paper's procedure with real Internet2 traffic
        matrices: compute each TM entry's ratio to its mean, histogram
        the ratios, and sample from the histogram.
        """
        data = np.asarray(list(factors), dtype=float)
        if data.size < 2:
            raise ValueError("need at least two sample factors")
        if np.any(data < 0):
            raise ValueError("factors cannot be negative")
        lo, hi = float(data.min()), float(data.max())
        if lo == hi:
            lo, hi = lo * 0.99, hi * 1.01 + 1e-9
        edges = np.linspace(lo, hi, num_buckets + 1)
        counts, _ = np.histogram(data, bins=edges)
        if counts.sum() == 0:
            raise ValueError("no samples fell inside the bucket range")
        return cls(edges, counts / counts.sum())

    def sample_factor(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative variation factor."""
        bucket = rng.choice(len(self.bucket_probs), p=self.bucket_probs)
        lo = self.bucket_edges[bucket]
        hi = self.bucket_edges[bucket + 1]
        return float(rng.uniform(lo, hi))

    def sample_factors(self, pairs: Sequence[Pair],
                       rng: np.random.Generator) -> Dict[Pair, float]:
        """Independent factors for a set of matrix entries."""
        return {pair: self.sample_factor(rng) for pair in pairs}

    def generate_matrices(self, mean_matrix: TrafficMatrix, count: int,
                          rng: np.random.Generator
                          ) -> List[TrafficMatrix]:
        """The paper's family of time-varying matrices.

        Each output matrix perturbs every entry of ``mean_matrix`` by an
        independent factor drawn from the CDF (100 matrices in the
        paper's Figure 15 experiment).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        pairs = list(mean_matrix.pairs())
        return [mean_matrix.perturbed(self.sample_factors(pairs, rng))
                for _ in range(count)]

    @property
    def mean_factor(self) -> float:
        """Expected factor under the bucketed distribution."""
        mids = (self.bucket_edges[:-1] + self.bucket_edges[1:]) / 2.0
        return float(np.dot(mids, self.bucket_probs))
