"""Traffic matrices: session volumes per ingress-egress pair."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

Pair = Tuple[str, str]


class TrafficMatrix:
    """Session volume for every ordered ingress-egress PoP pair.

    Entries are in *sessions per epoch* (the paper's ``|T_c|`` unit).
    Missing pairs read as 0.0.
    """

    def __init__(self, volumes: Dict[Pair, float]) -> None:
        for (source, target), volume in volumes.items():
            if source == target:
                raise ValueError(
                    f"traffic matrix has a self-pair ({source!r})")
            if volume < 0:
                raise ValueError(
                    f"negative volume for pair ({source!r}, {target!r})")
        self._volumes = dict(volumes)

    def volume(self, source: str, target: str) -> float:
        """Sessions from ``source`` to ``target`` (0.0 if absent)."""
        return self._volumes.get((source, target), 0.0)

    @property
    def total(self) -> float:
        """Total sessions across all pairs."""
        return sum(self._volumes.values())

    def pairs(self) -> Iterator[Pair]:
        """Ordered pairs with nonzero volume, deterministic order."""
        return iter(sorted(p for p, v in self._volumes.items() if v > 0))

    def items(self) -> Iterator[Tuple[Pair, float]]:
        for pair in self.pairs():
            yield pair, self._volumes[pair]

    def scaled(self, factor: float) -> "TrafficMatrix":
        """New matrix with every entry multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(
            {p: v * factor for p, v in self._volumes.items()})

    def perturbed(self, factors: Dict[Pair, float]) -> "TrafficMatrix":
        """New matrix with per-entry multiplicative ``factors``.

        Pairs absent from ``factors`` keep their volume. Used by the
        variability model to produce time-varying matrices.
        """
        out = dict(self._volumes)
        for pair, factor in factors.items():
            if factor < 0:
                raise ValueError(f"negative factor for pair {pair!r}")
            if pair in out:
                out[pair] = out[pair] * factor
        return TrafficMatrix(out)

    def __len__(self) -> int:
        return len(self._volumes)

    def __repr__(self) -> str:
        return (f"TrafficMatrix(pairs={len(self._volumes)}, "
                f"total={self.total:.4g})")


class EstimatedTrafficMatrix(TrafficMatrix):
    """A traffic matrix whose entries are sketch *estimates*.

    Behaves exactly like :class:`TrafficMatrix` everywhere one is
    accepted (the controller, the formulation layer, experiments) but
    carries the estimator's provenance: the count-min ``(epsilon,
    delta)`` error bound, resident sketch bytes, how many sessions
    were observed, and the sampling-rate ``scale`` that converted
    observed sessions into ``|T_c|`` units. Entries are one-sided
    overestimates — ``estimate >= truth`` per class with probability
    ``1 - delta`` within ``epsilon * total``.
    """

    def __init__(self, volumes: Dict[Pair, float], *,
                 epsilon: float, delta: float, state_bytes: int,
                 sessions_observed: int = 0,
                 scale: float = 1.0) -> None:
        super().__init__(volumes)
        if not 0.0 <= delta <= 1.0:
            raise ValueError("delta must be a probability")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self.delta = delta
        self.state_bytes = int(state_bytes)
        self.sessions_observed = int(sessions_observed)
        self.scale = scale

    def error_bound(self) -> float:
        """Additive per-entry error bound in ``|T_c|`` units."""
        return self.epsilon * self.sessions_observed * self.scale

    def __repr__(self) -> str:
        return (f"EstimatedTrafficMatrix(pairs={len(self)}, "
                f"total={self.total:.4g}, "
                f"epsilon={self.epsilon:.4g}, "
                f"delta={self.delta:.4g}, "
                f"state_bytes={self.state_bytes})")
