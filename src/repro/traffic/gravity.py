"""Gravity-model traffic construction (Section 8 setup).

The paper constructs a traffic matrix for every ingress-egress PoP pair
"using a gravity model based on city populations", anchors the total
volume at 8 million sessions for the 11-PoP Internet2 topology, and
scales other topologies linearly with PoP count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.topology.routing import RoutingTable, shortest_path_routing
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass
from repro.traffic.matrix import TrafficMatrix

# Anchor from Section 8.2: 8M sessions on the 11-PoP Internet2 network.
PAPER_BASE_SESSIONS = 8_000_000.0
PAPER_BASE_POPS = 11


def paper_total_sessions(num_pops: int) -> float:
    """Total session volume for a topology, per the paper's scaling."""
    if num_pops <= 0:
        raise ValueError("num_pops must be positive")
    return PAPER_BASE_SESSIONS * num_pops / PAPER_BASE_POPS


def gravity_traffic_matrix(topology: Topology,
                           total_sessions: Optional[float] = None
                           ) -> TrafficMatrix:
    """Build a gravity-model traffic matrix.

    Volume for pair ``(s, t)`` is proportional to
    ``pop(s) * pop(t)`` over all ordered pairs with ``s != t``. Nodes
    with zero population (e.g., datacenters) neither originate nor sink
    traffic.

    Args:
        topology: network with node populations.
        total_sessions: total volume; defaults to the paper's linear
            scaling rule.
    """
    if total_sessions is None:
        total_sessions = paper_total_sessions(topology.num_nodes)
    populations = topology.populations
    weights: Dict[tuple, float] = {}
    for source in topology.nodes:
        for target in topology.nodes:
            if source == target:
                continue
            weight = populations[source] * populations[target]
            if weight > 0:
                weights[(source, target)] = weight
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError(
            f"topology {topology.name!r} has no positive-population "
            "pairs; cannot build gravity traffic")
    return TrafficMatrix({
        pair: total_sessions * weight / total_weight
        for pair, weight in weights.items()
    })


def classes_from_matrix(topology: Topology, matrix: TrafficMatrix,
                        routing: Optional[RoutingTable] = None,
                        session_bytes: float = 20_000.0,
                        cpu_footprint: float = 1.0,
                        record_bytes: float = 16.0
                        ) -> List[TrafficClass]:
    """One aggregate :class:`TrafficClass` per nonzero matrix entry.

    Routing defaults to symmetric shortest paths. The per-session CPU
    footprint and session size are uniform here (single aggregate class
    per Section 8's "we consider a single aggregate traffic class");
    callers wanting heterogeneous classes build them directly.
    """
    if routing is None:
        routing = shortest_path_routing(topology)
    classes = []
    for (source, target), volume in matrix.items():
        classes.append(TrafficClass(
            name=f"{source}->{target}",
            source=source, target=target,
            path=routing.path(source, target),
            num_sessions=volume,
            session_bytes=session_bytes,
            footprints={"cpu": cpu_footprint},
            record_bytes=record_bytes))
    return classes


def gravity_traffic(topology: Topology,
                    total_sessions: Optional[float] = None,
                    routing: Optional[RoutingTable] = None,
                    **class_kwargs) -> List[TrafficClass]:
    """Gravity matrix + symmetric routing in one call.

    Equivalent to ``classes_from_matrix(topology,
    gravity_traffic_matrix(topology, total_sessions), routing)``.
    """
    matrix = gravity_traffic_matrix(topology, total_sessions)
    return classes_from_matrix(topology, matrix, routing, **class_kwargs)
