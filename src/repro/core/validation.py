"""Independent validation of optimization results.

Recomputes every paper constraint from a result's decision fractions —
with no reference to the LP machinery — and reports human-readable
violations. Used by the test suite to check the solver end-to-end and
available to users as a sanity gate before pushing configurations to
shims.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.inputs import NetworkState
from repro.core.results import (
    AggregationResult,
    ReplicationResult,
    SplitTrafficResult,
)

_TOL = 1e-6


def _check_fraction_bounds(fractions: Dict[str, Dict], label: str,
                           problems: List[str]) -> None:
    for class_name, per_key in fractions.items():
        for key, value in per_key.items():
            if value < -_TOL or value > 1.0 + _TOL:
                problems.append(
                    f"{label}[{class_name}][{key}] = {value} out of "
                    f"[0, 1]")


def validate_replication(state: NetworkState, result: ReplicationResult
                         ) -> List[str]:
    """Check a Section 4 result against Eqs (2)-(7).

    Returns:
        A list of violation descriptions; empty when the result is a
        feasible assignment for ``state``.
    """
    problems: List[str] = []
    _check_fraction_bounds(result.process_fractions, "p", problems)
    offload_by_class = {
        name: sum(values.values())
        for name, values in result.offload_fractions.items()
    }

    # Eq (2): full coverage.
    for cls in state.classes:
        local = sum(result.process_fractions.get(cls.name, {}).values())
        total = local + offload_by_class.get(cls.name, 0.0)
        if abs(total - 1.0) > 1e-5:
            problems.append(
                f"class {cls.name!r} coverage {total:.6f} != 1")

    # Eq (3): recompute node loads from the fractions.
    loads: Dict[str, Dict[str, float]] = {
        r: {n: 0.0 for n in state.nids_nodes} for r in state.resources}
    for cls in state.classes:
        for resource in state.resources:
            work = cls.footprint(resource) * cls.num_sessions
            for node, fraction in result.process_fractions.get(
                    cls.name, {}).items():
                loads[resource][node] += (work * fraction /
                                          state.capacity(resource, node))
            for (_, mirror), fraction in result.offload_fractions.get(
                    cls.name, {}).items():
                loads[resource][mirror] += (
                    work * fraction / state.capacity(resource, mirror))
    for resource in state.resources:
        for node in state.nids_nodes:
            reported = result.node_loads[resource][node]
            if abs(loads[resource][node] - reported) > 1e-5:
                problems.append(
                    f"load[{resource}][{node}] recomputed "
                    f"{loads[resource][node]:.6f} != reported "
                    f"{reported:.6f}")
            if loads[resource][node] > result.load_cost + 1e-5:
                problems.append(
                    f"load[{resource}][{node}] exceeds LoadCost")

    # Eqs (4), (5): link loads under the bound.
    link_bytes: Dict[tuple, float] = {}
    class_by_name = {cls.name: cls for cls in state.classes}
    for cls_name, offloads in result.offload_fractions.items():
        cls = class_by_name[cls_name]
        for (node, mirror), fraction in offloads.items():
            for link in state.routing.path_links(node, mirror):
                link_bytes[link] = (link_bytes.get(link, 0.0) +
                                    fraction * cls.total_bytes)
    for link, extra in link_bytes.items():
        load = state.bg_load(link) + extra / state.link_capacity[link]
        bound = max(result.max_link_load, state.bg_load(link))
        if load > bound + 1e-5:
            problems.append(
                f"link {link} load {load:.6f} exceeds bound "
                f"{bound:.6f}")
    return problems


def validate_aggregation(state: NetworkState,
                         result: AggregationResult) -> List[str]:
    """Check a Section 6 result: coverage (Eq 14) and CommCost (Eq 13).

    Classes counted at a node outside their path (the combined
    formulation's DC counting) contribute ``D(node, aggregation
    point)`` like any other location.
    """
    problems: List[str] = []
    _check_fraction_bounds(result.process_fractions, "p", problems)
    for cls in state.classes:
        total = sum(result.process_fractions.get(cls.name, {}).values())
        if abs(total - 1.0) > 1e-5:
            problems.append(
                f"class {cls.name!r} coverage {total:.6f} != 1")
    comm = 0.0
    for cls in state.classes:
        for node, fraction in result.process_fractions.get(
                cls.name, {}).items():
            distance = state.routing.hop_count(node, cls.ingress)
            comm += cls.num_sessions * fraction * cls.record_bytes * \
                distance
    if abs(comm - result.comm_cost) > max(1e-3, 1e-6 * abs(comm)):
        problems.append(
            f"CommCost recomputed {comm:.3f} != reported "
            f"{result.comm_cost:.3f}")
    return problems


def validate_split(state: NetworkState,
                   result: SplitTrafficResult) -> List[str]:
    """Check a Section 5 result: Eqs (8)-(11)."""
    problems: List[str] = []
    _check_fraction_bounds(result.process_fractions, "p", problems)
    _check_fraction_bounds(result.fwd_offloads, "ofwd", problems)
    _check_fraction_bounds(result.rev_offloads, "orev", problems)

    total_sessions = sum(cls.num_sessions for cls in state.classes)
    missed = 0.0
    for cls in state.classes:
        local = sum(result.process_fractions.get(cls.name, {}).values())
        cov_fwd = local + sum(
            result.fwd_offloads.get(cls.name, {}).values())
        cov_rev = local + sum(
            result.rev_offloads.get(cls.name, {}).values())
        effective = min(cov_fwd, cov_rev, 1.0)
        reported = result.coverage.get(cls.name, 0.0)
        if reported > effective + 1e-5:
            problems.append(
                f"class {cls.name!r} coverage {reported:.6f} exceeds "
                f"min(fwd, rev, 1) = {effective:.6f}")
        missed += (1.0 - effective) * cls.num_sessions
    recomputed = missed / total_sessions if total_sessions else 0.0
    if result.miss_rate > recomputed + 1e-5:
        problems.append(
            f"MissRate reported {result.miss_rate:.6f} above "
            f"recomputed bound {recomputed:.6f}")
    return problems
