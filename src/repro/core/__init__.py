"""The paper's primary contribution: network-wide NIDS optimization.

Three LP formulations assign processing / replication / aggregation
responsibilities across the network:

- :class:`ReplicationProblem` — Section 4 (Figure 7): on-path
  distribution + off-path replication under a max-link-load budget.
- :class:`SplitTrafficProblem` — Section 5: asymmetric forward/reverse
  routes; minimizes ``LoadCost + gamma * MissRate``.
- :class:`AggregationProblem` — Section 6 (Figure 9): per-source task
  splitting with report aggregation; minimizes
  ``LoadCost + beta * CommCost``.

Supporting pieces: :class:`NetworkState` (calibrated inputs, Section
8.2), :class:`MirrorPolicy` (mirror sets ``M_j``), datacenter placement
strategies, and the named architecture presets compared in the figures.
"""

from repro.core.inputs import (
    DC_NODE_NAME,
    NetworkState,
    ingress_requirements,
    link_background_bytes,
)
from repro.core.formulation import Formulation
from repro.core.mirrors import MirrorKind, MirrorPolicy
from repro.core.placement import PLACEMENT_STRATEGIES, place_datacenter
from repro.core.replication import ReplicationProblem
from repro.core.split import (
    DEFAULT_GAMMA,
    SplitTrafficProblem,
    ingress_split_result,
)
from repro.core.aggregation import (
    AggregationProblem,
    ingress_aggregation_point,
)
from repro.core.architectures import (
    ArchitectureEvaluator,
    ArchitectureKind,
    evaluate_architecture,
    ingress_result,
)
from repro.core.results import (
    AggregationResult,
    AssignmentResult,
    LPStats,
    ReplicationResult,
    SplitTrafficResult,
)
from repro.core.extensions import (
    FORTZ_THORUP_SEGMENTS,
    max_miss_objective,
    piecewise_link_cost,
    weighted_load_objective,
    weighted_miss_objective,
)
from repro.core.transitions import (
    CommitOutcome,
    OverlapTransition,
    Participant,
    TransitionPhase,
    TwoPhaseCommit,
    union_config,
)
from repro.core.nips import NIPSProblem, NIPSResult
from repro.core.robustness import (
    provisioning_shortfall,
    slack_factor,
    with_slack,
)
from repro.core.combined import CombinedProblem
from repro.core.controller import NIDSController, Rollout
from repro.core.validation import (
    validate_aggregation,
    validate_replication,
    validate_split,
)
from repro.core.failures import (
    FailureImpact,
    cascade_risk,
    fail_link,
    fail_node,
)

__all__ = [
    "AggregationProblem",
    "AggregationResult",
    "CombinedProblem",
    "CommitOutcome",
    "FailureImpact",
    "NIDSController",
    "NIPSProblem",
    "NIPSResult",
    "OverlapTransition",
    "Participant",
    "TransitionPhase",
    "TwoPhaseCommit",
    "cascade_risk",
    "fail_link",
    "fail_node",
    "provisioning_shortfall",
    "slack_factor",
    "Rollout",
    "union_config",
    "validate_aggregation",
    "validate_replication",
    "validate_split",
    "with_slack",
    "ArchitectureEvaluator",
    "ArchitectureKind",
    "AssignmentResult",
    "DC_NODE_NAME",
    "DEFAULT_GAMMA",
    "FORTZ_THORUP_SEGMENTS",
    "Formulation",
    "LPStats",
    "MirrorKind",
    "MirrorPolicy",
    "NetworkState",
    "PLACEMENT_STRATEGIES",
    "ReplicationProblem",
    "ReplicationResult",
    "SplitTrafficProblem",
    "SplitTrafficResult",
    "evaluate_architecture",
    "ingress_aggregation_point",
    "ingress_requirements",
    "ingress_result",
    "ingress_split_result",
    "link_background_bytes",
    "max_miss_objective",
    "piecewise_link_cost",
    "place_datacenter",
    "weighted_load_objective",
    "weighted_miss_objective",
]
