"""Result objects returned by the optimization problems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

Link = Tuple[str, str]


@dataclass
class LPStats:
    """Size and runtime of one LP solve (Table 1's measurements)."""

    num_variables: int
    num_constraints: int
    solve_seconds: float
    iterations: int


@dataclass
class AssignmentResult:
    """Common base for the three formulations' results.

    Attributes:
        load_cost: optimal ``LoadCost`` (max normalized node load).
        node_loads: per-resource per-node normalized loads.
        process_fractions: ``p_{c,j}`` keyed by class name then node.
        stats: LP size/runtime metadata.
        dc_node: datacenter node name, if the state had one.
    """

    load_cost: float
    node_loads: Dict[str, Dict[str, float]]
    process_fractions: Dict[str, Dict[str, float]]
    stats: LPStats
    dc_node: Optional[str] = None

    def max_load(self, resource: str = "cpu",
                 exclude_dc: bool = False) -> float:
        """Maximum node load for one resource.

        Args:
            resource: resource name.
            exclude_dc: drop the datacenter node (the paper's
                "MaxNIDSLoad" in Figure 12 and the per-node plots in
                Figure 10 treat the DC separately).
        """
        loads = self.node_loads[resource]
        values = [load for node, load in loads.items()
                  if not (exclude_dc and node == self.dc_node)]
        return max(values) if values else 0.0

    def dc_load(self, resource: str = "cpu") -> float:
        """Load on the datacenter node (0.0 when there is none)."""
        if self.dc_node is None:
            return 0.0
        return self.node_loads[resource][self.dc_node]

    def load_imbalance(self, resource: str = "cpu") -> float:
        """Max/average load ratio (Figure 19's imbalance metric).

        Averages over nodes with nonzero capacity involvement; the
        datacenter is included when present, matching the aggregation
        experiments which have no datacenter at all.
        """
        loads = list(self.node_loads[resource].values())
        mean = sum(loads) / len(loads)
        if mean == 0.0:
            return 1.0
        return max(loads) / mean


@dataclass
class ReplicationResult(AssignmentResult):
    """Solution of the Section 4 replication formulation.

    Additional attributes:
        offload_fractions: ``o_{c,j,j'}`` keyed by class name then the
            (from, to) node pair.
        link_loads: resulting ``LinkLoad_l`` per link (background plus
            replication).
        max_link_load: the ``MaxLinkLoad`` bound the problem used.
    """

    offload_fractions: Dict[str, Dict[Tuple[str, str], float]] = field(
        default_factory=dict)
    link_loads: Dict[Link, float] = field(default_factory=dict)
    max_link_load: float = 1.0

    def replicated_fraction(self, class_name: str) -> float:
        """Total fraction of a class handled off-path via replication."""
        return sum(self.offload_fractions.get(class_name, {}).values())


@dataclass
class SplitTrafficResult(AssignmentResult):
    """Solution of the Section 5 split-traffic formulation.

    Additional attributes:
        miss_rate: traffic-weighted fraction lacking both-side coverage
            (Eq (11)).
        coverage: effective per-class coverage ``cov_c`` (Eq (10)).
        fwd_offloads / rev_offloads: per-direction offload fractions
            ``o^fwd_{c,j}`` / ``o^rev_{c,j}`` keyed by class then node.
        gamma: the miss-rate weight used in the objective.
    """

    miss_rate: float = 0.0
    coverage: Dict[str, float] = field(default_factory=dict)
    fwd_offloads: Dict[str, Dict[str, float]] = field(default_factory=dict)
    rev_offloads: Dict[str, Dict[str, float]] = field(default_factory=dict)
    link_loads: Dict[Link, float] = field(default_factory=dict)
    gamma: float = 0.0


@dataclass
class AggregationResult(AssignmentResult):
    """Solution of the Section 6 aggregation formulation.

    Additional attributes:
        comm_cost: total report traffic in byte-hops (Eq (13)).
        beta: the communication-cost weight used in the objective.
        objective: optimal ``LoadCost + beta * CommCost``.
    """

    comm_cost: float = 0.0
    beta: float = 0.0
    objective: float = 0.0
