"""The aggregation LP (Section 6, Figure 9 of the paper).

Analyses like Scan detection are topologically constrained under pure
on-path distribution (only the ingress sees all of a host's traffic).
Aggregation splits the task into sub-tasks — each on-path node counts a
*per-source* share of the traffic — and ships intermediate reports to an
aggregation point. The LP assigns the local-processing fractions
``p_{c,j}`` to balance compute load against the report traffic:

    minimize  LoadCost + beta * CommCost            (Eq (12))
    CommCost = sum_c,j |T_c| p_{c,j} Rec_c D_{c,j}  (Eq (13))

``D_{c,j}`` is the hop distance from node ``j`` to the class's
aggregation point (the ingress gateway by default — it is best placed
to decide whether to alert, Section 6). Report sizes are small, so no
``MaxLinkLoad`` constraint is carried over.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.inputs import NetworkState
from repro.core.results import AggregationResult, LPStats
from repro.lpsolve import LinExpr, Model, Variable, lin_sum

AggregationPointFn = Callable[[object], str]


def ingress_aggregation_point(cls) -> str:
    """Default: reports go back to the class's ingress gateway."""
    return cls.ingress


class AggregationProblem:
    """Builds and solves the Figure 9 LP.

    Args:
        state: calibrated inputs (no datacenter required).
        beta: weight on the communication cost; sweep it to trade
            report traffic against load balance (Figure 18).
        aggregation_point: maps a class to the node its reports are
            sent to (default: the ingress).
    """

    def __init__(self, state: NetworkState, beta: float = 1.0,
                 aggregation_point: AggregationPointFn =
                 ingress_aggregation_point):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.state = state
        self.beta = beta
        self.aggregation_point = aggregation_point
        self._model: Optional[Model] = None
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}

    def suggested_beta(self) -> float:
        """A beta making LoadCost and CommCost comparable in scale.

        Uses ``1 / CommCost(ingress-only)`` — the report cost of doing
        all counting at distance-0 would be 0, so instead we normalize
        by the cost of a uniform split across each path, which is the
        natural midpoint of the tradeoff curve.
        """
        total = 0.0
        for cls in self.state.classes:
            point = self.aggregation_point(cls)
            distances = [self.state.routing.hop_count(node, point)
                         for node in cls.path]
            mean_distance = sum(distances) / len(distances)
            total += cls.num_sessions * cls.record_bytes * mean_distance
        return 1.0 / total if total > 0 else 1.0

    def build_model(self) -> Model:
        """Construct (and cache) the LP."""
        state = self.state
        model = Model(f"aggregation[{state.topology.name}]")

        comm_terms: List[LinExpr] = []
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        for cls in state.classes:
            point = self.aggregation_point(cls)
            class_vars = []
            for node in cls.path:
                var = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._p[(cls.name, node)] = var
                class_vars.append(var)
                distance = state.routing.hop_count(node, point)
                comm_terms.append(var * (cls.num_sessions *
                                         cls.record_bytes * distance))
                for resource in state.resources:
                    work = cls.footprint(resource) * cls.num_sessions
                    if work == 0.0:
                        continue
                    cap = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        var * (work / cap))
            # Coverage (Eq (14)).
            model.add_constraint(lin_sum(class_vars) == 1.0,
                                 name=f"cover[{cls.name}]")

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            model.add_constraint(load_cost >= expr,
                                 name=f"loadcost[{resource},{node}]")

        self._comm_expr = lin_sum(comm_terms)
        model.minimize(load_cost + self.beta * self._comm_expr)
        self._model = model
        self._load_cost_var = load_cost
        return model

    def solve(self) -> AggregationResult:
        """Solve and unpack loads, fractions, and the comm cost."""
        model = self._model or self.build_model()
        solution = model.solve()

        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)

        load_cost = solution.value(self._load_cost_var)
        comm_cost = solution.value(self._comm_expr)
        return AggregationResult(
            load_cost=load_cost,
            comm_cost=comm_cost,
            beta=self.beta,
            objective=load_cost + self.beta * comm_cost,
            node_loads=node_loads,
            process_fractions=process,
            dc_node=self.state.dc_node,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))
