"""The aggregation LP (Section 6, Figure 9 of the paper).

Analyses like Scan detection are topologically constrained under pure
on-path distribution (only the ingress sees all of a host's traffic).
Aggregation splits the task into sub-tasks — each on-path node counts a
*per-source* share of the traffic — and ships intermediate reports to an
aggregation point. The LP assigns the local-processing fractions
``p_{c,j}`` to balance compute load against the report traffic:

    minimize  LoadCost + beta * CommCost            (Eq (12))
    CommCost = sum_c,j |T_c| p_{c,j} Rec_c D_{c,j}  (Eq (13))

``D_{c,j}`` is the hop distance from node ``j`` to the class's
aggregation point (the ingress gateway by default — it is best placed
to decide whether to alert, Section 6). Report sizes are small, so no
``MaxLinkLoad`` constraint is carried over.

``beta`` and the per-class ``volumes`` are named parameters of the
:class:`~repro.core.formulation.Formulation`; the Figure 18 beta sweep
re-solves via ``resolve(beta=...)``, which only rewrites objective
coefficients on the compiled LP.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.formulation import Formulation, _check_non_negative
from repro.core.inputs import NetworkState
from repro.core.results import AggregationResult, LPStats
from repro.lpsolve import (Constraint, LinExpr, Model, Solution,
                           SolverBackend, Variable, lin_sum)

AggregationPointFn = Callable[[object], str]


def ingress_aggregation_point(cls) -> str:
    """Default: reports go back to the class's ingress gateway."""
    return cls.ingress


class AggregationProblem(Formulation):
    """Builds and solves the Figure 9 LP.

    Args:
        state: calibrated inputs (no datacenter required).
        beta: weight on the communication cost; sweep it to trade
            report traffic against load balance (Figure 18).
        aggregation_point: maps a class to the node its reports are
            sent to (default: the ingress).
        backend: LP solver backend (name, instance, or None for the
            process default).
    """

    kind = "aggregation"

    def __init__(self, state: NetworkState, beta: float = 1.0,
                 aggregation_point: AggregationPointFn =
                 ingress_aggregation_point,
                 backend: Union[None, str, SolverBackend] = None) -> None:
        super().__init__(state, backend=backend)
        self._declare_param("beta", beta, _check_non_negative("beta"))
        self.aggregation_point = aggregation_point
        self._reset()

    @property
    def beta(self) -> float:
        """The communication-cost weight (change it via ``resolve``)."""
        return self._params["beta"]

    def _reset(self) -> None:
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._loadcost_cons: Dict[Tuple[str, str], Constraint] = {}
        self._comm_expr: Optional[LinExpr] = None
        self._load_cost_var: Optional[Variable] = None

    def suggested_beta(self) -> float:
        """A beta making LoadCost and CommCost comparable in scale.

        Uses ``1 / CommCost(ingress-only)`` — the report cost of doing
        all counting at distance-0 would be 0, so instead we normalize
        by the cost of a uniform split across each path, which is the
        natural midpoint of the tradeoff curve.
        """
        total = 0.0
        for cls in self.state.classes:
            point = self.aggregation_point(cls)
            distances = [self.state.routing.hop_count(node, point)
                         for node in cls.path]
            mean_distance = sum(distances) / len(distances)
            total += cls.num_sessions * cls.record_bytes * mean_distance
        return 1.0 / total if total > 0 else 1.0

    def _build(self, model: Model) -> None:
        state = self.state

        comm_terms: List[LinExpr] = []
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        for cls in state.classes:
            point = self.aggregation_point(cls)
            class_vars = []
            for node in cls.path:
                var = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._p[(cls.name, node)] = var
                class_vars.append(var)
                distance = state.routing.hop_count(node, point)
                comm_terms.append(var * (cls.num_sessions *
                                         cls.record_bytes * distance))
                for resource in state.resources:
                    work = cls.footprint(resource) * cls.num_sessions
                    if work == 0.0:
                        continue
                    cap = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        var * (work / cap))
            # Coverage (Eq (14)).
            model.add_constraint(lin_sum(class_vars) == 1.0,
                                 name=f"cover[{cls.name}]")

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            self._loadcost_cons[(resource, node)] = model.add_constraint(
                load_cost >= expr, name=f"loadcost[{resource},{node}]")

        self._comm_expr = lin_sum(comm_terms)
        model.minimize(load_cost + self.beta * self._comm_expr)
        self._load_cost_var = load_cost

        self._bind(("volumes",), self._patch_volume_terms)
        self._bind(("beta", "volumes"), self._patch_objective)

    # -- incremental patching ------------------------------------------------

    def _patch_volume_terms(self) -> None:
        """Rescale load-constraint and CommCost coefficients."""
        state = self.state
        model = self._model
        for cls in state.classes:
            point = self.aggregation_point(cls)
            for node in cls.path:
                var = self._p[(cls.name, node)]
                distance = state.routing.hop_count(node, point)
                self._comm_expr.coeffs[var] = (cls.num_sessions *
                                               cls.record_bytes *
                                               distance)
                for resource in state.resources:
                    if cls.footprint(resource) == 0.0:
                        continue
                    work = cls.footprint(resource) * cls.num_sessions
                    cap = state.capacity(resource, node)
                    model.set_coefficient(
                        self._loadcost_cons[(resource, node)], var,
                        -(work / cap))
                    self._load_exprs[(resource, node)].coeffs[var] = (
                        work / cap)

    def _patch_objective(self) -> None:
        """Rewrite ``beta * CommCost`` objective coefficients (runs
        after the volume patch, so the comm expression is current)."""
        for var, comm_coeff in self._comm_expr.coeffs.items():
            self._model.set_objective_coefficient(
                var, self.beta * comm_coeff)

    # -- solving --------------------------------------------------------------

    def _unpack(self, model: Model,
                solution: Solution) -> AggregationResult:
        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)

        load_cost = solution.value(self._load_cost_var)
        comm_cost = solution.value(self._comm_expr)
        return AggregationResult(
            load_cost=load_cost,
            comm_cost=comm_cost,
            beta=self.beta,
            objective=load_cost + self.beta * comm_cost,
            node_loads=node_loads,
            process_fractions=process,
            dc_node=self.state.dc_node,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))

    def solve(self) -> AggregationResult:
        """Solve and unpack loads, fractions, and the comm cost."""
        return super().solve()
