"""Unified replication + aggregation (Section 9, "Combining aggregation
and replication" — the paper's stated future work).

The idea: replication can reduce the *communication cost* of
aggregation. Under plain aggregation, each on-path node that counts a
share of a class ships its intermediate report ``D_{c,j}`` hops to the
aggregation point. If instead a node replicates its counting sub-task
to the datacenter, the DC performs the counting and ships *one* report
from the DC to the aggregation point — useful when the DC sits closer
(in byte-hops of reports) than the scattered on-path nodes, or when
on-path nodes are compute-bound.

Formulation (extends Figure 9):

    variables  p[c,j]  (j on P_c)     local counting fraction
               o[c,j]  (j on P_c)     counting sub-task replicated
                                      from j to the DC
    coverage   sum_j p[c,j] + o[c,j] == 1
    LoadCost   as usual; the DC accrues the o work
    CommCost   sum |T_c| ( p[c,j] Rec_c D(j,agg)
                         + o[c,j] Rec_c D(DC,agg) )
    link load  replicating the sub-task means mirroring the traffic
               slice to the DC: bounded by MaxLinkLoad as in Section 4

    minimize   LoadCost + beta * CommCost

The paper's caveat — replication splits per-session while aggregation
splits per-source — is handled operationally by the shim's per-source
hash mode: the traffic slice replicated to the DC is a *source* range,
so DC counting remains correct and no effort is duplicated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.aggregation import ingress_aggregation_point
from repro.core.inputs import NetworkState
from repro.core.results import AggregationResult, LPStats
from repro.lpsolve import LinExpr, Model, Variable, lin_sum
from repro.topology.topology import Link


class CombinedProblem:
    """Aggregation with optional replication of counting sub-tasks.

    Args:
        state: calibrated inputs **with** a datacenter node.
        beta: communication-cost weight (as in Figure 9).
        max_link_load: bound on the replicated traffic's link load.
        aggregation_point: class -> node receiving the final reports.
    """

    def __init__(self, state: NetworkState, beta: float = 1.0,
                 max_link_load: float = 0.4,
                 aggregation_point: Callable =
                 ingress_aggregation_point):
        if state.dc_node is None:
            raise ValueError("CombinedProblem needs a datacenter; "
                             "build the state with dc_capacity_factor")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if not 0.0 <= max_link_load <= 1.0:
            raise ValueError("max_link_load must be in [0, 1]")
        self.state = state
        self.beta = beta
        self.max_link_load = max_link_load
        self.aggregation_point = aggregation_point
        self._model: Optional[Model] = None
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._o: Dict[Tuple[str, str], Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._link_exprs: Dict[Link, LinExpr] = {}

    def build_model(self) -> Model:
        """Construct (and cache) the combined LP."""
        state = self.state
        dc = state.dc_node
        model = Model(f"combined[{state.topology.name}]")

        comm_terms: List[LinExpr] = []
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        link_terms: Dict[Link, List[LinExpr]] = {
            link: [] for link in state.topology.links}

        for cls in state.classes:
            point = self.aggregation_point(cls)
            dc_distance = state.routing.hop_count(dc, point)
            class_vars: List[Variable] = []
            for node in cls.path:
                p_var = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._p[(cls.name, node)] = p_var
                class_vars.append(p_var)
                distance = state.routing.hop_count(node, point)
                comm_terms.append(p_var * (cls.num_sessions *
                                           cls.record_bytes * distance))

                o_var = model.add_variable(
                    f"o[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._o[(cls.name, node)] = o_var
                class_vars.append(o_var)
                comm_terms.append(o_var * (cls.num_sessions *
                                           cls.record_bytes *
                                           dc_distance))
                # Mirrored traffic slice for the sub-task.
                replicated_bytes = cls.num_sessions * cls.session_bytes
                for link in state.routing.path_links(node, dc):
                    coeff = replicated_bytes / state.link_capacity[link]
                    link_terms[link].append(o_var * coeff)

                for resource in state.resources:
                    work = cls.footprint(resource) * cls.num_sessions
                    if work == 0.0:
                        continue
                    cap_local = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        p_var * (work / cap_local))
                    cap_dc = state.capacity(resource, dc)
                    load_terms[(resource, dc)].append(
                        o_var * (work / cap_dc))
            model.add_constraint(lin_sum(class_vars) == 1.0,
                                 name=f"cover[{cls.name}]")

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            model.add_constraint(load_cost >= expr,
                                 name=f"loadcost[{resource},{node}]")

        for link, terms in link_terms.items():
            bg = state.bg_load(link)
            expr = lin_sum(terms) + bg
            self._link_exprs[link] = expr
            if terms:
                bound = max(self.max_link_load, bg)
                model.add_constraint(
                    expr <= bound, name=f"linkload[{link[0]},{link[1]}]")

        self._comm_expr = lin_sum(comm_terms)
        model.minimize(load_cost + self.beta * self._comm_expr)
        self._model = model
        self._load_cost_var = load_cost
        return model

    def solve(self) -> AggregationResult:
        """Solve; offloaded fractions appear under the DC's node key
        in ``process_fractions`` (the DC does the counting)."""
        model = self._model or self.build_model()
        solution = model.solve()

        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)
        dc = self.state.dc_node
        for (cls_name, node), var in self._o.items():
            value = solution.value(var)
            if value > 1e-9:
                fractions = process.setdefault(cls_name, {})
                fractions[dc] = fractions.get(dc, 0.0) + value

        load_cost = solution.value(self._load_cost_var)
        comm_cost = solution.value(self._comm_expr)
        return AggregationResult(
            load_cost=load_cost,
            comm_cost=comm_cost,
            beta=self.beta,
            objective=load_cost + self.beta * comm_cost,
            node_loads=node_loads,
            process_fractions=process,
            dc_node=dc,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))
