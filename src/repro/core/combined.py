"""Unified replication + aggregation (Section 9, "Combining aggregation
and replication" — the paper's stated future work).

The idea: replication can reduce the *communication cost* of
aggregation. Under plain aggregation, each on-path node that counts a
share of a class ships its intermediate report ``D_{c,j}`` hops to the
aggregation point. If instead a node replicates its counting sub-task
to the datacenter, the DC performs the counting and ships *one* report
from the DC to the aggregation point — useful when the DC sits closer
(in byte-hops of reports) than the scattered on-path nodes, or when
on-path nodes are compute-bound.

Formulation (extends Figure 9):

    variables  p[c,j]  (j on P_c)     local counting fraction
               o[c,j]  (j on P_c)     counting sub-task replicated
                                      from j to the DC
    coverage   sum_j p[c,j] + o[c,j] == 1
    LoadCost   as usual; the DC accrues the o work
    CommCost   sum |T_c| ( p[c,j] Rec_c D(j,agg)
                         + o[c,j] Rec_c D(DC,agg) )
    link load  replicating the sub-task means mirroring the traffic
               slice to the DC: bounded by MaxLinkLoad as in Section 4

    minimize   LoadCost + beta * CommCost

The paper's caveat — replication splits per-session while aggregation
splits per-source — is handled operationally by the shim's per-source
hash mode: the traffic slice replicated to the DC is a *source* range,
so DC counting remains correct and no effort is duplicated.

``beta``, ``max_link_load`` and ``volumes`` are named
:class:`~repro.core.formulation.Formulation` parameters, resolvable in
place on the compiled LP.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.aggregation import ingress_aggregation_point
from repro.core.formulation import (Formulation, _check_max_link_load,
                                    _check_non_negative)
from repro.core.inputs import NetworkState
from repro.core.results import AggregationResult, LPStats
from repro.lpsolve import (Constraint, LinExpr, Model, Solution,
                           SolverBackend, Variable, lin_sum)
from repro.topology.topology import Link


class CombinedProblem(Formulation):
    """Aggregation with optional replication of counting sub-tasks.

    Args:
        state: calibrated inputs **with** a datacenter node.
        beta: communication-cost weight (as in Figure 9).
        max_link_load: bound on the replicated traffic's link load.
        aggregation_point: class -> node receiving the final reports.
        backend: LP solver backend (name, instance, or None for the
            process default).
    """

    kind = "combined"

    def __init__(self, state: NetworkState, beta: float = 1.0,
                 max_link_load: float = 0.4,
                 aggregation_point: Callable =
                 ingress_aggregation_point,
                 backend: Union[None, str, SolverBackend] = None) -> None:
        if state.dc_node is None:
            raise ValueError("CombinedProblem needs a datacenter; "
                             "build the state with dc_capacity_factor")
        super().__init__(state, backend=backend)
        self._declare_param("beta", beta, _check_non_negative("beta"))
        self._declare_param("max_link_load", max_link_load,
                            _check_max_link_load)
        self.aggregation_point = aggregation_point
        self._reset()

    @property
    def beta(self) -> float:
        """The communication-cost weight (change it via ``resolve``)."""
        return self._params["beta"]

    @property
    def max_link_load(self) -> float:
        """``MaxLinkLoad`` (change it via ``resolve``)."""
        return self._params["max_link_load"]

    def _reset(self) -> None:
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._o: Dict[Tuple[str, str], Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._link_exprs: Dict[Link, LinExpr] = {}
        self._loadcost_cons: Dict[Tuple[str, str], Constraint] = {}
        self._link_cons: Dict[Link, Constraint] = {}
        self._comm_expr: Optional[LinExpr] = None
        self._load_cost_var: Optional[Variable] = None

    def _build(self, model: Model) -> None:
        state = self.state
        dc = state.dc_node

        comm_terms: List[LinExpr] = []
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        link_terms: Dict[Link, List[LinExpr]] = {
            link: [] for link in state.topology.links}

        for cls in state.classes:
            point = self.aggregation_point(cls)
            dc_distance = state.routing.hop_count(dc, point)
            class_vars: List[Variable] = []
            for node in cls.path:
                p_var = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._p[(cls.name, node)] = p_var
                class_vars.append(p_var)
                distance = state.routing.hop_count(node, point)
                comm_terms.append(p_var * (cls.num_sessions *
                                           cls.record_bytes * distance))

                o_var = model.add_variable(
                    f"o[{cls.name},{node}]", lb=0.0, ub=1.0)
                self._o[(cls.name, node)] = o_var
                class_vars.append(o_var)
                comm_terms.append(o_var * (cls.num_sessions *
                                           cls.record_bytes *
                                           dc_distance))
                # Mirrored traffic slice for the sub-task.
                replicated_bytes = cls.num_sessions * cls.session_bytes
                for link in state.routing.path_links(node, dc):
                    coeff = replicated_bytes / state.link_capacity[link]
                    link_terms[link].append(o_var * coeff)

                for resource in state.resources:
                    work = cls.footprint(resource) * cls.num_sessions
                    if work == 0.0:
                        continue
                    cap_local = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        p_var * (work / cap_local))
                    cap_dc = state.capacity(resource, dc)
                    load_terms[(resource, dc)].append(
                        o_var * (work / cap_dc))
            model.add_constraint(lin_sum(class_vars) == 1.0,
                                 name=f"cover[{cls.name}]")

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            self._loadcost_cons[(resource, node)] = model.add_constraint(
                load_cost >= expr, name=f"loadcost[{resource},{node}]")

        for link, terms in link_terms.items():
            bg = state.bg_load(link)
            expr = lin_sum(terms) + bg
            self._link_exprs[link] = expr
            if terms:
                bound = max(self.max_link_load, bg)
                self._link_cons[link] = model.add_constraint(
                    expr <= bound, name=f"linkload[{link[0]},{link[1]}]")

        self._comm_expr = lin_sum(comm_terms)
        model.minimize(load_cost + self.beta * self._comm_expr)
        self._load_cost_var = load_cost

        self._bind(("volumes",), self._patch_volume_terms)
        self._bind(("max_link_load", "volumes"),
                   self._patch_link_bounds)
        self._bind(("beta", "volumes"), self._patch_objective)

    # -- incremental patching ------------------------------------------------

    def _patch_volume_terms(self) -> None:
        """Rescale load, link, and CommCost coefficients in place."""
        state = self.state
        model = self._model
        dc = state.dc_node
        for cls in state.classes:
            point = self.aggregation_point(cls)
            dc_distance = state.routing.hop_count(dc, point)
            replicated_bytes = cls.num_sessions * cls.session_bytes
            for node in cls.path:
                p_var = self._p[(cls.name, node)]
                o_var = self._o[(cls.name, node)]
                distance = state.routing.hop_count(node, point)
                self._comm_expr.coeffs[p_var] = (cls.num_sessions *
                                                 cls.record_bytes *
                                                 distance)
                self._comm_expr.coeffs[o_var] = (cls.num_sessions *
                                                 cls.record_bytes *
                                                 dc_distance)
                for link in state.routing.path_links(node, dc):
                    coeff = replicated_bytes / state.link_capacity[link]
                    con = self._link_cons.get(link)
                    if con is not None:
                        model.set_coefficient(con, o_var, coeff)
                    self._link_exprs[link].coeffs[o_var] = coeff
                for resource in state.resources:
                    if cls.footprint(resource) == 0.0:
                        continue
                    work = cls.footprint(resource) * cls.num_sessions
                    cap_local = state.capacity(resource, node)
                    model.set_coefficient(
                        self._loadcost_cons[(resource, node)], p_var,
                        -(work / cap_local))
                    self._load_exprs[(resource, node)].coeffs[p_var] = (
                        work / cap_local)
                    cap_dc = state.capacity(resource, dc)
                    model.set_coefficient(
                        self._loadcost_cons[(resource, dc)], o_var,
                        -(work / cap_dc))
                    self._load_exprs[(resource, dc)].coeffs[o_var] = (
                        work / cap_dc)

    def _patch_link_bounds(self) -> None:
        """Re-target ``max(MaxLinkLoad, BG_l)`` bounds and background
        constants (BG changes whenever volumes do)."""
        state = self.state
        model = self._model
        for link, expr in self._link_exprs.items():
            bg = state.bg_load(link)
            expr.constant = bg
            con = self._link_cons.get(link)
            if con is not None:
                model.set_rhs(con, max(self.max_link_load, bg) - bg)

    def _patch_objective(self) -> None:
        """Rewrite ``beta * CommCost`` objective coefficients (runs
        after the volume patch, so the comm expression is current)."""
        for var, comm_coeff in self._comm_expr.coeffs.items():
            self._model.set_objective_coefficient(
                var, self.beta * comm_coeff)

    # -- solving --------------------------------------------------------------

    def _unpack(self, model: Model,
                solution: Solution) -> AggregationResult:
        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)
        dc = self.state.dc_node
        for (cls_name, node), var in self._o.items():
            value = solution.value(var)
            if value > 1e-9:
                fractions = process.setdefault(cls_name, {})
                fractions[dc] = fractions.get(dc, 0.0) + value

        load_cost = solution.value(self._load_cost_var)
        comm_cost = solution.value(self._comm_expr)
        return AggregationResult(
            load_cost=load_cost,
            comm_cost=comm_cost,
            beta=self.beta,
            objective=load_cost + self.beta * comm_cost,
            node_loads=node_loads,
            process_fractions=process,
            dc_node=dc,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))

    def solve(self) -> AggregationResult:
        """Solve; offloaded fractions appear under the DC's node key
        in ``process_fractions`` (the DC does the counting)."""
        return super().solve()
