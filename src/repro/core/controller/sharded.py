"""Sharded control plane: regional LPs plus a capacity coordinator.

One global replication LP per refresh is the scalability ceiling for
both topology size and refresh rate (ROADMAP item 4). This module
decomposes it:

- :class:`RegionalReplicationProblem` — the Figure 7 LP restricted to
  one region's traffic classes, over the full topology. Two extra
  named parameters make the decomposition sound: ``capacity_share``
  scales shared nodes' capacities (a region only "sees" its slice of
  the datacenter/mirror capacity) and ``link_share`` scales shared
  links' replication headroom. Both are incremental patches over the
  warm :class:`~repro.lpsolve.compiled.CompiledLP`, so coordination
  rounds re-solve without rebuilding.
- :class:`ShardCoordinator` — computes which nodes/links are shared
  between regions, hands out initial traffic-proportional shares, and
  reallocates them toward observed demand over a bounded number of
  rounds.
- :class:`ShardedPlanner` — a
  :class:`~repro.core.controller.planner.SolvePlanner` that grows a
  seeded :class:`~repro.topology.partition.RegionPartition`, solves
  the per-region LPs concurrently, merges the regional assignments
  into one network-wide :class:`ReplicationResult`, and supports
  regional controller failover (a neighbor adopts a dead region's
  shard).

Feasibility of the merged result is guaranteed *by construction*, not
by convergence: each region's link constraints are bounded by its
share of the link headroom and the shares over any element sum to at
most one, so the merged link loads satisfy Eq (5) after every round —
the coordinator rounds only improve the load-balance objective.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, FrozenSet, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core.controller.planner import PlanOutcome
from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.core.results import LPStats, ReplicationResult
from repro.lpsolve import SolverBackend
from repro.obs import get_registry
from repro.topology.partition import RegionPartition, partition_topology
from repro.topology.topology import Link
from repro.traffic.classes import TrafficClass

ShareKey = Union[str, Link]


def _check_shares(shares: Mapping[ShareKey, float]) -> None:
    for key, value in shares.items():
        if not 0.0 < value <= 1.0:
            raise ValueError(
                f"share for {key!r} must be in (0, 1], got {value}")


class RegionalReplicationProblem(ReplicationProblem):
    """One region's slice of the Figure 7 LP.

    The state carries only the region's classes but the *full*
    topology and true capacities, plus the **global** background link
    bytes (other regions' forwarded traffic still crosses shared
    links). Two extra parameters, patched incrementally like
    ``max_link_load``:

    - ``capacity_share``: node -> fraction of that node's capacity
      this region may plan against. Scales the load-accounting
      coefficients in place, so the region's LP prices the shared
      node (e.g. the datacenter) as if it were that much smaller.
    - ``link_share``: link -> fraction of the replication headroom
      ``max(MaxLinkLoad, BG_l) - BG_l`` this region may consume.

    Args:
        state: regional state (region classes, full topology, global
            background bytes).
        global_background: per-link background bytes computed from the
            *entire* traffic matrix; preserved across warm traffic
            re-solves where the base class would recompute it from the
            region's classes alone.
    """

    kind = "replication-shard"

    def __init__(self, state: NetworkState,
                 global_background: Mapping[Link, float],
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 capacity_share: Optional[Mapping[str, float]] = None,
                 link_share: Optional[Mapping[Link, float]] = None,
                 backend: Union[None, str, SolverBackend] = None
                 ) -> None:
        self._global_background: Dict[Link, float] = dict(
            global_background)
        super().__init__(state, mirror_policy=mirror_policy,
                         max_link_load=max_link_load, backend=backend)
        self._declare_param("capacity_share",
                            dict(capacity_share or {}), _check_shares)
        self._declare_param("link_share",
                            dict(link_share or {}), _check_shares)

    # -- shared-background bookkeeping ------------------------------------

    def set_global_background(self,
                              bg_bytes: Mapping[Link, float]) -> None:
        """Refresh the network-wide background before a traffic
        re-solve (the coordinator recomputes it from all classes)."""
        self._global_background = dict(bg_bytes)

    def _region_state(self, classes: Sequence[TrafficClass]
                      ) -> NetworkState:
        base = self.state
        return NetworkState(base.topology, base.routing, classes,
                            base.node_capacity, base.link_capacity,
                            dict(self._global_background),
                            dc_node=base.dc_node)

    def _apply_volumes(self, volumes: Dict[str, float]) -> None:
        # The base class rebuilds the state with with_traffic(), which
        # would recompute background bytes from this region's classes
        # alone; a regional problem must keep the global background.
        new_classes = [replace(cls, num_sessions=volumes[cls.name])
                       for cls in self.state.classes]
        self.state = self._region_state(new_classes)
        self._params["volumes"] = dict(volumes)

    def resolve_traffic(self, classes: Sequence[TrafficClass],
                        **params: object) -> ReplicationResult:
        classes = list(classes)
        if self._traffic_compatible(classes):
            return super().resolve_traffic(classes, **params)
        # Class-universe change (e.g. shard adoption): swap the state
        # but keep the global background, then rebuild cold.
        self.state = self._region_state(classes)
        self._params["volumes"] = {cls.name: cls.num_sessions
                                   for cls in classes}
        self.invalidate()
        return self.resolve(**params)

    # -- building ----------------------------------------------------------

    def _build(self, model) -> None:  # type: ignore[no-untyped-def]
        super()._build(model)
        if self._incremental_ok:
            # Registered after the base bindings so a volumes change
            # first restores true-capacity coefficients and full link
            # headroom, then re-applies the shares on top.
            self._bind(("capacity_share", "volumes"),
                       self._patch_capacity_shares)
            self._bind(("link_share", "max_link_load", "volumes"),
                       self._patch_link_shares)

    def build_model(self):  # type: ignore[no-untyped-def]
        fresh = self._model is None
        model = super().build_model()
        if fresh and self._incremental_ok:
            # A fresh build lays the LP out against true capacities;
            # fold the current shares in before the first solve.
            self._patch_capacity_shares()
            self._patch_link_shares()
        return model

    # -- incremental patching ----------------------------------------------

    def _patch_capacity_shares(self) -> None:
        """Re-price shared nodes at ``capacity * share``.

        Recomputes the affected coefficients from first principles
        (work over scaled capacity) rather than rescaling in place, so
        repeated share changes cannot compound rounding."""
        shares = self._params["capacity_share"]
        if not shares:
            return
        state = self.state
        model = self._model
        by_name = {cls.name: cls for cls in state.classes}
        for cls in state.classes:
            for resource in state.resources:
                if cls.footprint(resource) == 0.0:
                    continue
                work = cls.footprint(resource) * cls.num_sessions
                for node in cls.path:
                    share = shares.get(node)
                    if share is None:
                        continue
                    var = self._p[(cls.name, node)]
                    expr = self._load_exprs[(resource, node)]
                    if var not in expr.coeffs:
                        continue
                    cap = state.capacity(resource, node) * share
                    model.set_coefficient(
                        self._loadcost_cons[(resource, node)], var,
                        -(work / cap))
                    expr.coeffs[var] = work / cap
        for (cls_name, _node, mirror), var in self._o.items():
            share = shares.get(mirror)
            if share is None:
                continue
            cls = by_name[cls_name]
            for resource in state.resources:
                if cls.footprint(resource) == 0.0:
                    continue
                work = cls.footprint(resource) * cls.num_sessions
                expr = self._load_exprs[(resource, mirror)]
                if var not in expr.coeffs:
                    continue
                cap = state.capacity(resource, mirror) * share
                model.set_coefficient(
                    self._loadcost_cons[(resource, mirror)], var,
                    -(work / cap))
                expr.coeffs[var] = work / cap

    def _patch_link_shares(self) -> None:
        """Bound each shared link at its share of the headroom."""
        shares = self._params["link_share"]
        if not shares:
            return
        state = self.state
        model = self._model
        for link, con in self._link_cons.items():
            share = shares.get(link)
            if share is None:
                continue
            bg = state.bg_load(link)
            headroom = max(self.max_link_load, bg) - bg
            model.set_rhs(con, share * headroom)


@dataclass
class _Shard:
    """One region's planning bundle inside the sharded planner."""

    name: str
    classes: List[TrafficClass]
    node_surface: FrozenSet[str]
    link_surface: FrozenSet[Link]
    problem: Optional[RegionalReplicationProblem] = None
    result: Optional[ReplicationResult] = None
    node_loads: Dict[str, Dict[str, float]] = field(default_factory=dict)
    link_extra: Dict[Link, float] = field(default_factory=dict)


class ShardCoordinator:
    """Reconciles shared node capacity and link headroom.

    Every node/link that appears on at least two regions' load
    surfaces gets split: each involved region receives a share in
    ``(0, 1]`` with the shares summing to one. Initial shares are
    proportional to regional traffic; subsequent rounds move them
    toward the demand each region actually expressed in its solution
    (proportional reallocation with a small floor so a region can
    always re-enter an element it briefly left).

    Args:
        max_rounds: hard bound on coordination rounds per plan.
        tolerance: maximum share movement below which the rounds stop.
        demand_floor: minimum demand, as a fraction of the largest
            demand on the element, credited to every involved region.
    """

    def __init__(self, max_rounds: int = 5, tolerance: float = 1e-3,
                 demand_floor: float = 0.02) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < demand_floor < 1.0:
            raise ValueError("demand_floor must be in (0, 1)")
        self.max_rounds = max_rounds
        self.tolerance = tolerance
        self.demand_floor = demand_floor

    def shared_elements(
            self, surfaces: Mapping[str, FrozenSet[ShareKey]]
    ) -> Dict[ShareKey, Tuple[str, ...]]:
        """Elements on >= 2 regions' surfaces -> involved regions."""
        users: Dict[ShareKey, List[str]] = {}
        for region in sorted(surfaces):
            for element in surfaces[region]:
                users.setdefault(element, []).append(region)
        return {element: tuple(regions)
                for element, regions in users.items()
                if len(regions) >= 2}

    def initial_shares(
            self, shared: Mapping[ShareKey, Tuple[str, ...]],
            weights: Mapping[str, float]
    ) -> Dict[str, Dict[ShareKey, float]]:
        """Traffic-proportional split of every shared element."""
        shares: Dict[str, Dict[ShareKey, float]] = {}
        for element, regions in shared.items():
            total = sum(weights.get(region, 0.0) for region in regions)
            for region in regions:
                value = (weights.get(region, 0.0) / total
                         if total > 0 else 1.0 / len(regions))
                shares.setdefault(region, {})[element] = max(
                    value, self.demand_floor / len(regions))
        return self._normalized(shared, shares)

    def reallocate(
            self, shared: Mapping[ShareKey, Tuple[str, ...]],
            current: Mapping[str, Mapping[ShareKey, float]],
            demands: Mapping[str, Mapping[ShareKey, float]]
    ) -> Dict[str, Dict[ShareKey, float]]:
        """Move shares toward observed demand, keeping the sum at one.

        A region's demand for an element is what its last solution
        actually placed there (true utilization for nodes, realized
        replication load for links). Elements nobody used keep their
        current split."""
        shares: Dict[str, Dict[ShareKey, float]] = {}
        for element, regions in shared.items():
            raw = {region: demands.get(region, {}).get(element, 0.0)
                   for region in regions}
            peak = max(raw.values())
            if peak <= 0.0:
                for region in regions:
                    shares.setdefault(region, {})[element] = \
                        current[region][element]
                continue
            floor = self.demand_floor * peak
            for region in regions:
                shares.setdefault(region, {})[element] = max(
                    raw[region], floor)
        return self._normalized(shared, shares)

    def converged(
            self, old: Mapping[str, Mapping[ShareKey, float]],
            new: Mapping[str, Mapping[ShareKey, float]]) -> bool:
        """True when no share moved more than the tolerance."""
        delta = 0.0
        for region, elements in new.items():
            for element, value in elements.items():
                delta = max(delta, abs(
                    value - old.get(region, {}).get(element, 0.0)))
        return delta <= self.tolerance

    def _normalized(
            self, shared: Mapping[ShareKey, Tuple[str, ...]],
            shares: Dict[str, Dict[ShareKey, float]]
    ) -> Dict[str, Dict[ShareKey, float]]:
        for element, regions in shared.items():
            total = sum(shares[region][element] for region in regions)
            for region in regions:
                shares[region][element] /= total
        return shares


class ShardedPlanner:
    """Per-region LPs behind the controller's planner protocol.

    On the first :meth:`plan` (or after the traffic-class universe
    changes) the planner grows a seeded
    :class:`~repro.topology.partition.RegionPartition` and builds one
    warm :class:`RegionalReplicationProblem` per non-empty region.
    Every plan then:

    1. splits the traffic feed by class ownership,
    2. hands out shared-capacity/headroom shares
       (:class:`ShardCoordinator`),
    3. solves all regions — concurrently when ``jobs`` allows,
    4. runs bounded proportional-reallocation rounds, re-solving the
       warm regional LPs with updated shares,
    5. merges the regional fractions into one network-wide
       :class:`~repro.core.results.ReplicationResult` whose loads are
       recomputed against *true* capacities.

    :meth:`fail_region` implements controller failover: the dead
    region's shard is merged into its lightest-traffic neighbor and
    the affected warm problems are dropped for rebuild on the next
    plan.

    Args:
        state: the calibrated network state to partition.
        num_regions: how many shards to grow (clamped to the node
            count of the current topology).
        seed: forwarded to the partitioner.
        coordinator: share-reconciliation policy; default bounds
            coordination at five rounds.
        jobs: worker threads for regional solves; ``None`` picks
            ``min(active regions, cpu count)``, 1 forces serial.
    """

    def __init__(self, state: NetworkState,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 num_regions: int = 2, seed: int = 0,
                 coordinator: Optional[ShardCoordinator] = None,
                 jobs: Optional[int] = None,
                 backend: Union[None, str, SolverBackend] = None
                 ) -> None:
        if num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.state = state
        self.mirror_policy = mirror_policy or MirrorPolicy.datacenter()
        self.max_link_load = max_link_load
        self.num_regions = num_regions
        self.seed = seed
        self.coordinator = coordinator or ShardCoordinator()
        self.jobs = jobs
        self.backend = backend
        self.partition: Optional[RegionPartition] = None
        self._shards: Dict[str, _Shard] = {}
        self._class_universe: Optional[FrozenSet[str]] = None
        self.last_rounds = 0
        self.solve_count = 0
        self.failover_count = 0

    # -- partition lifecycle ----------------------------------------------

    def _rebuild_partition(self, full_state: NetworkState,
                           classes: Sequence[TrafficClass]) -> None:
        candidates = [n for n in full_state.topology.nodes
                      if n != full_state.dc_node]
        regions = min(self.num_regions, max(1, len(candidates)))
        self.partition = partition_topology(
            full_state.topology, classes, regions, seed=self.seed,
            dc_node=full_state.dc_node)
        self._shards = {}
        self._class_universe = frozenset(cls.name for cls in classes)
        metrics = get_registry()
        for region in self.partition.regions:
            metrics.observe("controller.shard.region_sizes",
                            len(region.nodes))

    def _surfaces(self, full_state: NetworkState,
                  classes: Sequence[TrafficClass]
                  ) -> Tuple[FrozenSet[str], FrozenSet[Link]]:
        """Nodes/links this class set can load: on-path nodes, their
        allowed mirrors, and the replication tunnels to them."""
        mirror_sets = self.mirror_policy.mirror_sets(full_state)
        nodes: Set[str] = set()
        links: Set[Link] = set()
        for cls in classes:
            path_set = set(cls.path)
            for node in cls.path:
                nodes.add(node)
                for mirror in mirror_sets[node]:
                    if mirror in path_set:
                        continue
                    nodes.add(mirror)
                    links.update(
                        full_state.routing.path_links(node, mirror))
        return frozenset(nodes), frozenset(links)

    def fail_region(self, target: str) -> str:
        """Regional controller death: a neighbor adopts the shard.

        Args:
            target: a region name (``region-N``) or any node name,
                resolved to the region owning it.

        Returns:
            The adopting region's name.
        """
        if self.partition is None:
            raise RuntimeError(
                "no partition grown yet; nothing to fail over")
        if target in self.partition.region_names():
            dead = target
        elif target in self.partition.node_region:
            dead = self.partition.node_region[target]
        else:
            raise ValueError(
                f"{target!r} is neither a region nor a node")
        adopter = self.partition.adopter_for(dead)
        self.partition = self.partition.merge(dead, adopter)
        # Both warm problems are tied to the old class universes.
        self._shards.pop(dead, None)
        self._shards.pop(adopter, None)
        self.failover_count += 1
        metrics = get_registry()
        for region in self.partition.regions:
            metrics.observe("controller.shard.region_sizes",
                            len(region.nodes))
        return adopter

    # -- planning ----------------------------------------------------------

    def plan(self, classes: Sequence[TrafficClass]) -> PlanOutcome:
        classes = list(classes)
        full_state = self.state.with_traffic(classes)
        names = frozenset(cls.name for cls in classes)
        if self.partition is None or names != self._class_universe:
            self._rebuild_partition(full_state, classes)
        assert self.partition is not None

        grouped: Dict[str, List[TrafficClass]] = {
            name: [] for name in self.partition.region_names()}
        for cls in classes:
            grouped[self.partition.region_of_class(cls.name)].append(
                cls)

        active: List[_Shard] = []
        for name in self.partition.region_names():
            region_classes = grouped[name]
            if not region_classes:
                self._shards.pop(name, None)
                continue
            shard = self._shards.get(name)
            if shard is None or \
                    [c.name for c in shard.classes] != \
                    [c.name for c in region_classes]:
                nodes, links = self._surfaces(full_state,
                                              region_classes)
                shard = _Shard(name=name, classes=region_classes,
                               node_surface=nodes, link_surface=links)
                self._shards[name] = shard
            else:
                shard.classes = region_classes
            active.append(shard)

        shared_nodes = self.coordinator.shared_elements(
            {s.name: s.node_surface for s in active})
        shared_links = self.coordinator.shared_elements(
            {s.name: s.link_surface for s in active})
        weights = {s.name: sum(cls.num_sessions for cls in s.classes)
                   for s in active}
        node_shares = self.coordinator.initial_shares(shared_nodes,
                                                      weights)
        link_shares = self.coordinator.initial_shares(shared_links,
                                                      weights)

        global_bg = dict(full_state.bg_bytes)
        self._solve_round(active, full_state, global_bg, node_shares,
                          link_shares)
        rounds = 1
        best = self._merge(full_state, active)
        while rounds < self.coordinator.max_rounds and (
                shared_nodes or shared_links):
            demands_n = {s.name: self._node_demands(s) for s in active}
            demands_l = {s.name: dict(s.link_extra) for s in active}
            new_node = self.coordinator.reallocate(
                shared_nodes, node_shares, demands_n)
            new_link = self.coordinator.reallocate(
                shared_links, link_shares, demands_l)
            if self.coordinator.converged(node_shares, new_node) and \
                    self.coordinator.converged(link_shares, new_link):
                break
            node_shares, link_shares = new_node, new_link
            self._solve_round(active, full_state, global_bg,
                              node_shares, link_shares)
            rounds += 1
            merged = self._merge(full_state, active)
            if merged.load_cost < best.load_cost:
                best = merged

        self.last_rounds = rounds
        metrics = get_registry()
        metrics.observe("controller.shard.coordination_rounds", rounds)
        if os.environ.get("REPRO_VERIFY_MODELS", "").strip() not in (
                "", "0"):
            self._verify(full_state, best)
        return PlanOutcome(state=full_state, result=best)

    # -- solving -----------------------------------------------------------

    def _solve_round(self, active: Sequence[_Shard],
                     full_state: NetworkState,
                     global_bg: Mapping[Link, float],
                     node_shares: Mapping[str, Mapping[str, float]],
                     link_shares: Mapping[str, Mapping[Link, float]]
                     ) -> None:
        tasks: List[Tuple[_Shard, Callable[[], ReplicationResult]]] = []
        for shard in active:
            capacity_share = dict(node_shares.get(shard.name, {}))
            link_share = dict(link_shares.get(shard.name, {}))
            if shard.problem is None:
                region_state = NetworkState(
                    full_state.topology, full_state.routing,
                    shard.classes, full_state.node_capacity,
                    full_state.link_capacity, dict(global_bg),
                    dc_node=full_state.dc_node)
                # One warm problem per region, built once and patched
                # on every later round/refresh via resolve().
                # repro-lint: allow[HYG001]
                problem = RegionalReplicationProblem(
                    region_state, global_bg,
                    mirror_policy=self.mirror_policy,
                    max_link_load=self.max_link_load,
                    capacity_share=capacity_share,
                    link_share=link_share,
                    backend=self.backend)
                shard.problem = problem
                tasks.append((shard, problem.solve))
            else:
                problem = shard.problem
                problem.set_global_background(global_bg)
                tasks.append((shard, self._warm_solver(
                    problem, shard.classes, capacity_share,
                    link_share)))

        metrics = get_registry()

        def run(task: Tuple[_Shard, Callable[[], ReplicationResult]]
                ) -> Tuple[_Shard, ReplicationResult]:
            shard, solver = task
            result = solver()
            metrics.inc("controller.shard.solves")
            self.solve_count += 1
            return shard, result

        jobs = self.jobs if self.jobs is not None else \
            min(len(tasks), os.cpu_count() or 1)
        if jobs <= 1 or len(tasks) <= 1:
            outcomes = [run(task) for task in tasks]
        else:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(run, tasks))
        for shard, result in outcomes:
            shard.result = result
            self._account(full_state, shard)

    @staticmethod
    def _warm_solver(problem: RegionalReplicationProblem,
                     classes: Sequence[TrafficClass],
                     capacity_share: Dict[str, float],
                     link_share: Dict[Link, float]
                     ) -> Callable[[], ReplicationResult]:
        def solve() -> ReplicationResult:
            return problem.resolve_traffic(
                classes, capacity_share=capacity_share,
                link_share=link_share)
        return solve

    # -- merging -----------------------------------------------------------

    def _account(self, full_state: NetworkState,
                 shard: _Shard) -> None:
        """Recompute the shard's true loads from its fractions, using
        exactly the independent-validation accounting (true
        capacities, not the share-scaled ones its LP priced)."""
        assert shard.result is not None
        result = shard.result
        loads: Dict[str, Dict[str, float]] = {
            r: {} for r in full_state.resources}
        link_extra: Dict[Link, float] = {}
        for cls in shard.classes:
            for resource in full_state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                for node, fraction in result.process_fractions.get(
                        cls.name, {}).items():
                    loads[resource][node] = (
                        loads[resource].get(node, 0.0) +
                        work * fraction /
                        full_state.capacity(resource, node))
                for (_, mirror), fraction in \
                        result.offload_fractions.get(
                            cls.name, {}).items():
                    loads[resource][mirror] = (
                        loads[resource].get(mirror, 0.0) +
                        work * fraction /
                        full_state.capacity(resource, mirror))
            for (node, mirror), fraction in \
                    result.offload_fractions.get(cls.name, {}).items():
                for link in full_state.routing.path_links(node,
                                                          mirror):
                    link_extra[link] = (
                        link_extra.get(link, 0.0) +
                        fraction * cls.total_bytes /
                        full_state.link_capacity[link])
        shard.node_loads = loads
        shard.link_extra = link_extra

    def _node_demands(self, shard: _Shard) -> Dict[str, float]:
        """A shard's demand signal per node: its worst true
        utilization across resources."""
        demands: Dict[str, float] = {}
        for per_node in shard.node_loads.values():
            for node, load in per_node.items():
                demands[node] = max(demands.get(node, 0.0), load)
        return demands

    def _merge(self, full_state: NetworkState,
               active: Sequence[_Shard]) -> ReplicationResult:
        node_loads: Dict[str, Dict[str, float]] = {
            resource: {node: 0.0 for node in full_state.nids_nodes}
            for resource in full_state.resources}
        process: Dict[str, Dict[str, float]] = {}
        offload: Dict[str, Dict[Tuple[str, str], float]] = {}
        link_extra: Dict[Link, float] = {}
        num_vars = num_cons = iterations = 0
        solve_seconds = 0.0
        for shard in active:
            assert shard.result is not None
            result = shard.result
            process.update(result.process_fractions)
            offload.update(result.offload_fractions)
            for resource, per_node in shard.node_loads.items():
                for node, load in per_node.items():
                    node_loads[resource][node] += load
            for link, extra in shard.link_extra.items():
                link_extra[link] = link_extra.get(link, 0.0) + extra
            num_vars += result.stats.num_variables
            num_cons += result.stats.num_constraints
            iterations += result.stats.iterations
            solve_seconds += result.stats.solve_seconds
        link_loads = {
            link: full_state.bg_load(link) + link_extra.get(link, 0.0)
            for link in full_state.topology.links}
        load_cost = max(
            (load for per_node in node_loads.values()
             for load in per_node.values()), default=0.0)
        return ReplicationResult(
            load_cost=load_cost,
            node_loads=node_loads,
            process_fractions=process,
            offload_fractions=offload,
            link_loads=link_loads,
            max_link_load=self.max_link_load,
            dc_node=full_state.dc_node,
            stats=LPStats(num_variables=num_vars,
                          num_constraints=num_cons,
                          solve_seconds=solve_seconds,
                          iterations=iterations))

    # -- verification hooks ------------------------------------------------

    def regional_configs(self) -> Dict[str, Dict[str, object]]:
        """Per-region compiled shim configs from the last plan, for
        the SHRD001 union-tiling verifier."""
        from repro.shim.config import build_replication_configs

        configs: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._shards):
            shard = self._shards[name]
            if shard.problem is None or shard.result is None:
                continue
            configs[name] = dict(build_replication_configs(
                shard.problem.state, shard.result))
        return configs

    def shard_allocations(self, resource: str = "cpu"
                          ) -> Dict[str, Dict[str, float]]:
        """Per-region capacity allocations at shared nodes (absolute
        units), for the SHRD002 capacity verifier."""
        allocations: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._shards):
            shard = self._shards[name]
            if shard.problem is None:
                continue
            shares = shard.problem.param("capacity_share")
            allocations[name] = {
                node: share * self.state.capacity(resource, node)
                for node, share in shares.items()}
        return allocations

    def _verify(self, full_state: NetworkState,
                merged: ReplicationResult) -> None:
        from repro.analysis.engine import Severity
        from repro.analysis.modelcheck import (ModelCheckError,
                                               check_shard_capacity,
                                               check_sharded_configs)

        findings = list(check_sharded_configs(
            self.regional_configs(),
            [cls.name for cls in full_state.classes]))
        for resource in full_state.resources:
            findings.extend(check_shard_capacity(
                {node: full_state.capacity(resource, node)
                 for node in full_state.nids_nodes},
                self.shard_allocations(resource)))
        errors = [f for f in findings
                  if f.severity is Severity.ERROR]
        if errors:
            raise ModelCheckError(errors)

    # -- timing helper used by the shard-gap experiment --------------------

    def timed_plan(self, classes: Sequence[TrafficClass]
                   ) -> Tuple[PlanOutcome, float]:
        """Plan and report the wall-clock seconds the plan took."""
        start = time.perf_counter()
        outcome = self.plan(classes)
        return outcome, time.perf_counter() - start


__all__ = [
    "RegionalReplicationProblem",
    "ShardCoordinator",
    "ShardedPlanner",
]
