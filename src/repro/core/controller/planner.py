"""The solve step behind the controller, as a pluggable planner.

:class:`~repro.core.controller.base.NIDSController` owns the *policy*
of a refresh cycle — validation, config compilation, transition
bookkeeping — while the *solve* itself is delegated to an object
implementing :class:`SolvePlanner`. Two implementations exist:

- :class:`GlobalPlanner` — one network-wide replication LP per
  refresh, exactly the paper's Figure 6 controller (and bit-identical
  to the pre-refactor monolithic code path);
- :class:`~repro.core.controller.sharded.ShardedPlanner` — per-region
  LPs reconciled by a capacity-sharing coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Union

from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.core.results import ReplicationResult
from repro.lpsolve import SolverBackend
from repro.traffic.classes import TrafficClass


@dataclass
class PlanOutcome:
    """What one solve produced: the state the LP actually ran against
    (traffic folded in) and the optimal assignment."""

    state: NetworkState
    result: ReplicationResult


class SolvePlanner(Protocol):
    """Strategy interface for the controller's optimization step.

    Implementations own their warm LP machinery across calls; the
    controller calls :meth:`plan` once per refresh with the full
    traffic feed and consumes the returned state/result pair.
    """

    def plan(self, classes: Sequence[TrafficClass]) -> PlanOutcome:
        """Solve for the given traffic and return the assignment."""
        ...


class GlobalPlanner:
    """Today's behavior: one global replication LP, kept warm.

    The first :meth:`plan` builds and solves the LP cold; subsequent
    calls ride the incremental ``resolve_traffic`` path of the
    formulation layer, so a traffic update patches the compiled
    matrices in place.
    """

    def __init__(self, state: NetworkState,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 backend: Union[None, str, SolverBackend] = None
                 ) -> None:
        self.state = state
        self.mirror_policy = mirror_policy or MirrorPolicy.datacenter()
        self.max_link_load = max_link_load
        self.backend = backend
        # Kept across refreshes so a traffic update is an incremental
        # re-solve of the compiled LP, not a rebuild.
        self._problem: Optional[ReplicationProblem] = None

    def plan(self, classes: Sequence[TrafficClass]) -> PlanOutcome:
        if self._problem is None:
            self._problem = ReplicationProblem(
                self.state.with_traffic(classes),
                mirror_policy=self.mirror_policy,
                max_link_load=self.max_link_load,
                backend=self.backend)
            result = self._problem.solve()
        else:
            result = self._problem.resolve_traffic(
                classes, max_link_load=self.max_link_load)
        return PlanOutcome(state=self._problem.state, result=result)


__all__ = ["GlobalPlanner", "PlanOutcome", "SolvePlanner"]
