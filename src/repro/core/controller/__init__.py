"""The network-wide NIDS controller package.

Split across three modules: :mod:`base` (the controller's refresh
cycle), :mod:`planner` (the pluggable solve strategy and the default
global LP), and :mod:`sharded` (regional LP decomposition with a
capacity-reconciling coordinator). The public import path
``repro.core.controller`` re-exports everything the rest of the
codebase and downstream users need.
"""

from repro.core.controller.base import NIDSController, Rollout
from repro.core.controller.planner import (
    GlobalPlanner,
    PlanOutcome,
    SolvePlanner,
)
from repro.core.controller.sharded import (
    RegionalReplicationProblem,
    ShardCoordinator,
    ShardedPlanner,
)

__all__ = [
    "GlobalPlanner",
    "NIDSController",
    "PlanOutcome",
    "RegionalReplicationProblem",
    "Rollout",
    "ShardCoordinator",
    "ShardedPlanner",
    "SolvePlanner",
]
