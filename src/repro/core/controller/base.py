"""The network-wide NIDS controller (Figure 6).

The paper envisions "a logically centralized management module that
configures the NIDS elements": it periodically collects traffic and
routing feeds, runs the optimization, converts the solution into
per-node hash-range configurations, and pushes them out — re-running
every few minutes or on routing/traffic triggers, after which
"the configuration is completely automated".

:class:`NIDSController` is that module. It owns the current
configuration, re-optimizes on demand (:meth:`refresh`), compiles shim
configs, validates them, and hands back an
:class:`~repro.core.transitions.OverlapTransition` so the rollout is
coverage-safe. Traffic triggers are supported via a configurable
drift threshold. The solve step itself is pluggable (see
:mod:`repro.core.controller.planner`): the default
:class:`~repro.core.controller.planner.GlobalPlanner` runs one
network-wide LP; a
:class:`~repro.core.controller.sharded.ShardedPlanner` decomposes it
into coordinated per-region LPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.controller.planner import GlobalPlanner, SolvePlanner
from repro.core.inputs import NetworkState
from repro.obs import get_registry
from repro.core.mirrors import MirrorPolicy
from repro.core.results import ReplicationResult
from repro.core.transitions import OverlapTransition
from repro.core.validation import validate_replication
from repro.shim.config import ShimConfig, build_replication_configs
from repro.traffic.classes import TrafficClass


@dataclass
class Rollout:
    """One completed optimization cycle.

    Attributes:
        result: the LP solution driving the new configuration.
        configs: compiled per-node shim configurations.
        transition: coverage-safe old->new rollout coordinator
            (``None`` for the very first configuration — there is
            nothing to overlap with — and after a change of node
            universe, where old and new configs are incomparable).
    """

    result: ReplicationResult
    configs: Dict[str, ShimConfig]
    transition: Optional[OverlapTransition]


class NIDSController:
    """Centralized assignment of NIDS responsibilities (Figure 6).

    Args:
        state: calibrated network state (provisioning stays fixed
            across refreshes; traffic varies).
        mirror_policy: the deployment's replication shape.
        max_link_load: administrator's link budget policy knob.
        drift_threshold: relative traffic-volume change that counts as
            "significant" for :meth:`needs_refresh` (the paper's
            trigger on traffic changes).
        planner: the solve strategy; ``None`` uses a
            :class:`~repro.core.controller.planner.GlobalPlanner`
            built from the arguments above (the paper's single global
            LP).
    """

    def __init__(self, state: NetworkState,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 drift_threshold: float = 0.2,
                 planner: Optional[SolvePlanner] = None) -> None:
        if drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        self.state = state
        self.mirror_policy = mirror_policy or MirrorPolicy.datacenter()
        self.max_link_load = max_link_load
        self.drift_threshold = drift_threshold
        self.planner: SolvePlanner = planner if planner is not None \
            else GlobalPlanner(state,
                               mirror_policy=self.mirror_policy,
                               max_link_load=max_link_load)
        self._current_configs: Optional[Dict[str, ShimConfig]] = None
        self._current_result: Optional[ReplicationResult] = None
        self._current_classes: List[TrafficClass] = list(state.classes)
        self.refresh_count = 0

    # -- observability ---------------------------------------------------

    @property
    def current_result(self) -> Optional[ReplicationResult]:
        """The LP result behind the active configuration."""
        return self._current_result

    @property
    def current_configs(self) -> Optional[Dict[str, ShimConfig]]:
        """The per-node configurations currently considered active."""
        return self._current_configs

    # -- triggers ----------------------------------------------------------

    def traffic_drift(self, classes: Sequence[TrafficClass]) -> float:
        """Relative volume change vs the traffic last optimized for.

        Computed as the traffic-weighted mean relative per-class
        change; classes appearing or disappearing count in full.
        """
        old = {cls.name: cls.num_sessions
               for cls in self._current_classes}
        new = {cls.name: cls.num_sessions for cls in classes}
        names = set(old) | set(new)
        numerator = 0.0
        denominator = 0.0
        for name in names:
            before = old.get(name, 0.0)
            after = new.get(name, 0.0)
            numerator += abs(after - before)
            denominator += max(before, after)
        # Zero-total epochs (a dead feed, or a sketch estimator that
        # saw nothing yet) must read as "no drift", not raise or pin
        # the trigger high forever — same zero-total contract as
        # simulation/metrics.py. The <= guard also catches a
        # negative-rounding denominator from estimator feeds.
        if denominator <= 0.0:
            return 0.0
        return numerator / denominator

    def needs_refresh(self, classes: Sequence[TrafficClass]) -> bool:
        """True when traffic drifted past the threshold (or no
        configuration has been computed yet)."""
        if self._current_configs is None:
            get_registry().inc("controller.bootstrap_refreshes")
            return True
        triggered = self.traffic_drift(classes) > self.drift_threshold
        if triggered:
            get_registry().inc("controller.drift_triggers")
        return triggered

    # -- the optimization cycle ---------------------------------------------

    def refresh(self, classes: Optional[Sequence[TrafficClass]] = None
                ) -> Rollout:
        """Run one optimization cycle and prepare the rollout.

        Args:
            classes: the latest traffic feed; ``None`` re-optimizes
                for the current traffic (e.g., after a policy change).

        Returns:
            A :class:`Rollout`. The caller drives the transition
            (``begin`` / ``acknowledge``) as shims confirm; the
            controller considers the new configs current immediately,
            matching the paper's automated operation.

        Raises:
            RuntimeError: if the freshly computed result fails
                independent validation (never expected; a guard
                against optimizer/compilation regressions).
        """
        metrics = get_registry()
        with metrics.span("controller.refresh"):
            if classes is not None:
                self._current_classes = list(classes)

            outcome = self.planner.plan(self._current_classes)
            state, result = outcome.state, outcome.result
            problems = validate_replication(state, result)
            if problems:
                raise RuntimeError(
                    "optimizer produced an invalid assignment: "
                    + "; ".join(problems[:3]))
            configs = build_replication_configs(state, result)

            transition = None
            if self._current_configs is not None:
                old_configs = self._current_configs
                if set(old_configs) == set(configs):
                    transition = OverlapTransition(old_configs,
                                                   configs)
                    transition.begin()
                # Overlap size: total rules honored during the
                # transient (old and new unioned at every node).
                # Nodes present on only one side — a shard adoption
                # or topology change mid-epoch — carry just their
                # single config, so they are counted once instead of
                # raising a KeyError.
                shared = set(old_configs) & set(configs)
                overlap_rules = sum(
                    old_configs[node].num_rules
                    + configs[node].num_rules
                    for node in shared)
                overlap_rules += sum(
                    old_configs[node].num_rules
                    for node in set(old_configs) - shared)
                overlap_rules += sum(
                    configs[node].num_rules
                    for node in set(configs) - shared)
                metrics.gauge("controller.transition.nodes",
                              len(configs))
                metrics.gauge("controller.transition.union_rules",
                              overlap_rules)
            self._current_configs = configs
            self._current_result = result
            self.refresh_count += 1
        metrics.inc("controller.refreshes")
        return Rollout(result=result, configs=configs,
                       transition=transition)
