"""NIDS node failure handling.

Surveys cited by the paper name overload as a leading cause of NIDS
appliance failure; the min-max objective is chosen for that headroom.
This module supplies the operational counterpart: when a node (or the
datacenter) dies, rebuild the network state — reroute the classes that
transited it, drop the classes it terminated, keep the surviving
provisioning — so the controller can re-solve and push fresh configs
(via :mod:`repro.core.transitions`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.core.inputs import NetworkState, link_background_bytes
from repro.topology.routing import RoutingTable
from repro.traffic.classes import TrafficClass


@dataclass
class FailureImpact:
    """What a node failure did to the traffic."""

    failed_node: str
    rerouted_classes: List[str]
    dropped_classes: List[str]
    surviving_sessions: float
    lost_sessions: float

    @property
    def lost_fraction(self) -> float:
        total = self.surviving_sessions + self.lost_sessions
        return self.lost_sessions / total if total else 0.0


def fail_node(state: NetworkState, failed_node: str
              ) -> "tuple[NetworkState, FailureImpact]":
    """Remove a NIDS node and rebuild a solvable state.

    Classes terminating at the failed PoP are dropped (their traffic
    has nowhere to go); classes merely transiting it are rerouted over
    the surviving topology. Asymmetric reverse paths through the failed
    node are likewise recomputed (symmetrically, since the synthetic
    reverse route is gone with its nodes).

    Returns:
        ``(new_state, impact)``. Raises ``ValueError`` if removing the
        node disconnects a class with no alternative route.
    """
    if failed_node not in state.topology.nodes:
        raise ValueError(f"node {failed_node!r} not in topology")

    topology = state.topology.subgraph_without(failed_node)
    routing = RoutingTable(topology)

    rerouted: List[str] = []
    dropped: List[str] = []
    survivors: List[TrafficClass] = []
    lost_sessions = 0.0
    for cls in state.classes:
        if failed_node in (cls.source, cls.target):
            dropped.append(cls.name)
            lost_sessions += cls.num_sessions
            continue
        touched = (failed_node in cls.path or
                   (cls.rev_path is not None and
                    failed_node in cls.rev_path))
        if not touched:
            survivors.append(cls)
            continue
        try:
            new_path = routing.path(cls.source, cls.target)
        except KeyError:
            raise ValueError(
                f"class {cls.name!r} is disconnected by the failure "
                f"of {failed_node!r}") from None
        survivors.append(replace(cls, path=new_path, rev_path=None))
        rerouted.append(cls.name)

    node_capacity = {
        resource: {node: cap for node, cap in caps.items()
                   if node != failed_node}
        for resource, caps in state.node_capacity.items()
    }
    link_capacity = {link: cap for link, cap in
                     state.link_capacity.items()
                     if failed_node not in link}
    dc_node = state.dc_node if state.dc_node != failed_node else None
    if dc_node is not None and dc_node not in topology.nodes:
        dc_node = None

    new_state = NetworkState(
        topology, routing, survivors, node_capacity, link_capacity,
        link_background_bytes(survivors), dc_node=dc_node)
    impact = FailureImpact(
        failed_node=failed_node,
        rerouted_classes=sorted(rerouted),
        dropped_classes=sorted(dropped),
        surviving_sessions=sum(c.num_sessions for c in survivors),
        lost_sessions=lost_sessions)
    return new_state, impact


def fail_link(state: NetworkState, endpoint_a: str, endpoint_b: str
              ) -> "tuple[NetworkState, FailureImpact]":
    """Remove one link and reroute the classes that used it.

    Unlike a node failure no traffic is dropped unless the link was a
    bridge whose loss disconnects some pair, in which case a
    ``ValueError`` is raised.
    """
    from repro.topology.topology import Topology, canonical_link

    link = canonical_link(endpoint_a, endpoint_b)
    if link not in state.topology.links:
        raise ValueError(f"link {link} not in topology")
    topology = Topology(
        f"{state.topology.name}-{link[0]}={link[1]}",
        state.topology.nodes,
        [l for l in state.topology.links if l != link],
        state.topology.populations)
    routing = RoutingTable(topology)

    rerouted: List[str] = []
    survivors: List[TrafficClass] = []
    for cls in state.classes:
        used = (link in Topology.path_links(cls.path) or
                (cls.rev_path is not None and
                 link in Topology.path_links(cls.rev_path)))
        if not used:
            survivors.append(cls)
            continue
        try:
            new_path = routing.path(cls.source, cls.target)
        except KeyError:
            raise ValueError(
                f"class {cls.name!r} is disconnected by losing "
                f"link {link}") from None
        survivors.append(replace(cls, path=new_path, rev_path=None))
        rerouted.append(cls.name)

    link_capacity = {l: cap for l, cap in state.link_capacity.items()
                     if l != link}
    new_state = NetworkState(
        topology, routing, survivors, state.node_capacity,
        link_capacity, link_background_bytes(survivors),
        dc_node=state.dc_node)
    impact = FailureImpact(
        failed_node=f"{link[0]}-{link[1]}",
        rerouted_classes=sorted(rerouted),
        dropped_classes=[],
        surviving_sessions=sum(c.num_sessions for c in survivors),
        lost_sessions=0.0)
    return new_state, impact


def cascade_risk(state: NetworkState,
                 candidate_nodes: Sequence[str] = ()) -> List[str]:
    """Nodes whose failure would disconnect some surviving class.

    Useful for pre-computing which single failures the current routing
    cannot absorb (candidates default to every non-DC node).
    """
    risky = []
    candidates = list(candidate_nodes) or [
        n for n in state.topology.nodes if n != state.dc_node]
    for node in candidates:
        try:
            fail_node(state, node)
        except ValueError:
            risky.append(node)
    return risky
