"""Shared scaffolding for the four LP formulations.

:class:`Formulation` factors out what :class:`ReplicationProblem`,
:class:`SplitTrafficProblem`, :class:`AggregationProblem` and
:class:`CombinedProblem` used to each re-implement: model caching,
solve-then-unpack, and — new with this layer — *named parameters* kept
separate from LP *structure*.

A parameter (``max_link_load``, ``beta``, ``gamma``, the per-class
``volumes``) only scales coefficients or right-hand sides of an
already-built LP; the set of variables and constraints never depends on
it. Each subclass declares its parameters in ``__init__`` and, while
building, registers *bindings*: closures that re-derive the affected
coefficients from the current parameter values and patch them into the
model in place (see :meth:`~repro.lpsolve.Model.set_rhs` and friends).

:meth:`Formulation.resolve` is the payoff — the sweep experiments
(Figures 11, 15, 18) and the controller's refresh loop change one
parameter per step, and a resolve re-uses the compiled sparse matrices
instead of rebuilding the LP from scratch. When a patch would change
the compiled structure (a coefficient that compiled to an absent entry,
or a formulation extension outside the incremental path), the
formulation transparently falls back to a cold rebuild, so ``resolve``
is always *correct* and merely usually *fast*.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import (Any, Callable, Dict, FrozenSet, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from repro.core.inputs import NetworkState
from repro.lpsolve import Model, SolverBackend, StructureError
from repro.obs import get_registry
from repro.traffic.classes import TrafficClass

Validator = Callable[[Any], None]


def _check_max_link_load(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError("max_link_load must be in [0, 1]")


def _check_non_negative(name: str) -> Validator:
    def check(value: float) -> None:
        if value < 0:
            raise ValueError(f"{name} must be non-negative")
    return check


class Formulation:
    """Base class for the optimization problems.

    Subclasses implement:

    - ``_build(model)`` — add variables, constraints and the objective
      to a fresh model, and register parameter bindings via
      :meth:`_bind`;
    - ``_reset()`` — clear the variable/expression bookkeeping filled
      in by ``_build`` (called before every (re)build);
    - ``_unpack(model, solution)`` — turn a solved model into the
      formulation's result dataclass.

    Args:
        state: calibrated network-wide inputs.
        backend: solver backend forwarded to the underlying
            :class:`~repro.lpsolve.Model` (name, instance, or None for
            the process default).
    """

    #: label used in the model name, e.g. ``replication[internet2]``.
    kind = "lp"

    def __init__(self, state: NetworkState,
                 backend: Union[None, str, SolverBackend] = None) -> None:
        self.state = state
        self.backend = backend
        self._model: Optional[Model] = None
        self._params: Dict[str, Any] = {}
        self._validators: Dict[str, Validator] = {}
        self._bindings: List[Tuple[FrozenSet[str],
                                   Callable[[], None]]] = []
        # Extensions that rewrite the objective/constraints beyond the
        # parameter calculus opt out of in-place patching; resolve()
        # then always rebuilds (still correct, just not incremental).
        self._incremental_ok = True
        self._declare_param(
            "volumes",
            {cls.name: cls.num_sessions for cls in state.classes},
            self._check_volumes)

    # -- parameters --------------------------------------------------------

    def _declare_param(self, name: str, value: Any,
                       validate: Optional[Validator] = None) -> None:
        """Register a named parameter (validated now and on resolve)."""
        if validate is not None:
            validate(value)
            self._validators[name] = validate
        self._params[name] = value

    def param(self, name: str) -> Any:
        """Current value of a declared parameter."""
        return self._params[name]

    @property
    def param_names(self) -> Sequence[str]:
        """Names accepted by :meth:`resolve`."""
        return tuple(sorted(self._params))

    @property
    def volumes(self) -> Dict[str, float]:
        """Per-class session counts ``|T_c|`` (a copy)."""
        return dict(self._params["volumes"])

    def _check_volumes(self, volumes: Mapping[str, float]) -> None:
        expected = {cls.name for cls in self.state.classes}
        got = set(volumes)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise ValueError(
                "volumes must cover exactly the state's classes"
                + (f"; missing {missing}" if missing else "")
                + (f"; unknown {extra}" if extra else ""))
        for name, sessions in volumes.items():
            if sessions < 0:
                raise ValueError(
                    f"volumes[{name!r}] must be non-negative")

    # -- building ----------------------------------------------------------

    def _bind(self, depends: Sequence[str],
              apply_fn: Callable[[], None]) -> None:
        """Register a patch closure run when any of ``depends``
        changes via :meth:`resolve` (registration order preserved)."""
        self._bindings.append((frozenset(depends), apply_fn))

    def build_model(self) -> Model:
        """Construct the LP, or return the cached one.

        Idempotent: repeated calls reuse the same model (re-building
        into the same model used to duplicate every variable under
        ``#N``-suffixed names).
        """
        if self._model is not None:
            return self._model
        self._bindings = []
        self._reset()
        model = Model(f"{self.kind}[{self.state.topology.name}]",
                      backend=self.backend)
        self._build(model)
        self._model = model
        return model

    def invalidate(self) -> None:
        """Drop the cached model; the next solve rebuilds from the
        current state and parameters."""
        self._model = None
        self._bindings = []

    # -- solving -----------------------------------------------------------

    def solve(self) -> Any:
        """Build (or reuse) the model, solve, and unpack the result.

        With ``REPRO_VERIFY_MODELS=1`` in the environment, the built
        model is passed through the static model verifier
        (:func:`repro.analysis.modelcheck.precheck`) before the solver
        runs, so structural corruption (dangling columns, duplicate
        rows, broken coverage rows) fails fast with a diagnostic
        instead of surfacing as solver noise or silent misconfigs.
        """
        model = self.build_model()
        if os.environ.get("REPRO_VERIFY_MODELS", "").strip() not in (
                "", "0"):
            from repro.analysis.modelcheck import precheck

            precheck(model)
        solution = model.solve()
        return self._unpack(model, solution)

    def resolve(self, **params: Any) -> Any:
        """Re-solve after changing named parameters.

        Patches only the coefficients and right-hand sides the changed
        parameters touch (via the bindings registered at build time),
        keeping the compiled sparse structure warm. Falls back to a
        full rebuild when the model was never built, an extension
        disables incremental patching, or a patch raises
        :class:`~repro.lpsolve.StructureError`.

        Args:
            **params: new values for declared parameters (see
                :attr:`param_names`); ``volumes`` takes a full
                ``{class name: num_sessions}`` mapping.

        Returns:
            The same result type as :meth:`solve`.
        """
        metrics = get_registry()
        with metrics.span("lp.resolve"):
            metrics.inc("lp.resolves")
            return self._resolve(params)

    def _resolve(self, params: Dict[str, Any]):
        unknown = sorted(set(params) - set(self._params))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown}; {type(self).__name__} "
                f"accepts {list(self.param_names)}")
        changed: Dict[str, Any] = {}
        for name, value in params.items():
            if name == "volumes":
                value = dict(value)
            validator = self._validators.get(name)
            if validator is not None:
                validator(value)
            if self._params[name] != value:
                changed[name] = value

        if not changed:
            return self.solve()

        if "volumes" in changed:
            self._apply_volumes(changed["volumes"])
        for name, value in changed.items():
            if name != "volumes":
                self._params[name] = value

        if self._model is None or not self._incremental_ok:
            self.invalidate()
            return self.solve()

        names = frozenset(changed)
        try:
            for depends, apply_fn in self._bindings:
                if depends & names:
                    apply_fn()
        except StructureError:
            # The patch needed an entry the compiled matrices never
            # stored (e.g. a coefficient that was zero at build time).
            # A partially-patched model is discarded wholesale; the
            # rebuild below re-derives everything from state + params.
            self.invalidate()
        return self.solve()

    def _apply_volumes(self, volumes: Dict[str, float]) -> None:
        """Swap in new per-class session counts.

        Rebuilds the state via :meth:`NetworkState.with_traffic` so the
        background link loads track the new traffic exactly as a cold
        construction would.
        """
        new_classes = [replace(cls, num_sessions=volumes[cls.name])
                       for cls in self.state.classes]
        self.state = self.state.with_traffic(new_classes)
        self._params["volumes"] = dict(volumes)

    def resolve_traffic(self, classes: Sequence[TrafficClass],
                        **params: Any) -> Any:
        """Re-solve for a new traffic matrix (Figure 15 / controller).

        When the classes differ from the current ones only in
        ``num_sessions`` this is a ``resolve(volumes=...)`` — the warm
        path. A structural change (different paths, footprints, class
        set) swaps the state and rebuilds from scratch. Extra keyword
        arguments are forwarded to :meth:`resolve` as additional
        parameter changes.
        """
        classes = list(classes)
        volumes = {cls.name: cls.num_sessions for cls in classes}
        if self._traffic_compatible(classes):
            return self.resolve(volumes=volumes, **params)
        self.state = self.state.with_traffic(classes)
        self._params["volumes"] = volumes
        self.invalidate()
        return self.resolve(**params)

    def _traffic_compatible(self,
                            classes: Sequence[TrafficClass]) -> bool:
        """True when ``classes`` matches the current traffic in
        everything except session counts (same order, names, paths,
        byte sizes, footprints)."""
        current = self.state.classes
        if len(classes) != len(current):
            return False
        for new, old in zip(classes, current):
            if replace(new, num_sessions=old.num_sessions) != old:
                return False
        return True

    # -- subclass hooks ----------------------------------------------------

    def _reset(self) -> None:
        raise NotImplementedError

    def _build(self, model: Model) -> None:
        raise NotImplementedError

    def _unpack(self, model: Model, solution):
        raise NotImplementedError


__all__ = ["Formulation"]
