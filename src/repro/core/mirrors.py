"""Mirror-set policies: who may each NIDS node offload to.

Section 4 defines a mirror set ``M_j`` per node — the candidates node
``j`` may replicate traffic to. The paper exercises three shapes, all
expressible here: a single datacenter (``M_j = {N_DC}``), local one- or
two-hop neighborhoods, and the fully general "all nodes" policy, plus
the Figure 15 combination of datacenter + one-hop neighbors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.core.inputs import NetworkState


class MirrorKind(enum.Enum):
    """Supported mirror-set shapes."""

    NONE = "none"
    DATACENTER = "datacenter"
    NEIGHBORS = "neighbors"
    DATACENTER_PLUS_NEIGHBORS = "datacenter+neighbors"
    ALL = "all"


@dataclass(frozen=True)
class MirrorPolicy:
    """A declarative mirror-set policy.

    Build instances with the class-method constructors::

        MirrorPolicy.none()                  # pure on-path [29]
        MirrorPolicy.datacenter()            # M_j = {N_DC}
        MirrorPolicy.neighbors(hops=1)       # local offload
        MirrorPolicy.datacenter_plus_neighbors(hops=1)
        MirrorPolicy.all_nodes()             # M_j = N \\ {N_j}
    """

    kind: MirrorKind
    hops: int = 0

    @classmethod
    def none(cls) -> "MirrorPolicy":
        return cls(MirrorKind.NONE)

    @classmethod
    def datacenter(cls) -> "MirrorPolicy":
        return cls(MirrorKind.DATACENTER)

    @classmethod
    def neighbors(cls, hops: int = 1) -> "MirrorPolicy":
        if hops < 1:
            raise ValueError("hops must be at least 1")
        return cls(MirrorKind.NEIGHBORS, hops=hops)

    @classmethod
    def datacenter_plus_neighbors(cls, hops: int = 1) -> "MirrorPolicy":
        if hops < 1:
            raise ValueError("hops must be at least 1")
        return cls(MirrorKind.DATACENTER_PLUS_NEIGHBORS, hops=hops)

    @classmethod
    def all_nodes(cls) -> "MirrorPolicy":
        return cls(MirrorKind.ALL)

    def mirror_sets(self, state: NetworkState) -> Dict[str, List[str]]:
        """Materialize ``M_j`` for every NIDS node of ``state``.

        The datacenter node itself never offloads (its mirror set is
        empty), and no node mirrors to itself.
        """
        dc = state.dc_node
        if self.kind in (MirrorKind.DATACENTER,
                         MirrorKind.DATACENTER_PLUS_NEIGHBORS) and dc is None:
            raise ValueError(
                f"mirror policy {self.kind.value!r} needs a datacenter; "
                "build the state with dc_capacity_factor set")

        sets: Dict[str, List[str]] = {}
        for node in state.nids_nodes:
            if node == dc:
                sets[node] = []
                continue
            mirrors: List[str] = []
            if self.kind is MirrorKind.NONE:
                pass
            elif self.kind is MirrorKind.DATACENTER:
                mirrors = [dc]
            elif self.kind is MirrorKind.NEIGHBORS:
                mirrors = [n for n in
                           state.topology.nodes_within(node, self.hops)
                           if n != dc]
            elif self.kind is MirrorKind.DATACENTER_PLUS_NEIGHBORS:
                nearby = [n for n in
                          state.topology.nodes_within(node, self.hops)
                          if n != dc]
                mirrors = sorted(set(nearby) | {dc})
            elif self.kind is MirrorKind.ALL:
                mirrors = [n for n in state.nids_nodes if n != node]
            sets[node] = mirrors
        return sets

    def describe(self) -> str:
        """Human-readable label used in experiment output."""
        if self.kind in (MirrorKind.NEIGHBORS,
                         MirrorKind.DATACENTER_PLUS_NEIGHBORS):
            return f"{self.kind.value}({self.hops}-hop)"
        return self.kind.value
