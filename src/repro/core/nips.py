"""NIPS extension (Section 9, "Extending to NIPS and active monitoring").

Intrusion *prevention* systems sit on the forwarding path, so
offloading cannot copy traffic — it must **reroute** it through the
mirror. The paper identifies the two consequences this formulation
handles:

1. ``BG_l`` is no longer a constant: traffic rerouted at node ``j``
   leaves its original downstream links and instead traverses
   ``P_{j,j'}`` and then the path from the mirror to the class's
   egress. Because the removed fraction on a downstream link is simply
   the sum of the reroute fractions at or before it, link load remains
   *linear* in the decision variables — no fixed-point iteration is
   needed.
2. Rerouting adds forwarding latency. The detour cost of rerouting at
   ``j`` via ``j'`` is ``hops(j,j') + hops(j',egress) - hops(j,egress)``
   extra hops; the formulation bounds each class's expected detour.

Everything else (coverage, node loads, min-max objective) matches the
Section 4 replication LP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.results import LPStats, ReplicationResult
from repro.lpsolve import LinExpr, Model, Variable, lin_sum
from repro.topology.topology import Link, Topology


@dataclass
class NIPSResult(ReplicationResult):
    """Replication-style result plus per-class expected detour hops."""

    extra_hops: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_extra_hops(self) -> float:
        """Traffic-unweighted mean detour across classes."""
        if not self.extra_hops:
            return 0.0
        return sum(self.extra_hops.values()) / len(self.extra_hops)


class NIPSProblem:
    """Reroute-based offloading for inline NIPS devices.

    Args:
        state: calibrated inputs (same as the NIDS formulations).
        mirror_policy: candidate reroute targets ``M_j``.
        max_link_load: utilization bound per link — now accounting for
            *both* removed and added traffic.
        max_latency_penalty: bound on each class's expected detour, in
            hops (e.g., 2.0 means on average at most two extra hops per
            rerouted session, amortized over the class).
    """

    def __init__(self, state: NetworkState,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 max_latency_penalty: float = 2.0) -> None:
        if not 0.0 <= max_link_load <= 1.0:
            raise ValueError("max_link_load must be in [0, 1]")
        if max_latency_penalty < 0:
            raise ValueError("max_latency_penalty must be non-negative")
        self.state = state
        self.mirror_policy = mirror_policy or MirrorPolicy.none()
        self.max_link_load = max_link_load
        self.max_latency_penalty = max_latency_penalty
        self._model: Optional[Model] = None
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._o: Dict[Tuple[str, str, str], Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._link_exprs: Dict[Link, LinExpr] = {}
        self._detour_exprs: Dict[str, LinExpr] = {}

    def _detour_hops(self, node: str, mirror: str, egress: str) -> int:
        """Extra hops for traffic rerouted at ``node`` via ``mirror``."""
        routing = self.state.routing
        return (routing.hop_count(node, mirror) +
                routing.hop_count(mirror, egress) -
                routing.hop_count(node, egress))

    def build_model(self) -> Model:
        """Construct (and cache) the NIPS LP."""
        state = self.state
        model = Model(f"nips[{state.topology.name}]")
        mirror_sets = self.mirror_policy.mirror_sets(state)

        o_by_class: Dict[str, List[Variable]] = {}
        for cls in state.classes:
            for node in cls.path:
                self._p[(cls.name, node)] = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
            path_set = set(cls.path)
            offloads = o_by_class.setdefault(cls.name, [])
            for node in cls.path:
                for mirror in mirror_sets[node]:
                    if mirror in path_set:
                        continue
                    var = model.add_variable(
                        f"o[{cls.name},{node},{mirror}]", lb=0.0, ub=1.0)
                    self._o[(cls.name, node, mirror)] = var
                    offloads.append(var)

        for cls in state.classes:
            terms = [self._p[(cls.name, node)] for node in cls.path]
            terms.extend(o_by_class[cls.name])
            model.add_constraint(lin_sum(terms) == 1.0,
                                 name=f"cover[{cls.name}]")

        # Node loads — identical to Section 4 (the mirror inspects the
        # rerouted traffic inline).
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        by_name = {cls.name: cls for cls in state.classes}
        for cls in state.classes:
            for resource in state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                if work == 0.0:
                    continue
                for node in cls.path:
                    cap = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        self._p[(cls.name, node)] * (work / cap))
        for (cls_name, _, mirror), var in self._o.items():
            cls = by_name[cls_name]
            for resource in state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                if work == 0.0:
                    continue
                cap = state.capacity(resource, mirror)
                load_terms[(resource, mirror)].append(var * (work / cap))

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            model.add_constraint(load_cost >= expr,
                                 name=f"loadcost[{resource},{node}]")

        # Link loads: BG decomposed per class; rerouting at j removes
        # the class's bytes from links downstream of j and adds them on
        # P(j, mirror) + P(mirror, egress).
        link_terms: Dict[Link, List[LinExpr]] = {
            link: [] for link in state.topology.links}
        link_constants: Dict[Link, float] = {
            link: 0.0 for link in state.topology.links}

        for cls in state.classes:
            class_bytes = cls.num_sessions * cls.session_bytes
            links_on_path = Topology.path_links(cls.path)
            for link in links_on_path:
                link_constants[link] += class_bytes
            if cls.rev_path is not None:
                # NIPS rerouting of asymmetric classes is out of scope
                # (the paper's NIPS discussion assumes the forwarding
                # path); treat their background as fixed.
                continue
        for (cls_name, node, mirror), var in self._o.items():
            cls = by_name[cls_name]
            class_bytes = cls.num_sessions * cls.session_bytes
            node_index = cls.path.index(node)
            # Removed from the original downstream links...
            downstream = Topology.path_links(cls.path[node_index:])
            for link in downstream:
                coeff = -class_bytes / state.link_capacity[link]
                link_terms[link].append(var * coeff)
            # ...and added on the detour.
            detour_links = (state.routing.path_links(node, mirror) +
                            state.routing.path_links(mirror,
                                                     cls.target))
            for link in detour_links:
                coeff = class_bytes / state.link_capacity[link]
                link_terms[link].append(var * coeff)

        for link in state.topology.links:
            bg = link_constants[link] / state.link_capacity[link]
            expr = lin_sum(link_terms[link]) + bg
            self._link_exprs[link] = expr
            if not link_terms[link]:
                continue
            bound = max(self.max_link_load, bg)
            model.add_constraint(expr <= bound,
                                 name=f"linkload[{link[0]},{link[1]}]")
            # Rerouting cannot drive a link's load negative.
            model.add_constraint(expr >= 0.0,
                                 name=f"linkfloor[{link[0]},{link[1]}]")

        # Latency: bound each class's expected detour hops.
        for cls in state.classes:
            terms = []
            for (cls_name, node, mirror), var in self._o.items():
                if cls_name != cls.name:
                    continue
                detour = self._detour_hops(node, mirror, cls.target)
                if detour:
                    terms.append(var * float(detour))
            expr = lin_sum(terms)
            self._detour_exprs[cls.name] = expr
            if terms:
                model.add_constraint(
                    expr <= self.max_latency_penalty,
                    name=f"latency[{cls.name}]")

        model.minimize(load_cost)
        self._model = model
        self._load_cost_var = load_cost
        return model

    def solve(self) -> NIPSResult:
        """Solve and unpack, including per-class expected detours."""
        model = self._model or self.build_model()
        solution = model.solve()
        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)
        offload: Dict[str, Dict[Tuple[str, str], float]] = {}
        for (cls_name, node, mirror), var in self._o.items():
            offload.setdefault(cls_name, {})[(node, mirror)] = \
                solution.value(var)
        return NIPSResult(
            load_cost=solution.value(self._load_cost_var),
            node_loads=node_loads,
            process_fractions=process,
            offload_fractions=offload,
            link_loads={link: solution.value(expr)
                        for link, expr in self._link_exprs.items()},
            max_link_load=self.max_link_load,
            extra_hops={name: solution.value(expr)
                        for name, expr in self._detour_exprs.items()},
            dc_node=self.state.dc_node,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))
