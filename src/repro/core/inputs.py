"""Problem inputs: the network-wide state the controller optimizes over.

:class:`NetworkState` bundles everything Figure 6's management module
collects — topology, routing, traffic classes, per-node resource
capacities ``Cap_j^r``, link capacities and background link loads
``BG_l`` — plus the Section 8.2 calibration used throughout the
evaluation:

- every link's capacity is 3x the byte volume of the most congested
  link, so ``max_l BG_l == 1/3`` (the paper's ~0.3 typical utilization);
- every NIDS node's capacity equals the maximum per-node requirement of
  an Ingress-only deployment, so Ingress-only has max compute load 1.0
  by construction;
- an optional datacenter node with ``alpha`` times that capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.topology.routing import RoutingTable
from repro.topology.topology import Link, Topology, canonical_link
from repro.traffic.classes import TrafficClass

DC_NODE_NAME = "DC"


def ingress_requirements(classes: Sequence[TrafficClass],
                         resources: Sequence[str]
                         ) -> Dict[str, Dict[str, float]]:
    """Per-node resource demand of today's Ingress-only deployment.

    Every class is fully processed at its ingress gateway (Figure 1),
    so node ``j`` needs ``sum_{c: ingress(c)=j} F_c^r |T_c|`` of each
    resource ``r``.
    """
    demand: Dict[str, Dict[str, float]] = {r: {} for r in resources}
    for cls in classes:
        for resource in resources:
            per_node = demand[resource]
            per_node[cls.ingress] = (per_node.get(cls.ingress, 0.0) +
                                     cls.footprint(resource) *
                                     cls.num_sessions)
    return demand


def link_background_bytes(classes: Sequence[TrafficClass]
                          ) -> Dict[Link, float]:
    """Bytes each link carries before any replication.

    Symmetric classes place their full session bytes on every link of
    their path; asymmetric classes split half to the forward path and
    half to the reverse path.
    """
    volumes: Dict[Link, float] = {}
    for cls in classes:
        if cls.is_symmetric:
            for link in Topology.path_links(cls.path):
                volumes[link] = volumes.get(link, 0.0) + cls.total_bytes
        else:
            for path, share in ((cls.path, 0.5), (cls.rev_nodes, 0.5)):
                for link in Topology.path_links(path):
                    volumes[link] = (volumes.get(link, 0.0) +
                                     share * cls.total_bytes)
    return volumes


class NetworkState:
    """Everything the optimization formulations need, in one object.

    Prefer the :meth:`calibrated` constructor, which applies the
    paper's Section 8.2 conventions. The raw constructor is available
    for tests and custom scenarios.

    Args:
        topology: the network (including any datacenter node).
        routing: symmetric routes over ``topology``.
        classes: traffic classes with resolved paths.
        node_capacity: ``Cap_j^r`` as ``{resource: {node: capacity}}``.
        link_capacity: ``LinkCap_l`` in bytes per epoch.
        bg_bytes: pre-replication bytes per link.
        dc_node: name of the datacenter node, if any.
    """

    def __init__(self, topology: Topology, routing: RoutingTable,
                 classes: Sequence[TrafficClass],
                 node_capacity: Dict[str, Dict[str, float]],
                 link_capacity: Dict[Link, float],
                 bg_bytes: Dict[Link, float],
                 dc_node: Optional[str] = None) -> None:
        self.topology = topology
        self.routing = routing
        self.classes: List[TrafficClass] = list(classes)
        self.node_capacity = {r: dict(caps)
                              for r, caps in node_capacity.items()}
        self.link_capacity = dict(link_capacity)
        self.bg_bytes = dict(bg_bytes)
        self.dc_node = dc_node
        self._validate()

    def _validate(self) -> None:
        nodes = set(self.topology.nodes)
        for cls in self.classes:
            unknown = set(cls.path) - nodes
            if cls.rev_path is not None:
                unknown |= set(cls.rev_path) - nodes
            if unknown:
                raise ValueError(
                    f"class {cls.name!r} references unknown nodes "
                    f"{sorted(unknown)}")
        for resource, caps in self.node_capacity.items():
            missing = nodes - set(caps)
            if missing:
                raise ValueError(
                    f"resource {resource!r} missing capacities for "
                    f"{sorted(missing)}")
            for node, cap in caps.items():
                if cap <= 0:
                    raise ValueError(
                        f"non-positive capacity for {node!r}/{resource!r}")
        for link in self.topology.links:
            if self.link_capacity.get(link, 0.0) <= 0:
                raise ValueError(f"link {link} has no capacity")
        if self.dc_node is not None and self.dc_node not in nodes:
            raise ValueError(f"datacenter {self.dc_node!r} not in topology")

    # -- calibrated construction -----------------------------------------

    @classmethod
    def calibrated(cls, topology: Topology,
                   classes: Sequence[TrafficClass],
                   resources: Sequence[str] = ("cpu",),
                   dc_capacity_factor: Optional[float] = None,
                   dc_anchor: Optional[str] = None,
                   link_headroom: float = 3.0) -> "NetworkState":
        """Build state with the paper's Section 8.2 calibration.

        Args:
            topology: base topology *without* a datacenter node.
            classes: traffic classes routed over ``topology``.
            resources: resource names to provision.
            dc_capacity_factor: when set, attach a datacenter node with
                this multiple (alpha) of the per-node capacity.
            dc_anchor: PoP the datacenter attaches to. Defaults to the
                paper's best strategy — the PoP observing the most
                traffic (including transit).
            link_headroom: link capacity as a multiple of the busiest
                link's background bytes (3.0 gives max BG = 1/3).
        """
        if link_headroom <= 1.0:
            raise ValueError("link_headroom must exceed 1.0")

        demand = ingress_requirements(classes, resources)
        base_capacity = {
            resource: max(per_node.values()) if per_node else 1.0
            for resource, per_node in demand.items()
        }

        dc_node = None
        if dc_capacity_factor is not None:
            if dc_capacity_factor <= 0:
                raise ValueError("dc_capacity_factor must be positive")
            if dc_anchor is None:
                from repro.core.placement import place_datacenter

                dc_anchor = place_datacenter(topology, classes,
                                             strategy="observed")
            topology = topology.with_datacenter(dc_anchor, DC_NODE_NAME)
            dc_node = DC_NODE_NAME
        routing = RoutingTable(topology)

        node_capacity: Dict[str, Dict[str, float]] = {}
        for resource in resources:
            caps = {node: base_capacity[resource]
                    for node in topology.nodes}
            if dc_node is not None:
                caps[dc_node] = (base_capacity[resource] *
                                 dc_capacity_factor)
            node_capacity[resource] = caps

        bg = link_background_bytes(classes)
        busiest = max(bg.values()) if bg else 1.0
        link_capacity = {link: link_headroom * busiest
                         for link in topology.links}
        return cls(topology, routing, classes, node_capacity,
                   link_capacity, bg, dc_node=dc_node)

    # -- accessors ---------------------------------------------------------

    @property
    def resources(self) -> List[str]:
        """Resource names with provisioned capacities."""
        return sorted(self.node_capacity)

    @property
    def nids_nodes(self) -> List[str]:
        """All NIDS nodes (PoPs plus any datacenter)."""
        return self.topology.nodes

    def capacity(self, resource: str, node: str) -> float:
        """``Cap_j^r``."""
        return self.node_capacity[resource][node]

    def bg_load(self, link: Link) -> float:
        """``BG_l`` — normalized pre-replication load on a link."""
        link = canonical_link(*link)
        return self.bg_bytes.get(link, 0.0) / self.link_capacity[link]

    def max_bg_load(self) -> float:
        """``max_l BG_l`` (1/3 under default calibration)."""
        return max((self.bg_load(link) for link in self.topology.links),
                   default=0.0)

    def ingress_load(self, resource: str = "cpu") -> Dict[str, float]:
        """Normalized per-node load of the Ingress-only deployment."""
        demand = ingress_requirements(self.classes, [resource])[resource]
        return {node: demand.get(node, 0.0) / self.capacity(resource, node)
                for node in self.nids_nodes}

    # -- derived states ------------------------------------------------------

    def with_traffic(self, classes: Sequence[TrafficClass]
                     ) -> "NetworkState":
        """Same provisioning, different traffic.

        Used for the variability study (Figure 15): capacities were
        provisioned for the mean matrix and stay fixed; background link
        bytes are recomputed for the new traffic.
        """
        return NetworkState(
            self.topology, self.routing, classes,
            self.node_capacity, self.link_capacity,
            link_background_bytes(classes), dc_node=self.dc_node)

    def with_augmented_capacity(self, extra_factor: float,
                                resources: Optional[Iterable[str]] = None
                                ) -> "NetworkState":
        """The "Path, Augmented" provisioning (Figure 13).

        Spreads ``extra_factor`` times the baseline per-node capacity
        evenly across all non-datacenter NIDS nodes (each gets an extra
        ``extra_factor / |N|`` share).
        """
        if extra_factor < 0:
            raise ValueError("extra_factor must be non-negative")
        targets = [n for n in self.nids_nodes if n != self.dc_node]
        node_capacity = {}
        for resource, caps in self.node_capacity.items():
            if resources is not None and resource not in resources:
                node_capacity[resource] = dict(caps)
                continue
            baseline = max(caps[n] for n in targets)
            extra = extra_factor * baseline / len(targets)
            node_capacity[resource] = {
                node: cap + (extra if node in targets else 0.0)
                for node, cap in caps.items()
            }
        return NetworkState(
            self.topology, self.routing, self.classes, node_capacity,
            self.link_capacity, self.bg_bytes, dc_node=self.dc_node)

    def class_by_name(self, name: str) -> TrafficClass:
        """Look up a class by its unique name."""
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class named {name!r}")

    def __repr__(self) -> str:
        return (f"NetworkState({self.topology.name!r}, "
                f"classes={len(self.classes)}, "
                f"resources={self.resources}, dc={self.dc_node!r})")
