"""NIDS deployment architectures compared throughout the evaluation.

The paper's figures compare fixed named configurations:

- ``INGRESS`` — today's single-vantage-point deployment (Figure 1):
  every class fully processed at its ingress gateway; max load is 1.0
  by construction under the Section 8.2 calibration.
- ``PATH_NO_REPLICATE`` — strict on-path distribution [29] (Figure 2).
- ``PATH_REPLICATE`` — on-path + replication to a datacenter cluster
  (Section 4); called "DC Only" in Figure 15.
- ``PATH_AUGMENTED`` — no datacenter, but the datacenter's aggregate
  capacity spread evenly across all NIDS nodes (Figure 13's fairness
  baseline).
- ``ONE_HOP`` / ``TWO_HOP`` — local replication to 1- or 2-hop
  neighbors, no datacenter (Figure 14).
- ``DC_PLUS_ONE_HOP`` — datacenter plus 1-hop neighbors (Figure 15).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence

from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.core.results import LPStats, ReplicationResult
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass


class ArchitectureKind(enum.Enum):
    """Named NIDS deployment architectures from the paper's figures."""

    INGRESS = "ingress"
    PATH_NO_REPLICATE = "path-no-replicate"
    PATH_REPLICATE = "path-replicate"
    PATH_AUGMENTED = "path-augmented"
    ONE_HOP = "one-hop"
    TWO_HOP = "two-hop"
    DC_PLUS_ONE_HOP = "dc+one-hop"


_NEEDS_DC = {ArchitectureKind.PATH_REPLICATE,
             ArchitectureKind.DC_PLUS_ONE_HOP}


def ingress_result(state: NetworkState) -> ReplicationResult:
    """Evaluate the Ingress-only deployment (no LP needed).

    Every class is processed entirely at its ingress gateway, so the
    loads are fixed by the traffic and the result is exact.
    """
    node_loads = {resource: state.ingress_load(resource)
                  for resource in state.resources}
    process = {cls.name: {cls.ingress: 1.0} for cls in state.classes}
    load_cost = max(max(loads.values(), default=0.0)
                    for loads in node_loads.values())
    return ReplicationResult(
        load_cost=load_cost,
        node_loads=node_loads,
        process_fractions=process,
        offload_fractions={},
        link_loads={link: state.bg_load(link)
                    for link in state.topology.links},
        max_link_load=1.0,
        dc_node=state.dc_node,
        stats=LPStats(num_variables=0, num_constraints=0,
                      solve_seconds=0.0, iterations=0))


class ArchitectureEvaluator:
    """Evaluates the named architectures on a common calibration.

    Capacities are provisioned once from the *mean* traffic (matching
    the paper), so time-varying traffic (Figure 15) can be evaluated
    against fixed provisioning via the ``classes`` argument of
    :meth:`evaluate`.

    Args:
        topology: base network, no datacenter.
        classes: mean-traffic classes used for calibration.
        resources: resources to provision.
        dc_capacity_factor: datacenter capacity alpha (also the total
            extra capacity spread by ``PATH_AUGMENTED``).
        max_link_load: ``MaxLinkLoad`` for replication-enabled runs.
        dc_anchor: datacenter attachment PoP; defaults to the paper's
            most-observed-traffic placement.
    """

    def __init__(self, topology: Topology,
                 classes: Sequence[TrafficClass],
                 resources: Sequence[str] = ("cpu",),
                 dc_capacity_factor: float = 10.0,
                 max_link_load: float = 0.4,
                 dc_anchor: Optional[str] = None) -> None:
        self.topology = topology
        self.max_link_load = max_link_load
        self.dc_capacity_factor = dc_capacity_factor
        self.base_state = NetworkState.calibrated(
            topology, classes, resources=resources)
        self.dc_state = NetworkState.calibrated(
            topology, classes, resources=resources,
            dc_capacity_factor=dc_capacity_factor, dc_anchor=dc_anchor)
        self.augmented_state = self.base_state.with_augmented_capacity(
            dc_capacity_factor)
        # One cached formulation per architecture: the Figure 15 sweep
        # re-evaluates each architecture across ~100 traffic matrices,
        # and only the volumes change between them.
        self._problems: Dict[ArchitectureKind, ReplicationProblem] = {}

    def state_for(self, kind: ArchitectureKind) -> NetworkState:
        """The calibrated state an architecture is evaluated on."""
        if kind in _NEEDS_DC:
            return self.dc_state
        if kind is ArchitectureKind.PATH_AUGMENTED:
            return self.augmented_state
        return self.base_state

    def _mirror_policy(self, kind: ArchitectureKind) -> MirrorPolicy:
        if kind is ArchitectureKind.PATH_REPLICATE:
            return MirrorPolicy.datacenter()
        if kind is ArchitectureKind.DC_PLUS_ONE_HOP:
            return MirrorPolicy.datacenter_plus_neighbors(hops=1)
        if kind is ArchitectureKind.ONE_HOP:
            return MirrorPolicy.neighbors(hops=1)
        if kind is ArchitectureKind.TWO_HOP:
            return MirrorPolicy.neighbors(hops=2)
        return MirrorPolicy.none()

    def evaluate(self, kind: ArchitectureKind,
                 classes: Optional[Sequence[TrafficClass]] = None
                 ) -> ReplicationResult:
        """Evaluate one architecture, optionally on substitute traffic.

        Args:
            kind: which architecture.
            classes: alternate traffic (e.g., one time-varying matrix);
                provisioning stays calibrated to the mean traffic.
        """
        state = self.state_for(kind)
        if kind is ArchitectureKind.INGRESS:
            if classes is not None:
                state = state.with_traffic(classes)
            return ingress_result(state)
        problem = self._problems.get(kind)
        if problem is None:
            problem = ReplicationProblem(
                state, mirror_policy=self._mirror_policy(kind),
                max_link_load=self.max_link_load)
            self._problems[kind] = problem
        # Resolve to the requested traffic (back to the calibration
        # mean when classes is None) instead of rebuilding the LP.
        target = classes if classes is not None else state.classes
        return problem.resolve_traffic(target)

    def evaluate_all(self, kinds: Sequence[ArchitectureKind],
                     classes: Optional[Sequence[TrafficClass]] = None
                     ) -> Dict[ArchitectureKind, ReplicationResult]:
        """Evaluate several architectures on the same traffic."""
        return {kind: self.evaluate(kind, classes) for kind in kinds}


def evaluate_architecture(kind: ArchitectureKind, topology: Topology,
                          classes: Sequence[TrafficClass],
                          dc_capacity_factor: float = 10.0,
                          max_link_load: float = 0.4,
                          **evaluator_kwargs) -> ReplicationResult:
    """One-shot convenience wrapper around :class:`ArchitectureEvaluator`."""
    evaluator = ArchitectureEvaluator(
        topology, classes, dc_capacity_factor=dc_capacity_factor,
        max_link_load=max_link_load, **evaluator_kwargs)
    return evaluator.evaluate(kind)
