"""Provisioning slack for traffic dynamics (Section 9, "Robustness to
dynamics").

A sudden traffic shift can invalidate the current assignment. The
paper's suggestion: optimize against inflated inputs — "allow for some
slack (e.g., using the 80-th percentile values instead of the mean) in
the input traffic matrices to tolerate such sudden bursts."

:func:`slack_factor` computes the per-entry percentile factor implied
by a variability model, and :func:`with_slack` scales a class set by
it, so any formulation can be solved against p80 (or p95, ...) inputs.
The ablation benchmark compares worst-case peak loads under variability
when the assignment was computed from mean vs slacked inputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.traffic.classes import TrafficClass
from repro.traffic.variability import TrafficVariabilityModel


def slack_factor(model: TrafficVariabilityModel,
                 percentile: float = 80.0,
                 samples: int = 20_000, seed: int = 0) -> float:
    """The multiplicative factor at a percentile of the variability CDF.

    Args:
        model: the per-entry variation distribution.
        percentile: e.g., 80.0 for the paper's suggestion.
        samples: Monte-Carlo samples used to invert the bucketed CDF.

    Returns:
        A factor >= 0 such that a fraction ``percentile/100`` of
        per-entry variations fall below it (typically > 1 for p80 of a
        mean-1 heavy-tailed distribution).
    """
    if not 0.0 < percentile < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    rng = np.random.default_rng(seed)
    draws = [model.sample_factor(rng) for _ in range(samples)]
    return float(np.percentile(draws, percentile))


def with_slack(classes: Sequence[TrafficClass],
               factor: float) -> List[TrafficClass]:
    """Scale every class's volume by the slack factor.

    The result is fed to the optimizer in place of the mean traffic;
    the *actual* (unscaled) traffic is then evaluated against the
    resulting assignment.
    """
    if factor <= 0:
        raise ValueError("slack factor must be positive")
    return [cls.scaled(factor) for cls in classes]


def provisioning_shortfall(assigned_load: float,
                           capacity_load: float = 1.0) -> float:
    """How far a realized peak load overshoots the provisioned budget
    (0.0 when within budget) — the metric the slack ablation reports."""
    return max(0.0, assigned_load - capacity_load)
