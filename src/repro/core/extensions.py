"""Optional formulation extensions called out in the paper.

Section 4 ("Extensions"): instead of the hard ``MaxLinkLoad`` bound, a
piecewise-linear convex cost on each link's utilization — the classic
traffic-engineering penalty of Fortz-Rexford-Thorup [10] — can be added
to the objective for a more graceful tradeoff. Similarly, ``LoadCost``
can be a weighted combination of node loads instead of their maximum.

Section 5 ("Extensions"): the miss-rate term can instead be the *worst
class's* miss (``max_c (1 - cov_c)``) or a weighted combination giving
priority traffic more protection.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.lpsolve import LinExpr, Model, Variable, lin_sum

# Fortz-Thorup piecewise segments: (slope, breakpoint where it starts).
# The cost of utilization u is max_i slope_i * u + intercept_i, convex
# and steeply penalizing utilizations near and beyond 1.
FORTZ_THORUP_SEGMENTS: Tuple[Tuple[float, float], ...] = (
    (1.0, 0.0),
    (3.0, 1.0 / 3.0),
    (10.0, 2.0 / 3.0),
    (70.0, 9.0 / 10.0),
    (500.0, 1.0),
    (5000.0, 11.0 / 10.0),
)


def piecewise_link_cost(model: Model, link_load: LinExpr,
                        name: str,
                        segments: Sequence[Tuple[float, float]] =
                        FORTZ_THORUP_SEGMENTS) -> Variable:
    """Add a convex piecewise-linear cost variable for one link.

    Introduces ``phi >= slope_i * (load - start_i) + cost(start_i)``
    for each segment; because the objective minimizes ``phi`` it equals
    the piecewise cost at the optimum.

    Returns:
        The epigraph variable ``phi`` to include in the objective.
    """
    phi = model.add_variable(f"phi[{name}]", lb=0.0)
    # Accumulate each segment's intercept so segments chain continuously.
    cost_at_start = 0.0
    previous_slope = 0.0
    previous_start = 0.0
    for slope, start in segments:
        cost_at_start += previous_slope * (start - previous_start)
        intercept = cost_at_start - slope * start
        model.add_constraint(
            phi >= link_load * slope + intercept,
            name=f"phi[{name}]>=seg{slope:g}")
        previous_slope, previous_start = slope, start
    return phi


def weighted_load_objective(model: Model,
                            load_exprs: Dict[Tuple[str, str], LinExpr],
                            weights: Optional[Dict[Tuple[str, str],
                                                   float]] = None
                            ) -> LinExpr:
    """Section 4 extension: weighted-sum load cost.

    Instead of ``max_{r,j} Load_j^r``, returns
    ``sum w_{r,j} Load_j^r`` (uniform weights by default) for use as
    (part of) the objective. The caller still adds any constraints it
    wants on individual loads.
    """
    terms = []
    for key, expr in load_exprs.items():
        weight = 1.0 if weights is None else weights.get(key, 0.0)
        if weight != 0.0:
            terms.append(expr * weight)
    return lin_sum(terms)


def max_miss_objective(model: Model,
                       coverage_vars: Dict[str, Variable]) -> Variable:
    """Section 5 extension: penalize the worst class's miss fraction.

    Adds ``worst >= 1 - cov_c`` for every class and returns ``worst``
    (i.e., ``MissRate = max_c (1 - cov_c)``).
    """
    worst = model.add_variable("WorstMiss", lb=0.0)
    for name, cov in coverage_vars.items():
        model.add_constraint(worst >= 1.0 - cov,
                             name=f"worstmiss[{name}]")
    return worst


def weighted_miss_objective(coverage_vars: Dict[str, Variable],
                            weights: Dict[str, float]) -> LinExpr:
    """Section 5 extension: priority-weighted miss combination.

    Returns ``sum_c w_c (1 - cov_c)``; higher-weight classes get
    stronger protection when this is minimized.
    """
    terms = []
    for name, cov in coverage_vars.items():
        weight = weights.get(name, 0.0)
        if weight != 0.0:
            terms.append((1.0 - cov) * weight)
    return lin_sum(terms)
