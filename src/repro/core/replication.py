"""The replication LP (Section 4, Figure 7 of the paper).

Decision variables:

- ``p[c,j]`` — fraction of class ``c``'s sessions processed locally by
  on-path node ``j in P_c`` (Eq (6)).
- ``o[c,j,j']`` — fraction of class ``c`` offloaded from on-path node
  ``j`` to off-path mirror ``j' in M_j \\ P_c`` (Eq (7)); mirrors that
  are already on the path never get an offload variable.

Constraints: full coverage per class (Eq (2)); per-node per-resource
load accounting including offloaded-in traffic (Eq (3)); link load of
the replication tunnels plus background bounded by
``max(MaxLinkLoad, BG_l)`` (Eqs (4), (5)). Objective: minimize the
maximum node-resource load (Eq (1)), optionally with the piecewise
link-cost extension from the end of Section 4.

The class is a :class:`~repro.core.formulation.Formulation`:
``max_link_load`` and the per-class ``volumes`` are named parameters,
so ``resolve(max_link_load=...)`` (Figure 11) and
``resolve_traffic(classes)`` (Figure 15, controller refresh) patch the
compiled LP in place instead of rebuilding it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.core.formulation import Formulation, _check_max_link_load
from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.results import LPStats, ReplicationResult
from repro.lpsolve import (Constraint, LinExpr, Model, Solution,
                           SolverBackend, Variable, lin_sum)
from repro.topology.topology import Link

OffloadKey = Tuple[str, str, str]  # (class name, from node, to node)


class ReplicationProblem(Formulation):
    """Builds and solves one instance of the Figure 7 LP.

    Args:
        state: calibrated network-wide inputs.
        mirror_policy: which mirror sets ``M_j`` to allow; the default
            (:meth:`MirrorPolicy.none`) reduces the formulation to pure
            on-path distribution [29] ("Path, No Replicate").
        max_link_load: ``MaxLinkLoad`` — cap on normalized link load
            due to replication (Eq (5)); administrators typically keep
            links at 30-50% utilization.
        link_cost_weight: when set, replaces the hard link bound with
            the Section 4 extension — a piecewise-linear link cost term
            added to the objective with this weight (see
            :mod:`repro.core.extensions`).
        load_weights: when set, the Section 4 extension replacing the
            max-load objective with a weighted sum of node loads.
        backend: LP solver backend (name, instance, or None for the
            process default).
    """

    kind = "replication"

    def __init__(self, state: NetworkState,
                 mirror_policy: Optional[MirrorPolicy] = None,
                 max_link_load: float = 0.4,
                 link_cost_weight: Optional[float] = None,
                 load_weights: Optional[Dict[Tuple[str, str],
                                             float]] = None,
                 backend: Union[None, str, SolverBackend] = None) -> None:
        super().__init__(state, backend=backend)
        self.mirror_policy = mirror_policy or MirrorPolicy.none()
        self._declare_param("max_link_load", max_link_load,
                            _check_max_link_load)
        self.link_cost_weight = link_cost_weight
        # Section 4 extension: when set, LoadCost becomes the weighted
        # sum of the (resource, node) loads instead of their maximum.
        self.load_weights = (None if load_weights is None
                             else dict(load_weights))
        if link_cost_weight is not None or load_weights is not None:
            self._incremental_ok = False
        self._reset()

    @property
    def max_link_load(self) -> float:
        """``MaxLinkLoad`` (change it via ``resolve``)."""
        return self._params["max_link_load"]

    def _reset(self) -> None:
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._o: Dict[OffloadKey, Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._link_exprs: Dict[Link, LinExpr] = {}
        self._loadcost_cons: Dict[Tuple[str, str], Constraint] = {}
        self._link_cons: Dict[Link, Constraint] = {}
        self._load_cost_var: Optional[Variable] = None

    # -- model construction -------------------------------------------------

    def _build(self, model: Model) -> None:
        state = self.state
        mirror_sets = self.mirror_policy.mirror_sets(state)
        by_name = {cls.name: cls for cls in state.classes}

        # Decision variables (Eqs (6), (7)).
        o_by_class: Dict[str, List[Variable]] = {}
        for cls in state.classes:
            for node in cls.path:
                self._p[(cls.name, node)] = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
            path_set = set(cls.path)
            class_offloads = o_by_class.setdefault(cls.name, [])
            for node in cls.path:
                for mirror in mirror_sets[node]:
                    if mirror in path_set:
                        continue  # on-path mirrors need no replication
                    var = model.add_variable(
                        f"o[{cls.name},{node},{mirror}]", lb=0.0, ub=1.0)
                    self._o[(cls.name, node, mirror)] = var
                    class_offloads.append(var)

        # Coverage (Eq (2)).
        for cls in state.classes:
            terms: List[Variable] = [self._p[(cls.name, node)]
                                     for node in cls.path]
            terms.extend(o_by_class[cls.name])
            model.add_constraint(lin_sum(terms) == 1.0,
                                 name=f"cover[{cls.name}]")

        # Node loads (Eq (3)): on-path processing plus offloaded-in work.
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        for cls in state.classes:
            for resource in state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                if work == 0.0:
                    continue
                for node in cls.path:
                    cap = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        self._p[(cls.name, node)] * (work / cap))
        for (cls_name, _, mirror), var in self._o.items():
            cls = by_name[cls_name]
            for resource in state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                if work == 0.0:
                    continue
                cap = state.capacity(resource, mirror)
                load_terms[(resource, mirror)].append(var * (work / cap))

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            if self.load_weights is None:
                self._loadcost_cons[(resource, node)] = (
                    model.add_constraint(
                        load_cost >= expr,
                        name=f"loadcost[{resource},{node}]"))
        if self.load_weights is not None:
            from repro.core.extensions import weighted_load_objective

            weighted = weighted_load_objective(model, self._load_exprs,
                                               self.load_weights)
            model.add_constraint(load_cost >= weighted,
                                 name="loadcost[weighted]")

        # Link loads (Eqs (4), (5)).
        link_terms: Dict[Link, List[LinExpr]] = {
            link: [] for link in state.topology.links}
        for (cls_name, node, mirror), var in self._o.items():
            cls = by_name[cls_name]
            replicated_bytes = cls.num_sessions * cls.session_bytes
            for link in state.routing.path_links(node, mirror):
                coeff = replicated_bytes / state.link_capacity[link]
                link_terms[link].append(var * coeff)

        penalty_terms: List[LinExpr] = []
        for link, terms in link_terms.items():
            bg = state.bg_load(link)
            expr = lin_sum(terms) + bg
            self._link_exprs[link] = expr
            if not terms:
                continue
            if self.link_cost_weight is None:
                bound = max(self.max_link_load, bg)
                self._link_cons[link] = model.add_constraint(
                    expr <= bound, name=f"linkload[{link[0]},{link[1]}]")
            else:
                from repro.core.extensions import piecewise_link_cost

                penalty_terms.append(piecewise_link_cost(
                    model, expr, name=f"{link[0]}-{link[1]}"))

        # Objective (Eq (1)), optionally with the link-cost extension.
        if self.link_cost_weight is None:
            model.minimize(load_cost)
        else:
            model.minimize(load_cost +
                           self.link_cost_weight * lin_sum(penalty_terms))
        self._load_cost_var = load_cost

        if self._incremental_ok:
            self._bind(("volumes",), self._patch_volume_terms)
            self._bind(("max_link_load", "volumes"),
                       self._patch_link_bounds)

    # -- incremental patching ------------------------------------------------

    def _patch_volume_terms(self) -> None:
        """Rescale every ``|T_c|``-proportional coefficient in place."""
        state = self.state
        model = self._model
        by_name = {cls.name: cls for cls in state.classes}
        for cls in state.classes:
            for resource in state.resources:
                if cls.footprint(resource) == 0.0:
                    continue
                work = cls.footprint(resource) * cls.num_sessions
                for node in cls.path:
                    cap = state.capacity(resource, node)
                    var = self._p[(cls.name, node)]
                    model.set_coefficient(
                        self._loadcost_cons[(resource, node)], var,
                        -(work / cap))
                    self._load_exprs[(resource, node)].coeffs[var] = (
                        work / cap)
        for (cls_name, node, mirror), var in self._o.items():
            cls = by_name[cls_name]
            for resource in state.resources:
                if cls.footprint(resource) == 0.0:
                    continue
                work = cls.footprint(resource) * cls.num_sessions
                cap = state.capacity(resource, mirror)
                model.set_coefficient(
                    self._loadcost_cons[(resource, mirror)], var,
                    -(work / cap))
                self._load_exprs[(resource, mirror)].coeffs[var] = (
                    work / cap)
            replicated_bytes = cls.num_sessions * cls.session_bytes
            for link in state.routing.path_links(node, mirror):
                coeff = replicated_bytes / state.link_capacity[link]
                con = self._link_cons.get(link)
                if con is not None:
                    model.set_coefficient(con, var, coeff)
                self._link_exprs[link].coeffs[var] = coeff

    def _patch_link_bounds(self) -> None:
        """Re-target ``max(MaxLinkLoad, BG_l)`` bounds and background
        constants (BG changes whenever volumes do)."""
        state = self.state
        model = self._model
        for link, expr in self._link_exprs.items():
            bg = state.bg_load(link)
            expr.constant = bg
            con = self._link_cons.get(link)
            if con is not None:
                model.set_rhs(con, max(self.max_link_load, bg) - bg)

    # -- solving --------------------------------------------------------------

    def _unpack(self, model: Model,
                solution: Solution) -> ReplicationResult:
        node_loads = {
            resource: {
                node: solution.value(
                    self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)
        offload: Dict[str, Dict[Tuple[str, str], float]] = {}
        for (cls_name, node, mirror), var in self._o.items():
            offload.setdefault(cls_name, {})[(node, mirror)] = (
                solution.value(var))
        link_loads = {link: solution.value(expr)
                      for link, expr in self._link_exprs.items()}

        return ReplicationResult(
            load_cost=solution.value(self._load_cost_var),
            node_loads=node_loads,
            process_fractions=process,
            offload_fractions=offload,
            link_loads=link_loads,
            max_link_load=self.max_link_load,
            dc_node=self.state.dc_node,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))

    def solve(self) -> ReplicationResult:
        """Solve the LP and unpack the solution.

        Returns:
            A :class:`ReplicationResult` with the optimal ``LoadCost``,
            per-node loads, decision fractions, and link loads.
        """
        return super().solve()
