"""The split-traffic LP for asymmetric routing (Section 5 of the paper).

When forward and reverse flows of a session traverse different paths,
stateful analysis is only useful if *both* directions are observed at
one location. The formulation replaces the single coverage equation
with per-direction coverages (Eqs (8), (9)), defines effective coverage
as their minimum capped at 1 (Eq (10)), and minimizes
``LoadCost + gamma * MissRate`` (Eq (11)) because full coverage may be
infeasible under the link-load budget.

Per the paper's simplification, offloading targets a single datacenter
mirror (``o_{c,j}`` rather than ``o_{c,j,j'}``). Each direction of a
session carries half the session's footprint and half its bytes, so a
session fully processed at one place costs exactly ``F_c`` as in
Section 4.

``max_link_load``, ``gamma`` and the per-class ``volumes`` are named
:class:`~repro.core.formulation.Formulation` parameters and can be
changed with ``resolve`` (the miss-mode extensions opt out of the
incremental path and rebuild on every resolve).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.core.formulation import (Formulation, _check_max_link_load,
                                    _check_non_negative)
from repro.core.inputs import NetworkState
from repro.core.results import LPStats, SplitTrafficResult
from repro.lpsolve import (Constraint, LinExpr, Model, Solution,
                           SolverBackend, Variable, lin_sum)
from repro.topology.topology import Link

# Weight that makes the solver prioritize coverage over load balance;
# "gamma set to a large value to have a very low miss rate".
DEFAULT_GAMMA = 100.0


class SplitTrafficProblem(Formulation):
    """Builds and solves the Section 5 formulation.

    Args:
        state: calibrated inputs; classes may carry asymmetric
            ``rev_path`` values (symmetric classes degenerate to
            ``P_common = P_c`` and behave like Section 4 with a single
            mirror).
        max_link_load: ``MaxLinkLoad`` bound on replication traffic.
        gamma: miss-rate weight in the objective.
        allow_offload: when False, drop the datacenter offload variables
            entirely — this yields the "Path, no replicate" comparison
            architecture of Figures 16/17, where only ``P_common`` nodes
            can provide effective coverage.
        backend: LP solver backend (name, instance, or None for the
            process default).
    """

    kind = "split"

    def __init__(self, state: NetworkState, max_link_load: float = 0.4,
                 gamma: float = DEFAULT_GAMMA,
                 allow_offload: bool = True,
                 miss_mode: str = "total",
                 miss_weights: Optional[Dict[str, float]] = None,
                 backend: Union[None, str, SolverBackend] = None) -> None:
        if allow_offload and state.dc_node is None:
            raise ValueError(
                "split-traffic offloading needs a datacenter node; "
                "build the state with dc_capacity_factor set or pass "
                "allow_offload=False")
        if miss_mode not in ("total", "max", "weighted"):
            raise ValueError(
                "miss_mode must be 'total' (Eq 11), 'max' or "
                "'weighted' (the Section 5 extensions)")
        if miss_mode == "weighted" and not miss_weights:
            raise ValueError("miss_mode='weighted' needs miss_weights")
        super().__init__(state, backend=backend)
        self._declare_param("max_link_load", max_link_load,
                            _check_max_link_load)
        self._declare_param("gamma", gamma,
                            _check_non_negative("gamma"))
        self.allow_offload = allow_offload
        self.miss_mode = miss_mode
        self.miss_weights = dict(miss_weights or {})
        if miss_mode != "total":
            self._incremental_ok = False
        self._reset()

    @property
    def max_link_load(self) -> float:
        """``MaxLinkLoad`` (change it via ``resolve``)."""
        return self._params["max_link_load"]

    @property
    def gamma(self) -> float:
        """The miss-rate weight (change it via ``resolve``)."""
        return self._params["gamma"]

    def _reset(self) -> None:
        self._p: Dict[Tuple[str, str], Variable] = {}
        self._ofwd: Dict[Tuple[str, str], Variable] = {}
        self._orev: Dict[Tuple[str, str], Variable] = {}
        self._cov: Dict[str, Variable] = {}
        self._load_exprs: Dict[Tuple[str, str], LinExpr] = {}
        self._link_exprs: Dict[Link, LinExpr] = {}
        self._loadcost_cons: Dict[Tuple[str, str], Constraint] = {}
        self._link_cons: Dict[Link, Constraint] = {}
        self._miss_expr: Optional[LinExpr] = None
        self._load_cost_var: Optional[Variable] = None

    def _build(self, model: Model) -> None:
        state = self.state
        dc = state.dc_node

        # Decision variables: local processing on common nodes, and
        # per-direction offloads to the datacenter from observer nodes.
        for cls in state.classes:
            for node in cls.common_nodes:
                self._p[(cls.name, node)] = model.add_variable(
                    f"p[{cls.name},{node}]", lb=0.0, ub=1.0)
            if self.allow_offload:
                for node in cls.fwd_nodes:
                    self._ofwd[(cls.name, node)] = model.add_variable(
                        f"ofwd[{cls.name},{node}]", lb=0.0, ub=1.0)
                for node in cls.rev_nodes:
                    self._orev[(cls.name, node)] = model.add_variable(
                        f"orev[{cls.name},{node}]", lb=0.0, ub=1.0)

        # Coverage (Eqs (8), (9), (10)): cov_c <= each direction, <= 1;
        # the objective pushes cov_c up to the true minimum.
        for cls in state.classes:
            local = [self._p[(cls.name, n)] for n in cls.common_nodes]
            fwd_off = [self._ofwd[(cls.name, n)] for n in cls.fwd_nodes
                       if self.allow_offload]
            rev_off = [self._orev[(cls.name, n)] for n in cls.rev_nodes
                       if self.allow_offload]
            cov_fwd = lin_sum(local + fwd_off)
            cov_rev = lin_sum(local + rev_off)
            model.add_constraint(cov_fwd <= 1.0,
                                 name=f"covfwd_cap[{cls.name}]")
            model.add_constraint(cov_rev <= 1.0,
                                 name=f"covrev_cap[{cls.name}]")
            cov = model.add_variable(f"cov[{cls.name}]", lb=0.0, ub=1.0)
            model.add_constraint(cov <= cov_fwd,
                                 name=f"cov_fwd[{cls.name}]")
            model.add_constraint(cov <= cov_rev,
                                 name=f"cov_rev[{cls.name}]")
            self._cov[cls.name] = cov

        # Node loads: a common node processing fraction p sees both
        # directions (full footprint); the DC pays half a footprint per
        # offloaded direction-fraction.
        load_terms: Dict[Tuple[str, str], List[LinExpr]] = {
            (resource, node): []
            for resource in state.resources for node in state.nids_nodes
        }
        for cls in state.classes:
            for resource in state.resources:
                work = cls.footprint(resource) * cls.num_sessions
                if work == 0.0:
                    continue
                for node in cls.common_nodes:
                    cap = state.capacity(resource, node)
                    load_terms[(resource, node)].append(
                        self._p[(cls.name, node)] * (work / cap))
                if self.allow_offload:
                    cap = state.capacity(resource, dc)
                    half = work / 2.0 / cap
                    for node in cls.fwd_nodes:
                        load_terms[(resource, dc)].append(
                            self._ofwd[(cls.name, node)] * half)
                    for node in cls.rev_nodes:
                        load_terms[(resource, dc)].append(
                            self._orev[(cls.name, node)] * half)

        load_cost = model.add_variable("LoadCost", lb=0.0)
        for (resource, node), terms in load_terms.items():
            expr = lin_sum(terms)
            self._load_exprs[(resource, node)] = expr
            self._loadcost_cons[(resource, node)] = model.add_constraint(
                load_cost >= expr, name=f"loadcost[{resource},{node}]")

        # Link loads from the per-direction replication tunnels.
        link_terms: Dict[Link, List[LinExpr]] = {
            link: [] for link in state.topology.links}
        if self.allow_offload:
            for offloads in (self._ofwd, self._orev):
                for (cls_name, node), var in offloads.items():
                    cls = _class_lookup(state)[cls_name]
                    direction_bytes = (cls.num_sessions *
                                       cls.session_bytes / 2.0)
                    for link in state.routing.path_links(node, dc):
                        coeff = direction_bytes / state.link_capacity[link]
                        link_terms[link].append(var * coeff)
        for link, terms in link_terms.items():
            bg = state.bg_load(link)
            expr = lin_sum(terms) + bg
            self._link_exprs[link] = expr
            if terms:
                bound = max(self.max_link_load, bg)
                self._link_cons[link] = model.add_constraint(
                    expr <= bound, name=f"linkload[{link[0]},{link[1]}]")

        # The reported MissRate always follows Eq (11) (traffic-
        # weighted fraction missed) regardless of the objective mode.
        total_sessions = sum(cls.num_sessions for cls in state.classes)
        miss_terms = [
            (1.0 - self._cov[cls.name]) * (cls.num_sessions /
                                           total_sessions)
            for cls in state.classes
        ]
        self._miss_expr = lin_sum(miss_terms)

        # Objective: LoadCost + gamma * <miss term> — Eq (11) by
        # default, or one of the Section 5 extensions.
        if self.miss_mode == "total":
            objective_miss = self._miss_expr
        elif self.miss_mode == "max":
            from repro.core.extensions import max_miss_objective

            # A small total-miss tiebreaker keeps the objective from
            # ignoring coverable classes once one class's miss pins
            # the max (the usual min-max degeneracy).
            objective_miss = (max_miss_objective(model, self._cov) +
                              0.01 * self._miss_expr)
        else:  # weighted
            from repro.core.extensions import weighted_miss_objective

            objective_miss = weighted_miss_objective(
                self._cov, self.miss_weights)
        model.minimize(load_cost + self.gamma * objective_miss)
        self._load_cost_var = load_cost

        if self._incremental_ok:
            self._bind(("volumes",), self._patch_volume_terms)
            self._bind(("max_link_load", "volumes"),
                       self._patch_link_bounds)
            self._bind(("gamma", "volumes"), self._patch_objective)

    # -- incremental patching ------------------------------------------------

    def _patch_volume_terms(self) -> None:
        """Rescale load, link, and miss-rate coefficients in place."""
        state = self.state
        model = self._model
        dc = state.dc_node
        for cls in state.classes:
            for resource in state.resources:
                if cls.footprint(resource) == 0.0:
                    continue
                work = cls.footprint(resource) * cls.num_sessions
                for node in cls.common_nodes:
                    cap = state.capacity(resource, node)
                    var = self._p[(cls.name, node)]
                    model.set_coefficient(
                        self._loadcost_cons[(resource, node)], var,
                        -(work / cap))
                    self._load_exprs[(resource, node)].coeffs[var] = (
                        work / cap)
                if self.allow_offload:
                    cap = state.capacity(resource, dc)
                    half = work / 2.0 / cap
                    con = self._loadcost_cons[(resource, dc)]
                    for node in cls.fwd_nodes:
                        var = self._ofwd[(cls.name, node)]
                        model.set_coefficient(con, var, -half)
                        self._load_exprs[(resource, dc)].coeffs[var] = half
                    for node in cls.rev_nodes:
                        var = self._orev[(cls.name, node)]
                        model.set_coefficient(con, var, -half)
                        self._load_exprs[(resource, dc)].coeffs[var] = half
        if self.allow_offload:
            lookup = _class_lookup(state)
            for offloads in (self._ofwd, self._orev):
                for (cls_name, node), var in offloads.items():
                    cls = lookup[cls_name]
                    direction_bytes = (cls.num_sessions *
                                       cls.session_bytes / 2.0)
                    for link in state.routing.path_links(node, dc):
                        coeff = direction_bytes / state.link_capacity[link]
                        con = self._link_cons.get(link)
                        if con is not None:
                            model.set_coefficient(con, var, coeff)
                        self._link_exprs[link].coeffs[var] = coeff
        total_sessions = sum(cls.num_sessions for cls in state.classes)
        self._miss_expr.constant = 1.0
        for cls in state.classes:
            self._miss_expr.coeffs[self._cov[cls.name]] = (
                -(cls.num_sessions / total_sessions))

    def _patch_link_bounds(self) -> None:
        """Re-target ``max(MaxLinkLoad, BG_l)`` bounds and background
        constants (BG changes whenever volumes do)."""
        state = self.state
        model = self._model
        for link, expr in self._link_exprs.items():
            bg = state.bg_load(link)
            expr.constant = bg
            con = self._link_cons.get(link)
            if con is not None:
                model.set_rhs(con, max(self.max_link_load, bg) - bg)

    def _patch_objective(self) -> None:
        """Rewrite the ``gamma * MissRate`` objective coefficients
        (runs after the volume patch, so the miss weights are
        current)."""
        for cov in self._cov.values():
            self._model.set_objective_coefficient(
                cov, self.gamma * self._miss_expr.coeffs[cov])

    # -- solving --------------------------------------------------------------

    def _unpack(self, model: Model,
                solution: Solution) -> SplitTrafficResult:
        node_loads = {
            resource: {
                node: solution.value(self._load_exprs[(resource, node)])
                for node in self.state.nids_nodes
            }
            for resource in self.state.resources
        }
        process: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._p.items():
            process.setdefault(cls_name, {})[node] = solution.value(var)
        fwd: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._ofwd.items():
            fwd.setdefault(cls_name, {})[node] = solution.value(var)
        rev: Dict[str, Dict[str, float]] = {}
        for (cls_name, node), var in self._orev.items():
            rev.setdefault(cls_name, {})[node] = solution.value(var)

        return SplitTrafficResult(
            load_cost=solution.value(self._load_cost_var),
            node_loads=node_loads,
            process_fractions=process,
            fwd_offloads=fwd,
            rev_offloads=rev,
            coverage={name: solution.value(var)
                      for name, var in self._cov.items()},
            miss_rate=solution.value(self._miss_expr),
            link_loads={link: solution.value(expr)
                        for link, expr in self._link_exprs.items()},
            gamma=self.gamma,
            dc_node=self.state.dc_node,
            stats=LPStats(
                num_variables=model.num_variables,
                num_constraints=model.num_constraints,
                solve_seconds=solution.solve_seconds,
                iterations=solution.iterations))

    def solve(self) -> SplitTrafficResult:
        """Solve and unpack coverage, miss rate, loads, and fractions."""
        return super().solve()


def ingress_split_result(state: NetworkState) -> SplitTrafficResult:
    """Evaluate the Ingress-only deployment under routing asymmetry.

    No LP: each class is handled at its (forward) ingress gateway. The
    gateway always observes the forward direction; it observes the
    reverse direction only if it happens to lie on the reverse path.
    Stateful coverage is 1 when both sides are seen, else 0 — which is
    why the paper measures >85% miss rates for Ingress-only deployments
    with asymmetric routes (Figure 16) alongside deceptively low
    compute load (Figure 17): the gateway simply never sees, and never
    spends cycles on, most reverse flows.
    """
    node_loads: Dict[str, Dict[str, float]] = {
        resource: {node: 0.0 for node in state.nids_nodes}
        for resource in state.resources
    }
    coverage: Dict[str, float] = {}
    process: Dict[str, Dict[str, float]] = {}
    total_sessions = sum(cls.num_sessions for cls in state.classes)
    missed = 0.0
    for cls in state.classes:
        gateway = cls.ingress
        sees_reverse = gateway in cls.rev_nodes
        coverage[cls.name] = 1.0 if sees_reverse else 0.0
        process[cls.name] = {gateway: 1.0}
        if not sees_reverse:
            missed += cls.num_sessions
        for resource in state.resources:
            work = cls.footprint(resource) * cls.num_sessions
            observed_share = 1.0 if sees_reverse else 0.5
            cap = state.capacity(resource, gateway)
            node_loads[resource][gateway] += observed_share * work / cap
    load_cost = max(max(loads.values(), default=0.0)
                    for loads in node_loads.values())
    return SplitTrafficResult(
        load_cost=load_cost,
        node_loads=node_loads,
        process_fractions=process,
        coverage=coverage,
        miss_rate=missed / total_sessions if total_sessions else 0.0,
        link_loads={link: state.bg_load(link)
                    for link in state.topology.links},
        gamma=0.0,
        dc_node=state.dc_node,
        stats=LPStats(num_variables=0, num_constraints=0,
                      solve_seconds=0.0, iterations=0))


def _class_lookup(state: NetworkState):
    """Cached name -> class mapping for a state instance."""
    cache = getattr(state, "_class_lookup_cache", None)
    if cache is None:
        cache = {cls.name: cls for cls in state.classes}
        state._class_lookup_cache = cache
    return cache
