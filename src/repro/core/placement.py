"""Datacenter placement strategies (Section 8.2, "Choice of
datacenter location").

The paper compares four natural strategies and finds "placing the
datacenter at the PoP that observes the most traffic works best across
all topologies"; that strategy (``"observed"``) is therefore the
default everywhere else in this library.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.topology.routing import RoutingTable
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass

PLACEMENT_STRATEGIES = ("origin", "observed", "betweenness", "medoid")


def _originated_traffic(topology: Topology,
                        classes: Sequence[TrafficClass]
                        ) -> Dict[str, float]:
    """Sessions originating at each PoP."""
    totals = {node: 0.0 for node in topology.nodes}
    for cls in classes:
        totals[cls.source] += cls.num_sessions
    return totals


def _observed_traffic(topology: Topology,
                      classes: Sequence[TrafficClass]
                      ) -> Dict[str, float]:
    """Sessions each PoP observes, including transit traffic."""
    totals = {node: 0.0 for node in topology.nodes}
    for cls in classes:
        seen = set(cls.path) | set(cls.rev_nodes)
        for node in seen:
            totals[node] += cls.num_sessions
    return totals


def _path_membership(topology: Topology,
                     classes: Sequence[TrafficClass]) -> Dict[str, float]:
    """How many end-to-end paths each PoP lies on."""
    totals = {node: 0.0 for node in topology.nodes}
    for cls in classes:
        for node in set(cls.path):
            totals[node] += 1.0
    return totals


def _negative_mean_distance(topology: Topology) -> Dict[str, float]:
    """Medoid score: negated mean hop distance to every other PoP."""
    scores = {}
    for node in topology.nodes:
        others = [n for n in topology.nodes if n != node]
        mean = (sum(topology.hop_distance(node, other) for other in others)
                / len(others)) if others else 0.0
        scores[node] = -mean
    return scores


def place_datacenter(topology: Topology,
                     classes: Sequence[TrafficClass],
                     strategy: str = "observed",
                     routing: RoutingTable = None) -> str:
    """Pick the PoP a datacenter cluster should attach to.

    Args:
        topology: base network (no datacenter yet).
        classes: the traffic the network carries.
        strategy: one of ``PLACEMENT_STRATEGIES``:
            ``"origin"`` — PoP originating the most traffic;
            ``"observed"`` — PoP observing the most traffic, transit
            included (the paper's winner and our default);
            ``"betweenness"`` — PoP on the most end-to-end paths;
            ``"medoid"`` — PoP with smallest mean distance to others.
        routing: unused for the current strategies; accepted so
            callers with a table in hand can pass it uniformly.

    Returns:
        The chosen anchor PoP (ties broken lexicographically).
    """
    if strategy == "origin":
        scores = _originated_traffic(topology, classes)
    elif strategy == "observed":
        scores = _observed_traffic(topology, classes)
    elif strategy == "betweenness":
        scores = _path_membership(topology, classes)
    elif strategy == "medoid":
        scores = _negative_mean_distance(topology)
    else:
        raise ValueError(
            f"unknown placement strategy {strategy!r}; expected one of "
            f"{PLACEMENT_STRATEGIES}")
    best_score = max(scores.values())
    return min(node for node, score in scores.items()
               if score == best_score)
