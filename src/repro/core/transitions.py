"""Consistent reconfiguration (Section 9, "Consistent configurations").

The optimization re-runs every few minutes; pushing new hash-range
configurations to many shims is not atomic, so a naive switch can leave
a window where a session's hash range is owned by nobody (the old
owner already switched, the new owner hasn't) — dropped coverage — or
the reverse, duplicated work.

The paper sketches two remedies, both implemented here:

- :class:`OverlapTransition` — the domain-specific solution: during
  the transient, every node honors the *union* of its old and new
  rules. Work may be duplicated but coverage never drops, and once all
  nodes acknowledge, the old rules are retired.
- :class:`TwoPhaseCommit` — the classic distributed-systems solution:
  a coordinator prepares all shims, and only commits the switch once
  every participant has voted yes; any abstention/abort rolls back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.shim.config import ShimConfig


def union_config(old: ShimConfig, new: ShimConfig) -> ShimConfig:
    """A transient config honoring both the old and new rule sets.

    Rules are concatenated old-first; the shim's first-match semantics
    mean a packet owned under either configuration is acted on. (The
    paper: "the NIDS nodes continue to honor both the previous and new
    configurations during the transient period. This may potentially
    duplicate some work, but ensures correctness.")
    """
    if old.node != new.node:
        raise ValueError(
            f"cannot union configs of different nodes "
            f"({old.node!r} vs {new.node!r})")
    merged: Dict[str, list] = {}
    for config in (old, new):
        for class_name, rules in config.rules.items():
            merged.setdefault(class_name, []).extend(rules)
    return ShimConfig(node=old.node, rules=merged)


class TransitionPhase(enum.Enum):
    """Lifecycle of an overlap transition."""

    IDLE = "idle"
    OVERLAPPING = "overlapping"   # nodes run old+new
    COMPLETE = "complete"         # everyone acknowledged; new only


class OverlapTransition:
    """Coordinates an old->new configuration rollout with overlap.

    Usage::

        t = OverlapTransition(old_configs, new_configs)
        t.begin()                       # every node now runs the union
        t.acknowledge("N1")             # as acks arrive...
        t.acknowledge("N2"); ...
        configs = t.active_configs()    # union until all acked,
                                        # then exactly the new configs
    """

    def __init__(self, old_configs: Dict[str, ShimConfig],
                 new_configs: Dict[str, ShimConfig]) -> None:
        if set(old_configs) != set(new_configs):
            raise ValueError("old and new configurations must cover "
                             "the same node set")
        self.old_configs = dict(old_configs)
        self.new_configs = dict(new_configs)
        self.phase = TransitionPhase.IDLE
        self._acknowledged: Set[str] = set()

    @property
    def pending_nodes(self) -> List[str]:
        """Nodes that have not yet acknowledged the new config."""
        return sorted(set(self.new_configs) - self._acknowledged)

    def begin(self) -> None:
        """Enter the overlap phase (push union configs everywhere)."""
        if self.phase is not TransitionPhase.IDLE:
            raise RuntimeError(f"cannot begin from phase {self.phase}")
        self.phase = TransitionPhase.OVERLAPPING

    def acknowledge(self, node: str) -> None:
        """Record that ``node`` has installed the new configuration."""
        if self.phase is not TransitionPhase.OVERLAPPING:
            raise RuntimeError("no transition in progress")
        if node not in self.new_configs:
            raise KeyError(f"unknown node {node!r}")
        self._acknowledged.add(node)
        if not self.pending_nodes:
            self.phase = TransitionPhase.COMPLETE

    def active_configs(self) -> Dict[str, ShimConfig]:
        """The configs every node should currently run.

        - IDLE: the old configuration.
        - OVERLAPPING: the old/new union at every node (even nodes
          that acknowledged keep the union until *all* have, so a
          laggard's old-range traffic still has its old owner).
        - COMPLETE: exactly the new configuration.
        """
        if self.phase is TransitionPhase.IDLE:
            return dict(self.old_configs)
        if self.phase is TransitionPhase.OVERLAPPING:
            return {node: union_config(self.old_configs[node],
                                       self.new_configs[node])
                    for node in self.new_configs}
        return dict(self.new_configs)


# -- two-phase commit ------------------------------------------------------


class ParticipantVote(enum.Enum):
    YES = "yes"
    NO = "no"


class CommitOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Participant:
    """One shim endpoint in the two-phase commit protocol.

    ``fails_prepare`` models a node that cannot install the staged
    configuration (e.g., unreachable or out of memory).
    """

    node: str
    fails_prepare: bool = False
    staged: Optional[ShimConfig] = None
    committed: Optional[ShimConfig] = None
    log: List[str] = field(default_factory=list)

    def prepare(self, config: ShimConfig) -> ParticipantVote:
        self.log.append("prepare")
        if self.fails_prepare:
            return ParticipantVote.NO
        self.staged = config
        return ParticipantVote.YES

    def commit(self) -> None:
        self.log.append("commit")
        if self.staged is None:
            raise RuntimeError(f"{self.node}: commit without prepare")
        self.committed = self.staged
        self.staged = None

    def abort(self) -> None:
        self.log.append("abort")
        self.staged = None


class TwoPhaseCommit:
    """Coordinator: all-or-nothing configuration switch.

    Unlike :class:`OverlapTransition` there is no duplicated work, but
    a single unreachable node blocks the whole rollout — which is why
    the paper prefers the domain-specific overlap for this setting.
    """

    def __init__(self, participants: Iterable[Participant]) -> None:
        self.participants = list(participants)
        names = [p.node for p in self.participants]
        if len(set(names)) != len(names):
            raise ValueError("duplicate participant nodes")

    def execute(self, new_configs: Dict[str, ShimConfig]
                ) -> CommitOutcome:
        """Run prepare on everyone, then commit or abort."""
        missing = {p.node for p in self.participants} - set(new_configs)
        if missing:
            raise ValueError(f"no new config for nodes {sorted(missing)}")
        votes = {p.node: p.prepare(new_configs[p.node])
                 for p in self.participants}
        if all(v is ParticipantVote.YES for v in votes.values()):
            for participant in self.participants:
                participant.commit()
            return CommitOutcome.COMMITTED
        for participant in self.participants:
            participant.abort()
        return CommitOutcome.ABORTED
