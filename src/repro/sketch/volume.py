"""Per-traffic-class and per-source volume estimation on sketches.

:class:`ClassVolumeSketch` is the estimation layer between the packet
stream and the controller: it watches session-aligned
:class:`~repro.simulation.batch.PacketBatch` slabs, folds per-class
and per-source session counts into two seeded
:class:`~repro.sketch.countmin.CountMinSketch` tables, and can at any
instant render an :class:`~repro.traffic.matrix.EstimatedTrafficMatrix`
or a list of estimate-carrying
:class:`~repro.traffic.classes.TrafficClass` rows for
``resolve_traffic()``. Memory is O(sketch) regardless of how many
sessions stream past — the whole point of the subsystem (ROADMAP
item 1: "millions of users").

Per-worker instances (one per ingest worker) merge losslessly into an
aggregate, OctoSketch-style: :meth:`merge` adds counter tables built
from one shared ``(width, depth, seed)`` hash family, so the combined
sketch is bit-exactly the single-worker sketch of the full stream.

The class key space is a *registered universe* — the controller knows
its traffic classes (ingress-egress pairs are observable at the tap);
what the sketch estimates is their **volumes**. Per-source estimates
key on raw source addresses, the aggregation-mode split field of
Section 7.2.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.sketch.countmin import CountMinSketch, SketchMismatchError
from repro.traffic.classes import TrafficClass
from repro.traffic.matrix import EstimatedTrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.batch import PacketBatch


class ClassVolumeSketch:
    """Sketched per-class / per-source session volumes.

    Args:
        class_names: the registered traffic-class universe; estimates
            are reported per name, in this order.
        width / depth: count-min shape shared by both tables.
        seed: hash-family seed (keyword-only, mandatory); the source
            table uses ``seed + depth`` so its rows are independent
            of the class table's.
        source_width: per-source table width; defaults to ``width``.
            Sources are an open key space (addresses), so this is the
            knob that actually trades memory for error.
    """

    def __init__(self, class_names: Sequence[str], *,
                 width: int = 512, depth: int = 4, seed: int,
                 source_width: Optional[int] = None) -> None:
        self.class_names: Tuple[str, ...] = tuple(class_names)
        if len(set(self.class_names)) != len(self.class_names):
            raise ValueError("class universe has duplicate names")
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.class_names)}
        self.classes = CountMinSketch(width, depth, seed=seed)
        self.sources = CountMinSketch(source_width or width, depth,
                                      seed=seed + depth)
        self.sessions = 0
        self.packets = 0
        self.merges = 0

    # -- ingestion ---------------------------------------------------------

    def _universe_ids(self, class_names: Sequence[str]) -> np.ndarray:
        """Map another batch's class-name tuple onto this universe."""
        try:
            return np.array([self._index[name]
                             for name in class_names],
                            dtype=np.int64)
        except KeyError as exc:
            raise ValueError(
                f"batch class {exc.args[0]!r} is not in the "
                f"registered universe") from None

    def observe_batch(self, chunk: "PacketBatch") -> int:
        """Fold one session-aligned slab into the sketches.

        Every session row in the slab counts once (chunk boundaries
        never split a session, so streaming a ``ChunkedReplay``
        counts each session exactly once). Sessions the classifier
        left unmonitored (``class_id == -1``) still count toward the
        per-source table — the tap sees their bytes — but have no
        class to charge.

        Returns:
            The number of session rows observed.
        """
        sess = chunk.sessions
        class_id = np.asarray(sess.class_id)
        monitored = class_id >= 0
        counts = np.bincount(class_id[monitored],
                             minlength=len(sess.class_names))
        hot = np.nonzero(counts)[0]
        if len(hot):
            mapping = self._universe_ids(sess.class_names)
            self.classes.update(mapping[hot].astype(np.uint32),
                                counts[hot])
        src, src_counts = np.unique(np.asarray(sess.src_ip),
                                    return_counts=True)
        if len(src):
            self.sources.update(src, src_counts)
        observed = int(sess.num_sessions)
        self.sessions += observed
        self.packets += int(chunk.num_packets)
        return observed

    def observe_classes(self, names: Sequence[str],
                        counts: Sequence[float]) -> None:
        """Directly charge session counts to universe classes."""
        ids = self._universe_ids(names).astype(np.uint32)
        self.classes.update(ids, np.asarray(counts))
        self.sessions += int(np.asarray(counts).sum())

    # -- worker combination ------------------------------------------------

    def compatible(self, other: "ClassVolumeSketch") -> bool:
        return (self.class_names == other.class_names and
                self.classes.compatible(other.classes) and
                self.sources.compatible(other.sources))

    def merge(self, other: "ClassVolumeSketch") -> "ClassVolumeSketch":
        """Absorb another worker's sketch in place (lossless)."""
        if not self.compatible(other):
            raise SketchMismatchError(
                "per-worker sketches must share the class universe, "
                "shape, and seed to merge losslessly")
        self.classes.merge(other.classes)
        self.sources.merge(other.sources)
        self.sessions += other.sessions
        self.packets += other.packets
        self.merges += 1
        return self

    def reset(self) -> None:
        """Start a new estimation window (epoch boundary)."""
        self.classes.reset()
        self.sources.reset()
        self.sessions = 0
        self.packets = 0

    # -- estimates ---------------------------------------------------------

    def class_volumes(self) -> np.ndarray:
        """Estimated session count per universe class (int64)."""
        if not self.class_names:
            return np.zeros(0, dtype=np.int64)
        ids = np.arange(len(self.class_names), dtype=np.uint32)
        return self.classes.estimate(ids)

    def class_volume(self, name: str) -> int:
        ids = np.array([self._index[name]], dtype=np.uint32)
        return int(self.classes.estimate(ids)[0])

    def source_volume(self, src_ip: int) -> int:
        keys = np.array([src_ip], dtype=np.uint32)
        return int(self.sources.estimate(keys)[0])

    def estimated_classes(self, template: Sequence[TrafficClass],
                          scale: float = 1.0) -> List[TrafficClass]:
        """The template classes with sketched volumes.

        Structure (paths, footprints, session bytes) comes from the
        template — the routing feed knows it; only ``num_sessions``
        is replaced, with the sketch estimate times ``scale`` (the
        sampling-rate calibration from observed sessions to the
        matrix's ``|T_c|`` unit).
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        volumes = self.class_volumes()
        out: List[TrafficClass] = []
        for cls in template:
            index = self._index.get(cls.name)
            if index is None:
                raise ValueError(
                    f"template class {cls.name!r} is not in the "
                    f"registered universe")
            out.append(replace(
                cls, num_sessions=float(volumes[index]) * scale))
        return out

    def estimated_matrix(self, template: Sequence[TrafficClass],
                         scale: float = 1.0) -> EstimatedTrafficMatrix:
        """Render the estimates as a traffic matrix (``|T_c|`` per
        ingress-egress pair), tagged with the sketch's error bound."""
        volumes: Dict[Tuple[str, str], float] = {}
        for cls in self.estimated_classes(template, scale):
            pair = (cls.source, cls.target)
            volumes[pair] = volumes.get(pair, 0.0) + cls.num_sessions
        return EstimatedTrafficMatrix(
            volumes,
            epsilon=self.classes.epsilon,
            delta=self.classes.delta,
            state_bytes=self.state_bytes,
            sessions_observed=self.sessions,
            scale=scale)

    def estimate_errors(self, exact: Mapping[str, float]
                        ) -> Dict[str, float]:
        """L1 / Linf estimate error against exact per-class counts.

        ``l1_rel`` normalizes by the exact total so the number is
        comparable across trace sizes (0.0 when nothing was seen).
        """
        volumes = self.class_volumes()
        l1 = 0.0
        linf = 0.0
        total = 0.0
        for name, true_count in exact.items():
            err = abs(float(volumes[self._index[name]]) -
                      float(true_count))
            l1 += err
            linf = max(linf, err)
            total += float(true_count)
        return {"l1": l1, "linf": linf,
                "l1_rel": l1 / total if total > 0 else 0.0}

    # -- accounting --------------------------------------------------------

    @property
    def state_bytes(self) -> int:
        """Resident sketch state across both tables."""
        return self.classes.state_bytes + self.sources.state_bytes

    def __repr__(self) -> str:
        return (f"ClassVolumeSketch(classes={len(self.class_names)}, "
                f"width={self.classes.width}, "
                f"depth={self.classes.depth}, "
                f"seed={self.classes.seed}, "
                f"sessions={self.sessions})")
