"""Seeded count-min sketch over the lookup3 hash family.

A count-min sketch [Cormode & Muthukrishnan] summarizes an additive
stream of ``(key, count)`` updates in a ``depth x width`` counter
table: row ``r`` scatters each key through an independent hash into
one of ``width`` counters, and a point query reads the minimum across
rows. Collisions only ever *add*, so estimates are one-sided —
``estimate >= true count`` always — and with probability at least
``1 - delta`` the overestimate is bounded by ``epsilon * total``
where ``epsilon = e / width`` and ``delta = e ** -depth``.

The row hashes reuse the repo's vectorized Bob Jenkins lookup3
(:func:`repro.shim.hashing.bob_hash_batch`) with per-row seeds
``seed + row``, so updates are bit-exact, whole-column numpy
operations — no per-key Python loop — and a sketch is fully
determined by ``(width, depth, seed)``. Two sketches built with the
same shape and seed see the *same* hash functions, which is what
makes :meth:`merge` lossless: counter tables are elementwise sums,
so merging per-worker sketches (OctoSketch-style) yields bit-exactly
the sketch of the concatenated stream.

Seeds are mandatory (keyword-only) by design: an unseeded sketch
would silently break scenario fingerprint reproducibility. The
SKT001 lint rule enforces the call-site half of that contract.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.shim.hashing import bob_hash_batch

Columns = Sequence[np.ndarray]


class SketchMismatchError(ValueError):
    """Merging sketches with different shapes or hash seeds."""


def _as_columns(keys: Union[np.ndarray, Columns]) -> Columns:
    """Normalize a single key column into the column-sequence form."""
    if isinstance(keys, np.ndarray):
        return [keys]
    return keys


class CountMinSketch:
    """A ``depth x width`` count-min table with seeded lookup3 rows.

    Args:
        width: counters per row (``epsilon = e / width``).
        depth: independent hash rows (``delta = e ** -depth``).
        seed: hash-family seed; row ``r`` hashes with ``seed + r``.
            Keyword-only and mandatory — determinism is part of the
            repo-wide reproducibility contract.
    """

    def __init__(self, width: int, depth: int, *, seed: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.table = np.zeros((self.depth, self.width),
                              dtype=np.int64)
        self.total = 0

    # -- updates -----------------------------------------------------------

    def _row_indices(self, columns: Columns, row: int) -> np.ndarray:
        """Row ``row``'s bucket index for every key (vectorized)."""
        words = bob_hash_batch(columns, seed=self.seed + row)
        return (words % np.uint32(self.width)).astype(np.int64)

    def update(self, keys: Union[np.ndarray, Columns],
               counts: Union[np.ndarray, None] = None) -> None:
        """Add ``counts[i]`` to key ``i`` (1 each when omitted).

        ``keys`` is either one integer column or a sequence of aligned
        columns (multi-word keys hash like scalar ``bob_hash(*key)``).
        Counts must be non-negative — count-min's one-sided error
        guarantee only holds for non-decreasing counters.
        """
        columns = _as_columns(keys)
        if not columns:
            raise ValueError("need at least one key column")
        size = len(columns[0])
        if counts is None:
            counts = np.ones(size, dtype=np.int64)
        else:
            counts = np.asarray(counts)
            if len(counts) != size:
                raise ValueError("counts and keys must align")
            if np.any(counts < 0):
                raise ValueError("counts must be non-negative")
            counts = counts.astype(np.int64)
        if size == 0:
            return
        for row in range(self.depth):
            idx = self._row_indices(columns, row)
            # add.at: unbuffered scatter-add (duplicate indices in one
            # batch must each land).
            np.add.at(self.table[row], idx, counts)
        self.total += int(counts.sum())

    # -- queries -----------------------------------------------------------

    def estimate(self, keys: Union[np.ndarray, Columns]) -> np.ndarray:
        """Point estimates (int64) — min across rows, ``>=`` truth."""
        columns = _as_columns(keys)
        if not columns:
            raise ValueError("need at least one key column")
        size = len(columns[0])
        if size == 0:
            return np.zeros(0, dtype=np.int64)
        best = self.table[0][self._row_indices(columns, 0)]
        for row in range(1, self.depth):
            candidate = self.table[row][self._row_indices(columns,
                                                          row)]
            best = np.minimum(best, candidate)
        return best

    # -- merge (OctoSketch-style worker combination) -----------------------

    def compatible(self, other: "CountMinSketch") -> bool:
        """Same shape and seed — the precondition for lossless merge."""
        return (self.width == other.width and
                self.depth == other.depth and
                self.seed == other.seed)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Absorb ``other`` in place (elementwise table sum).

        Lossless: both sketches share one hash family, so the merged
        table is bit-exactly the sketch of the concatenated update
        stream. Returns ``self`` for chaining.
        """
        if not self.compatible(other):
            raise SketchMismatchError(
                f"cannot merge ({self.width}x{self.depth}, seed "
                f"{self.seed}) with ({other.width}x{other.depth}, "
                f"seed {other.seed})")
        self.table += other.table
        self.total += other.total
        return self

    def copy(self) -> "CountMinSketch":
        out = CountMinSketch(self.width, self.depth, seed=self.seed)
        out.table = self.table.copy()
        out.total = self.total
        return out

    def reset(self) -> None:
        """Zero every counter (start a new estimation window)."""
        self.table.fill(0)
        self.total = 0

    # -- accounting --------------------------------------------------------

    @property
    def state_bytes(self) -> int:
        """Resident bytes of sketch state (the counter table)."""
        return int(self.table.nbytes)

    @property
    def epsilon(self) -> float:
        """Additive-error factor: overestimate <= epsilon * total
        with probability ``1 - delta``."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Failure probability of the epsilon bound per query."""
        return math.exp(-self.depth)

    def error_bound(self) -> float:
        """Absolute additive error bound at the current total."""
        return self.epsilon * self.total

    def __repr__(self) -> str:
        return (f"CountMinSketch(width={self.width}, "
                f"depth={self.depth}, seed={self.seed}, "
                f"total={self.total})")
