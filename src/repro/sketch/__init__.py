"""Sketch-based traffic summarization (streaming estimation layer).

Count-min sketches over the repo's lookup3 hash family, plus the
:class:`ClassVolumeSketch` estimation layer that turns a packet
stream into per-class / per-source volume estimates the controller
can optimize against. See ``docs/ARCHITECTURE.md`` §13 for the
slab -> sketch -> estimated matrix -> drift trigger dataflow.
"""

from repro.sketch.countmin import CountMinSketch, SketchMismatchError
from repro.sketch.volume import ClassVolumeSketch

__all__ = [
    "ClassVolumeSketch",
    "CountMinSketch",
    "SketchMismatchError",
]
