"""Figure 13 — maximum compute load per NIDS architecture.

Compares, per topology (DC 10x, MaxLinkLoad 0.4): Ingress-only (1.0 by
construction), Path-No-Replicate [29], Path-Augmented (the DC's
aggregate capacity spread evenly over all nodes), and Path-Replicate.
The paper's shape: Path-Replicate wins everywhere — up to ~10x better
than Ingress and up to ~3x better than on-path distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.architectures import ArchitectureEvaluator, ArchitectureKind
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)

FIG13_ARCHITECTURES = (
    ArchitectureKind.INGRESS,
    ArchitectureKind.PATH_NO_REPLICATE,
    ArchitectureKind.PATH_AUGMENTED,
    ArchitectureKind.PATH_REPLICATE,
)


@dataclass
class Fig13Row:
    """One topology's max compute load per architecture."""

    topology: str
    max_loads: Dict[ArchitectureKind, float]

    def replication_gain_vs_ingress(self) -> float:
        return (self.max_loads[ArchitectureKind.INGRESS] /
                self.max_loads[ArchitectureKind.PATH_REPLICATE])

    def replication_gain_vs_path(self) -> float:
        return (self.max_loads[ArchitectureKind.PATH_NO_REPLICATE] /
                self.max_loads[ArchitectureKind.PATH_REPLICATE])


def run_fig13(topologies: Optional[Sequence[str]] = None,
              dc_capacity_factor: float = 10.0,
              max_link_load: float = 0.4) -> List[Fig13Row]:
    """Evaluate the four Figure 13 architectures per topology."""
    rows = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name)
        evaluator = ArchitectureEvaluator(
            setup.topology, setup.classes,
            dc_capacity_factor=dc_capacity_factor,
            max_link_load=max_link_load)
        loads = {kind: evaluator.evaluate(kind).load_cost
                 for kind in FIG13_ARCHITECTURES}
        rows.append(Fig13Row(name, loads))
    return rows


def format_fig13(rows: Sequence[Fig13Row]) -> str:
    headers = ["Topology"] + [k.value for k in FIG13_ARCHITECTURES]
    body = [[r.topology] + [f"{r.max_loads[k]:.3f}"
                            for k in FIG13_ARCHITECTURES]
            for r in rows]
    return format_table(
        headers, body,
        title="Figure 13: max compute load per architecture "
              "(DC=10x, MaxLinkLoad=0.4)")
