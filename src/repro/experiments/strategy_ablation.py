"""Split-strategy ablation: Figure 8 at gravity-trace scale.

The paper's Figure 8 compares flow-, destination-, and source-level
splits of Scan detection on a toy example (communication costs 12 vs 6
record-units, with flow-level needing full tuples to stay correct).
This ablation replays the comparison on a full synthetic trace with
*real encoded* report sizes (:mod:`repro.nids.encoding`): all three
strategies must flag identical scanners, and the source-level split
should ship the fewest byte-hops — the paper's reason for choosing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import format_table, setup_topology
from repro.nids.aggregator import SplitStrategy, aggregate_reports
from repro.nids.encoding import encoded_size
from repro.nids.scan import ScanDetector
from repro.shim.hashing import field_hash, session_hash
from repro.simulation.tracegen import TraceGenerator, TraceSpec


@dataclass
class StrategyRow:
    """One strategy's cost and outcome."""

    strategy: SplitStrategy
    record_hops: float
    encoded_byte_hops: float
    alerts: Tuple[int, ...]


def _assign_node(strategy: SplitStrategy, session, path) -> str:
    """Which on-path node handles this flow under each split."""
    if strategy is SplitStrategy.FLOW_LEVEL:
        value = session_hash(session.five_tuple)
    elif strategy is SplitStrategy.SOURCE_LEVEL:
        value = field_hash(session.src_ip)
    else:
        value = field_hash(session.dst_ip)
    return path[min(int(value * len(path)), len(path) - 1)]


def run_strategy_ablation(topology_name: str = "internet2",
                          total_sessions: int = 3000,
                          scanner_count: int = 4,
                          threshold: int = 20,
                          seed: int = 8) -> List[StrategyRow]:
    """Compare the three Figure 8 splits on one synthetic trace."""
    setup = setup_topology(topology_name)
    spec = TraceSpec(total_sessions=total_sessions,
                     scanner_count=scanner_count,
                     scanner_fanout=3 * threshold)
    generator = TraceGenerator(setup.topology.nodes, setup.classes,
                               spec=spec, seed=seed)
    sessions = generator.generate(with_payloads=False)
    class_by_name = {cls.name: cls for cls in setup.classes}

    rows = []
    for strategy in (SplitStrategy.FLOW_LEVEL,
                     SplitStrategy.DESTINATION_LEVEL,
                     SplitStrategy.SOURCE_LEVEL):
        # Per (node, gateway) detectors, flows assigned by the split.
        detectors: Dict[Tuple[str, str], ScanDetector] = {}
        for session in sessions:
            cls = class_by_name[session.class_name]
            node = _assign_node(strategy, session, cls.path)
            detectors.setdefault(
                (node, cls.ingress), ScanDetector()).observe_flow(
                    session.src_ip, session.dst_ip,
                    flow_key=session.five_tuple)

        record_hops = 0.0
        byte_hops = 0.0
        alerts: List[int] = []
        gateways = sorted({gw for _, gw in detectors})
        for gateway in gateways:
            reports = []
            for (node, gw), det in sorted(detectors.items()):
                if gw != gateway:
                    continue
                if strategy is SplitStrategy.FLOW_LEVEL:
                    report = det.flow_tuple_report(node)
                elif strategy is SplitStrategy.DESTINATION_LEVEL:
                    report = det.destination_set_report(node)
                else:
                    report = det.source_count_report(node)
                hops = setup.routing.hop_count(node, gateway)
                record_hops += report.record_count * hops
                byte_hops += encoded_size(report) * hops
                reports.append(report)
            counts = aggregate_reports(strategy, reports)
            alerts.extend(src for src, count in counts.items()
                          if count > threshold)
        rows.append(StrategyRow(strategy, record_hops, byte_hops,
                                tuple(sorted(alerts))))
    return rows


def format_strategies(rows: Sequence[StrategyRow]) -> str:
    body = [[r.strategy.value, f"{r.record_hops:,.0f}",
             f"{r.encoded_byte_hops:,.0f}", len(r.alerts)]
            for r in rows]
    return format_table(
        ["Strategy", "Record-hops", "Encoded byte-hops", "Alerts"],
        body,
        title="Ablation: Figure 8 split strategies at trace scale")
