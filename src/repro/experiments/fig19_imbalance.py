"""Figure 19 — load imbalance with vs without aggregation.

Without aggregation, Scan detection is topologically constrained to
each path's ingress (Section 2), so load concentrates at gateways and
the max/average ratio is large. With aggregation at each topology's
best beta (the Figure 18 point nearest the origin), the ratio drops —
by up to ~2.7x in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.aggregation import AggregationProblem
from repro.core.architectures import ingress_result
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)
from repro.experiments.fig18_beta import beta_sweep_values, Fig18Series


@dataclass
class Fig19Row:
    """One topology's imbalance comparison."""

    topology: str
    imbalance_no_aggregation: float
    imbalance_with_aggregation: float
    best_beta: float

    @property
    def improvement(self) -> float:
        if self.imbalance_with_aggregation == 0:
            return float("inf")
        return (self.imbalance_no_aggregation /
                self.imbalance_with_aggregation)


def run_fig19(topologies: Optional[Sequence[str]] = None,
              num_beta_points: int = 9) -> List[Fig19Row]:
    """Compute max/avg load ratios with and without aggregation."""
    rows = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name)
        # Without aggregation: Scan must run entirely at each ingress.
        baseline = ingress_result(setup.state)

        base_beta = AggregationProblem(setup.state).suggested_beta()
        betas = beta_sweep_values(base_beta, num_beta_points)
        loads, comms, results = [], [], []
        for beta in betas:
            result = AggregationProblem(setup.state, beta=beta).solve()
            loads.append(result.load_cost)
            comms.append(result.comm_cost)
            results.append(result)
        series = Fig18Series(name, betas, loads, comms)
        best_index = betas.index(series.best_beta())
        best = results[best_index]

        rows.append(Fig19Row(
            topology=name,
            imbalance_no_aggregation=baseline.load_imbalance(),
            imbalance_with_aggregation=best.load_imbalance(),
            best_beta=series.best_beta()))
    return rows


def format_fig19(rows: Sequence[Fig19Row]) -> str:
    body = [[r.topology,
             f"{r.imbalance_no_aggregation:.2f}",
             f"{r.imbalance_with_aggregation:.2f}",
             f"{r.improvement:.2f}x"] for r in rows]
    return format_table(
        ["Topology", "max/avg no-aggregation", "max/avg aggregation",
         "improvement"],
        body, title="Figure 19: load imbalance with/without aggregation")
