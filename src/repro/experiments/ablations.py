"""Ablations for results the paper discusses but does not plot.

- Datacenter placement (Section 8.2, "Choice of datacenter location"):
  four strategies; the paper reports the gap between them is small and
  "most observed traffic" wins, deferring the figure to the extended
  report.
- Datacenter capacity (Section 8.2, "Increasing the data center
  capacity"): diminishing returns, with the knee around 8-10x and
  earlier at lower MaxLinkLoad.
- Aggregation split strategies (Figure 8's motivating example): the
  communication cost of flow-, destination-, and source-level splits
  on a concrete scenario, all of which must agree on the final counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.placement import PLACEMENT_STRATEGIES, place_datacenter
from repro.core.replication import ReplicationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)


@dataclass
class PlacementRow:
    """Max load per datacenter placement strategy for one topology."""

    topology: str
    max_loads: Dict[str, float]   # strategy -> LoadCost
    anchors: Dict[str, str]       # strategy -> chosen PoP

    def spread(self) -> float:
        """Worst minus best strategy (paper: small)."""
        return max(self.max_loads.values()) - min(self.max_loads.values())

    def best_strategy(self) -> str:
        return min(self.max_loads, key=lambda s: self.max_loads[s])


def run_placement_ablation(topologies: Optional[Sequence[str]] = None,
                           dc_capacity_factor: float = 10.0,
                           max_link_load: float = 0.4
                           ) -> List[PlacementRow]:
    """Compare the four placement strategies per topology."""
    rows = []
    for name in topologies or evaluation_topologies():
        base = setup_topology(name)
        loads: Dict[str, float] = {}
        anchors: Dict[str, str] = {}
        for strategy in PLACEMENT_STRATEGIES:
            anchor = place_datacenter(base.topology, base.classes,
                                      strategy=strategy)
            anchors[strategy] = anchor
            state = NetworkState.calibrated(
                base.topology, base.classes,
                dc_capacity_factor=dc_capacity_factor,
                dc_anchor=anchor)
            result = ReplicationProblem(
                state, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=max_link_load).solve()
            loads[strategy] = result.load_cost
        rows.append(PlacementRow(name, loads, anchors))
    return rows


def format_placement(rows: Sequence[PlacementRow]) -> str:
    headers = ["Topology"] + list(PLACEMENT_STRATEGIES) + ["spread"]
    body = [[r.topology] +
            [f"{r.max_loads[s]:.3f}" for s in PLACEMENT_STRATEGIES] +
            [f"{r.spread():.3f}"] for r in rows]
    return format_table(headers, body,
                        title="Ablation: datacenter placement strategy")


@dataclass
class DCCapacitySeries:
    """Max load vs datacenter capacity for one (topology, link load)."""

    topology: str
    max_link_load: float
    capacities: List[float]
    max_loads: List[float]

    def knee_capacity(self, tolerance: float = 0.02) -> float:
        """Smallest capacity within ``tolerance`` of the best load."""
        best = min(self.max_loads)
        for capacity, load in zip(self.capacities, self.max_loads):
            if load <= best + tolerance:
                return capacity
        return self.capacities[-1]


def run_dc_capacity_ablation(topologies: Optional[Sequence[str]] = None,
                             capacities: Sequence[float] =
                             (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 13.0, 16.0),
                             link_loads: Sequence[float] = (0.1, 0.4)
                             ) -> List[DCCapacitySeries]:
    """Sweep the datacenter capacity at two link-load budgets."""
    series = []
    for name in topologies or evaluation_topologies(quick_count=2):
        for max_link_load in link_loads:
            loads = []
            for capacity in capacities:
                setup = setup_topology(name,
                                       dc_capacity_factor=capacity)
                result = ReplicationProblem(
                    setup.state,
                    mirror_policy=MirrorPolicy.datacenter(),
                    max_link_load=max_link_load).solve()
                loads.append(result.load_cost)
            series.append(DCCapacitySeries(
                name, max_link_load, list(capacities), loads))
    return series


def format_dc_capacity(series: Sequence[DCCapacitySeries]) -> str:
    headers = (["Topology", "MaxLinkLoad"] +
               [f"{c:g}x" for c in series[0].capacities] + ["knee"])
    body = [[s.topology, f"{s.max_link_load:.1f}"] +
            [f"{v:.3f}" for v in s.max_loads] +
            [f"{s.knee_capacity():g}x"] for s in series]
    return format_table(headers, body,
                        title="Ablation: datacenter capacity knee")
