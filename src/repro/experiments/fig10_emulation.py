"""Figure 10 — per-node CPU usage in the (emulated) Internet2 network.

The paper's Emulab experiment: 11 Snort nodes plus a datacenter with
8x capacity, MaxLinkLoad = 0.4, comparing "Path, No replicate" [29]
against "Path, Replicate". The reproduction runs the same two LP
configurations, compiles them to shim configs, replays a synthetic
trace, and reports each node's Signature-engine work units (the PAPI
instruction-count proxy). The headline check: replication roughly
halves the work on the maximally loaded non-DC node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.experiments.common import format_table, setup_topology
from repro.experiments.parallel import ParallelSweepRunner, SlabChannel
from repro.shim.config import build_replication_configs
from repro.simulation.emulation import Emulation
from repro.simulation.tracegen import TraceGenerator, TraceSpec

_POLICIES = {
    "no_replicate": MirrorPolicy.none,
    "replicate": MirrorPolicy.datacenter,
}


@dataclass
class Fig10Result:
    """Per-node emulated work for both architectures."""

    nodes: List[str]                 # non-DC nodes in display order
    dc_node: str
    work_no_replicate: Dict[str, float]
    work_replicate: Dict[str, float]
    lp_max_no_replicate: float       # the LP's predicted max loads
    lp_max_replicate: float
    alerts_no_replicate: int
    alerts_replicate: int

    def max_work_reduction(self) -> float:
        """Ratio of max non-DC work: no-replicate over replicate."""
        top_plain = max(self.work_no_replicate[n] for n in self.nodes)
        top_repl = max(self.work_replicate[n] for n in self.nodes)
        return top_plain / top_repl if top_repl > 0 else float("inf")


def _fig10_policy(args: Tuple[str, int, int, float, float, bool,
                              Optional[str]]
                  ) -> Tuple[str, Dict[str, float], float, int]:
    """One architecture's LP + replay, rebuilt from plain arguments
    (a picklable sweep point for :class:`ParallelSweepRunner`).

    ``trace_path`` names the parent's slab-channel trace store; the
    worker memmaps it instead of re-generating the trace. ``None``
    (the scalar path) regenerates Session objects locally.
    """
    (label, total_sessions, seed, dc_capacity_factor, max_link_load,
     fast, trace_path) = args
    setup = setup_topology("internet2",
                           dc_capacity_factor=dc_capacity_factor)
    state = setup.state
    generator = TraceGenerator(
        state.topology.nodes, state.classes,
        spec=TraceSpec(total_sessions=total_sessions), seed=seed)
    result = ReplicationProblem(
        state, mirror_policy=_POLICIES[label](),
        max_link_load=max_link_load).solve()
    configs = build_replication_configs(state, result)
    emulation = Emulation(state, configs, generator.classifier)
    if trace_path is not None:
        report = emulation.run_signature(
            SlabChannel.open_batch(trace_path), fast=True)
    else:
        report = emulation.run_signature(
            generator.generate(with_payloads=True), fast=fast)
    return (label, report.work_units,
            result.max_load(exclude_dc=True), report.alerts)


def run_fig10(total_sessions: int = 4000, seed: int = 7,
              dc_capacity_factor: float = 8.0,
              max_link_load: float = 0.4,
              jobs: Optional[int] = None,
              fast: bool = True) -> Fig10Result:
    """Run the Internet2 emulation for both architectures.

    With ``fast=True`` the trace is synthesized once (vectorized
    direct build), spilled to a slab channel, and memmapped by both
    architectures' workers — the trace is neither pickled nor built
    twice. Reports are bit-identical to the scalar per-worker path.

    Args:
        jobs: fan the two architectures across processes (``--jobs``
            on the CLI); results are identical to the serial run.
        fast: replay through the vectorized engine (bit-identical to
            the scalar oracle; set False to force the scalar path).
    """
    state = setup_topology(
        "internet2", dc_capacity_factor=dc_capacity_factor).state
    channel: Optional[SlabChannel] = None
    if fast:
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=total_sessions), seed=seed)
        channel = SlabChannel(
            generator.generate_batch(tuple(state.nids_nodes),
                                     direct=True),
            meta={"topology": "internet2", "seed": str(seed)})
    try:
        points = [(label, total_sessions, seed, dc_capacity_factor,
                   max_link_load, fast,
                   channel.path if channel else None)
                  for label in _POLICIES]
        results = ParallelSweepRunner(jobs).map(_fig10_policy, points)
    finally:
        if channel is not None:
            channel.close()

    work: Dict[str, Dict[str, float]] = {}
    lp_max: Dict[str, float] = {}
    alerts: Dict[str, int] = {}
    for label, work_units, max_load, alert_count in results:
        work[label] = work_units
        lp_max[label] = max_load
        alerts[label] = alert_count

    nodes = [n for n in state.nids_nodes if n != state.dc_node]
    return Fig10Result(
        nodes=nodes, dc_node=state.dc_node,
        work_no_replicate=work["no_replicate"],
        work_replicate=work["replicate"],
        lp_max_no_replicate=lp_max["no_replicate"],
        lp_max_replicate=lp_max["replicate"],
        alerts_no_replicate=alerts["no_replicate"],
        alerts_replicate=alerts["replicate"])


def format_fig10(result: Fig10Result) -> str:
    rows = []
    for node in result.nodes + [result.dc_node]:
        rows.append([node,
                     f"{result.work_no_replicate[node]:.0f}",
                     f"{result.work_replicate[node]:.0f}"])
    table = format_table(
        ["Node", "Path,NoReplicate work", "Path,Replicate work"],
        rows, title="Figure 10: per-node NIDS work units (Internet2)")
    return (f"{table}\n"
            f"max non-DC work reduction: "
            f"{result.max_work_reduction():.2f}x "
            f"(LP predicted "
            f"{result.lp_max_no_replicate / result.lp_max_replicate:.2f}x)")
