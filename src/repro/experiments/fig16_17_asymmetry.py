"""Figures 16 and 17 — detection miss rate and max load vs route overlap.

Section 8.3's experiment: forward paths are shortest paths; reverse
paths are sampled to hit a target expected Jaccard overlap theta. For
each theta, many random configurations are generated and the median of
two metrics reported for three architectures:

- ``Ingress`` — gateway-only processing: misses every session whose
  reverse path avoids the gateway (>85% miss in the paper), with
  deceptively low load (it ignores most traffic).
- ``Path`` — the Section 5 LP without offloading: only ``P_common``
  nodes provide effective coverage, so miss falls as overlap grows.
- ``DC-0.4`` — the full Section 5 formulation with a 10x datacenter
  and MaxLinkLoad 0.4: miss ~0 across the range; its max load first
  rises (link budget limits offloading at low overlap) then falls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inputs import NetworkState
from repro.core.split import SplitTrafficProblem, ingress_split_result
from repro.experiments.common import (
    asymmetric_classes,
    format_table,
    full_scale,
    setup_topology,
)
from repro.topology.asymmetry import AsymmetricRoutingModel

DEFAULT_THETAS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9)
CONFIG_LABELS = ("ingress", "path", "dc-0.4")


@dataclass
class AsymmetryPoint:
    """Median metrics at one (theta, architecture) point."""

    theta: float
    config: str
    miss_rate: float
    max_load: float


def run_fig16_17(topology_name: str = "internet2",
                 thetas: Sequence[float] = DEFAULT_THETAS,
                 runs_per_theta: Optional[int] = None,
                 dc_capacity_factor: float = 10.0,
                 max_link_load: float = 0.4,
                 seed: int = 16) -> List[AsymmetryPoint]:
    """Sweep the expected overlap factor for the three architectures.

    Args:
        runs_per_theta: random configurations per theta (paper: 50;
            quick default: 8).
    """
    if runs_per_theta is None:
        runs_per_theta = 50 if full_scale() else 8
    setup = setup_topology(topology_name)
    model = AsymmetricRoutingModel(setup.topology, setup.routing)
    rng = np.random.default_rng(seed)

    points: List[AsymmetryPoint] = []
    for theta in thetas:
        metrics: Dict[str, List[Tuple[float, float]]] = {
            label: [] for label in CONFIG_LABELS}
        for _ in range(runs_per_theta):
            classes = asymmetric_classes(setup, model, theta, rng)
            state = NetworkState.calibrated(
                setup.topology, classes,
                dc_capacity_factor=dc_capacity_factor)

            ingress = ingress_split_result(state)
            metrics["ingress"].append(
                (ingress.miss_rate, ingress.load_cost))

            path = SplitTrafficProblem(state,
                                       allow_offload=False).solve()
            metrics["path"].append((path.miss_rate, path.load_cost))

            dc = SplitTrafficProblem(
                state, max_link_load=max_link_load).solve()
            metrics["dc-0.4"].append((dc.miss_rate, dc.load_cost))
        for label in CONFIG_LABELS:
            misses = [m for m, _ in metrics[label]]
            loads = [l for _, l in metrics[label]]
            points.append(AsymmetryPoint(
                theta=theta, config=label,
                miss_rate=float(np.median(misses)),
                max_load=float(np.median(loads))))
    return points


def format_fig16(points: Sequence[AsymmetryPoint]) -> str:
    return _format(points, "miss_rate",
                   "Figure 16: median detection miss rate vs overlap")


def format_fig17(points: Sequence[AsymmetryPoint]) -> str:
    return _format(points, "max_load",
                   "Figure 17: median max compute load vs overlap")


def _format(points: Sequence[AsymmetryPoint], attr: str,
            title: str) -> str:
    thetas = sorted({p.theta for p in points})
    by_key = {(p.config, p.theta): getattr(p, attr) for p in points}
    headers = ["Config"] + [f"{t:.1f}" for t in thetas]
    body = [[label] + [f"{by_key[(label, t)]:.3f}" for t in thetas]
            for label in CONFIG_LABELS]
    return format_table(headers, body, title=title)
