"""Rule-budget sweep: lowering fidelity vs. TCAM table size.

Real shim rule tables are bounded (switch TCAMs hold a fixed number of
range entries), so the compiler's budgeted mode
(:func:`~repro.shim.budget.budgeted_hash_ranges`) approximates each
class's LP fractions with at most ``budget`` hash ranges. This
experiment quantifies the trade: for each budget it compiles the
replication solution of a topology under that cap and reports

- the worst per-class coverage error (Linf and L1 deviation of the
  realized range widths from the LP fractions),
- the rule-count footprint (total rules, busiest node), and
- the *realized* maximum node load and maximum replication link load,
  recomputed from the realized fractions through the same Eq (3)/(4)
  accounting the LP used — dropped offload entries shift work back to
  the on-path nodes and take replication traffic off the links.

One LP solve per topology; the budget only changes the lowering, so
the sweep is cheap. ``budget=None`` is the exact (unbounded) compile
and anchors the curves at zero error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.core.results import ReplicationResult
from repro.experiments.common import format_table, setup_topology
from repro.shim.batch import BatchShimKernel
from repro.shim.budget import BudgetedLowering
from repro.shim.config import build_replication_configs

DEFAULT_BUDGETS: Tuple[Optional[int], ...] = (1, 2, 3, 4, 8, 16, None)
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("tinet", "sprint")
DEFAULT_MIRROR = "dc+one-hop"

_MIRRORS = {
    "none": MirrorPolicy.none,
    "dc": MirrorPolicy.datacenter,
    "one-hop": lambda: MirrorPolicy.neighbors(1),
    "two-hop": lambda: MirrorPolicy.neighbors(2),
    "dc+one-hop": lambda: MirrorPolicy.datacenter_plus_neighbors(1),
}


@dataclass
class BudgetPoint:
    """One budget's row of the sweep curve."""

    budget: Optional[int]
    error_linf: float
    error_l1: float
    total_rules: int
    max_rules_per_node: int
    max_table_rules: int
    max_node_load: float
    max_link_load: float

    def to_dict(self) -> Dict:
        return {
            "budget": self.budget,
            "error_linf": self.error_linf,
            "error_l1": self.error_l1,
            "total_rules": self.total_rules,
            "max_rules_per_node": self.max_rules_per_node,
            "max_table_rules": self.max_table_rules,
            "max_node_load": self.max_node_load,
            "max_link_load": self.max_link_load,
        }


@dataclass
class BudgetSweepSeries:
    """One topology's full budget curve."""

    topology: str
    mirror: str
    max_link_load: float
    lp_load_cost: float
    points: List[BudgetPoint]

    def point(self, budget: Optional[int]) -> BudgetPoint:
        for pt in self.points:
            if pt.budget == budget:
                return pt
        raise KeyError(f"no point for budget {budget!r}")

    def to_dict(self) -> Dict:
        return {
            "topology": self.topology,
            "mirror": self.mirror,
            "max_link_load": self.max_link_load,
            "lp_load_cost": self.lp_load_cost,
            "points": [pt.to_dict() for pt in self.points],
        }


def realized_node_loads(state, lowerings: Dict[str, BudgetedLowering],
                        resource: str = "cpu") -> Dict[str, float]:
    """Eq (3) node loads under the *realized* (budgeted) fractions.

    ``("process", j)`` entries charge node ``j``; ``("replicate", j,
    m)`` entries charge the mirror ``m`` — exactly the LP's load
    accounting, evaluated at the lowering's realized widths.
    """
    loads = {node: 0.0 for node in state.nids_nodes}
    for cls in state.classes:
        lowering = lowerings.get(cls.name)
        if lowering is None:
            continue
        work = cls.footprint(resource) * cls.num_sessions
        if work == 0.0:
            continue
        for key, fraction in lowering.realized.items():
            if fraction <= 0.0:
                continue
            if key[0] == "process":
                node = key[1]
            else:
                node = key[2]
            loads[node] += fraction * work / state.capacity(
                resource, node)
    return loads


def realized_link_loads(state, lowerings: Dict[str, BudgetedLowering]
                        ) -> Dict[Tuple[str, str], float]:
    """Eq (4) link loads (replication bytes + background) under the
    realized fractions."""
    loads = {link: state.bg_load(link)
             for link in state.topology.links}
    for cls in state.classes:
        lowering = lowerings.get(cls.name)
        if lowering is None:
            continue
        replicated_bytes = cls.num_sessions * cls.session_bytes
        for key, fraction in lowering.realized.items():
            if key[0] != "replicate" or fraction <= 0.0:
                continue
            _, node, mirror = key
            for link in state.routing.path_links(node, mirror):
                loads[link] += (fraction * replicated_bytes /
                                state.link_capacity[link])
    return loads


def _sweep_one(name: str, budgets: Sequence[Optional[int]],
               mirror: str, max_link_load: float,
               dc_capacity_factor: Optional[float]
               ) -> BudgetSweepSeries:
    needs_dc = mirror in ("dc", "dc+one-hop")
    setup = setup_topology(
        name, dc_capacity_factor=dc_capacity_factor
        if needs_dc else None)
    state = setup.state
    result: ReplicationResult = ReplicationProblem(
        state, mirror_policy=_MIRRORS[mirror](),
        max_link_load=max_link_load).solve()

    points: List[BudgetPoint] = []
    for budget in budgets:
        lowerings: Dict[str, BudgetedLowering] = {}
        configs = build_replication_configs(
            state, result, budget=budget, lowerings=lowerings)
        kernel = BatchShimKernel(
            configs, [cls.name for cls in state.classes],
            state.topology.nodes)
        node_loads = realized_node_loads(state, lowerings)
        link_loads = realized_link_loads(state, lowerings)
        points.append(BudgetPoint(
            budget=budget,
            error_linf=max((low.error_linf
                            for low in lowerings.values()),
                           default=0.0),
            error_l1=max((low.error_l1
                          for low in lowerings.values()),
                         default=0.0),
            total_rules=sum(cfg.num_rules
                            for cfg in configs.values()),
            max_rules_per_node=max((cfg.num_rules
                                    for cfg in configs.values()),
                                   default=0),
            max_table_rules=kernel.max_table_rules,
            max_node_load=max(node_loads.values(), default=0.0),
            max_link_load=max(link_loads.values(), default=0.0)))
    return BudgetSweepSeries(
        topology=name, mirror=mirror,
        max_link_load=max_link_load,
        lp_load_cost=result.load_cost, points=points)


def run_budget_sweep(
        topologies: Optional[Sequence[str]] = None,
        budgets: Sequence[Optional[int]] = DEFAULT_BUDGETS,
        mirror: str = DEFAULT_MIRROR,
        max_link_load: float = 0.4,
        dc_capacity_factor: Optional[float] = 10.0
        ) -> List[BudgetSweepSeries]:
    """Sweep the rule budget on each topology (LP solved once each)."""
    if mirror not in _MIRRORS:
        raise ValueError(f"unknown mirror {mirror!r}; choose from "
                         f"{sorted(_MIRRORS)}")
    return [_sweep_one(name, budgets, mirror, max_link_load,
                       dc_capacity_factor)
            for name in (topologies or DEFAULT_TOPOLOGIES)]


def sweep_to_json(series: Sequence[BudgetSweepSeries],
                  indent: Optional[int] = 2) -> str:
    """The sweep as a JSON document (the CI artifact format)."""
    return json.dumps({
        "schema": 1,
        "experiment": "budget-sweep",
        "series": [s.to_dict() for s in series],
    }, indent=indent, sort_keys=True)


def format_budget_sweep(series: Sequence[BudgetSweepSeries]) -> str:
    blocks = []
    for entry in series:
        rows = []
        for pt in entry.points:
            rows.append([
                "inf" if pt.budget is None else str(pt.budget),
                f"{pt.error_linf:.4f}",
                f"{pt.error_l1:.4f}",
                str(pt.total_rules),
                str(pt.max_rules_per_node),
                str(pt.max_table_rules),
                f"{pt.max_node_load:.4f}",
                f"{pt.max_link_load:.4f}",
            ])
        blocks.append(format_table(
            ["Budget", "Linf err", "L1 err", "Rules", "Node max",
             "Table max", "Max load", "Max link"],
            rows,
            title=f"rule-budget sweep on {entry.topology} "
                  f"({entry.mirror}, MaxLinkLoad "
                  f"{entry.max_link_load:g}, LP LoadCost "
                  f"{entry.lp_load_cost:.4f})"))
    return "\n\n".join(blocks)
