"""Deterministic parallel execution of experiment sweep points.

The Section 8 experiments are embarrassingly parallel across their
sweep axes — fig10's two architectures, fig15's topologies, epoch and
seed batches — and every sweep point is a pure function of its inputs
(seeded RNGs, deterministic LPs). :class:`ParallelSweepRunner` fans
such points across worker processes with ``ProcessPoolExecutor`` while
preserving input order, so ``jobs=N`` produces byte-identical results
to the serial run, just sooner.

Workers must be module-level (picklable) functions; each rebuilds its
state from plain arguments rather than receiving live ``Emulation``
objects, so nothing process-local (metrics registries, instrumented
shims, caches) leaks across the fork boundary.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro.core.inputs import NetworkState
from repro.shim.config import ShimConfig
from repro.simulation.emulation import Emulation, ScanEmulationReport
from repro.simulation.packets import Session

T = TypeVar("T")
R = TypeVar("R")


class ParallelSweepRunner:
    """Order-preserving map over sweep points.

    Args:
        jobs: worker-process count. ``None`` or ``1`` runs serially in
            this process (no pool, no pickling); ``N > 1`` fans out to
            ``N`` processes. Either way results come back in input
            order, so downstream aggregation is deterministic.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs or 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, in order.

        With ``jobs > 1``, ``fn`` must be picklable (a module-level
        function or a ``functools.partial`` over one).
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(fn, items))


def _scan_epoch_worker(args) -> ScanEmulationReport:
    """One epoch of the scan sweep, rebuilt from plain arguments."""
    (state, configs, classifier, hash_seed, sessions, threshold,
     class_gateway, fast) = args
    emulation = Emulation(state, configs, classifier,
                          hash_seed=hash_seed)
    return emulation.run_scan(sessions, threshold, class_gateway,
                              fast=fast)


def run_scan_epoch_sweep(state: NetworkState,
                         configs: Dict[str, ShimConfig],
                         classifier,
                         epochs: Sequence[Sequence[Session]],
                         threshold: int,
                         class_gateway: Optional[Dict[str, str]] = None,
                         hash_seed: int = 0,
                         jobs: Optional[int] = None,
                         fast: bool = False
                         ) -> List[ScanEmulationReport]:
    """Scan detection over measurement epochs, optionally in parallel.

    Epochs are independent by construction (counters reset between
    epochs — see :meth:`Emulation.run_scan_epochs`), so each worker
    replays one epoch against its own ``Emulation`` rebuilt from the
    same state/configs; reports return in epoch order and equal the
    sequential :meth:`Emulation.run_scan_epochs` output exactly.
    """
    runner = ParallelSweepRunner(jobs)
    return runner.map(_scan_epoch_worker,
                      [(state, configs, classifier, hash_seed,
                        list(epoch), threshold, class_gateway, fast)
                       for epoch in epochs])
