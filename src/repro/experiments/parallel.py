"""Deterministic parallel execution of experiment sweep points.

The Section 8 experiments are embarrassingly parallel across their
sweep axes — fig10's two architectures, fig15's topologies, epoch and
seed batches — and every sweep point is a pure function of its inputs
(seeded RNGs, deterministic LPs). :class:`ParallelSweepRunner` fans
such points across worker processes with ``ProcessPoolExecutor`` while
preserving input order, so ``jobs=N`` produces byte-identical results
to the serial run, just sooner.

Workers must be module-level (picklable) functions; each rebuilds its
state from plain arguments rather than receiving live ``Emulation``
objects, so nothing process-local (metrics registries, instrumented
shims, caches) leaks across the fork boundary.

Traces don't cross that boundary at all: :class:`SlabChannel` spills a
columnar batch to a :class:`~repro.simulation.tracestore.TraceStore`
once in the parent and hands workers the *path* (a short string).
Each worker memmaps the same files read-only, so all workers share one
page-cached copy of the trace instead of each unpickling or
re-generating its own.
"""

from __future__ import annotations

import math
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.core.inputs import NetworkState
from repro.shim.config import ShimConfig
from repro.simulation.batch import PacketBatch
from repro.simulation.emulation import Emulation, ScanEmulationReport
from repro.simulation.packets import Session
from repro.simulation.tracestore import TraceStore

T = TypeVar("T")
R = TypeVar("R")


class ParallelSweepRunner:
    """Order-preserving map over sweep points.

    Args:
        jobs: worker-process count. ``None`` or ``1`` runs serially in
            this process (no pool, no pickling); ``N > 1`` fans out to
            ``N`` processes. Either way results come back in input
            order, so downstream aggregation is deterministic.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs or 1

    def auto_chunksize(self, num_items: int) -> int:
        """Default pickling granularity: ~4 chunks per worker —
        coarse enough to amortize the per-item round-trip, fine
        enough to keep the pool load-balanced."""
        if num_items <= 0:
            return 1
        return max(1, math.ceil(num_items / (4 * self.jobs)))

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            chunksize: Optional[int] = None) -> List[R]:
        """Apply ``fn`` to every item, in order.

        With ``jobs > 1``, ``fn`` must be picklable (a module-level
        function or a ``functools.partial`` over one).
        ``chunksize`` controls how many items ship per worker
        round-trip (``pool.map``'s knob; default one pickle per
        item batch via :meth:`auto_chunksize`).
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if chunksize is None:
            chunksize = self.auto_chunksize(len(items))
        elif chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))


class SlabChannel:
    """Shares one packed trace with worker processes by path.

    Packs ``batch`` into a temporary :class:`TraceStore` on
    construction; :attr:`path` is what goes into worker argument
    tuples (pickling a short string), and workers reopen with
    :meth:`open_batch`. The parent owns the store's lifetime — call
    :meth:`close` (or use as a context manager) after the sweep.
    """

    def __init__(self, batch: PacketBatch,
                 meta: Optional[Dict[str, str]] = None,
                 dir: Optional[Union[str, Path]] = None) -> None:
        self._tmpdir = tempfile.TemporaryDirectory(
            prefix="repro-slab-", dir=dir)
        self.store = TraceStore.pack(
            batch, Path(self._tmpdir.name) / "trace", meta=meta)
        self.path = str(self.store.path)

    @staticmethod
    def open_batch(path: Union[str, Path]) -> PacketBatch:
        """Worker side: memmap the shared trace (read-only)."""
        return TraceStore.open(path).batch()

    def close(self) -> None:
        self._tmpdir.cleanup()

    def __enter__(self) -> "SlabChannel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _scan_epoch_worker(args) -> ScanEmulationReport:
    """One epoch of the scan sweep, rebuilt from plain arguments.

    The epoch trace arrives either as Session objects (scalar path)
    or as a slab-channel path to memmap (fast path).
    """
    (state, configs, classifier, hash_seed, trace, threshold,
     class_gateway, fast) = args
    if isinstance(trace, str):
        trace = SlabChannel.open_batch(trace)
    emulation = Emulation(state, configs, classifier,
                          hash_seed=hash_seed)
    return emulation.run_scan(trace, threshold, class_gateway,
                              fast=fast)


def run_scan_epoch_sweep(state: NetworkState,
                         configs: Dict[str, ShimConfig],
                         classifier,
                         epochs: Sequence[Sequence[Session]],
                         threshold: int,
                         class_gateway: Optional[Dict[str, str]] = None,
                         hash_seed: int = 0,
                         jobs: Optional[int] = None,
                         fast: bool = False,
                         chunksize: Optional[int] = None
                         ) -> List[ScanEmulationReport]:
    """Scan detection over measurement epochs, optionally in parallel.

    Epochs are independent by construction (counters reset between
    epochs — see :meth:`Emulation.run_scan_epochs`), so each worker
    replays one epoch against its own ``Emulation`` rebuilt from the
    same state/configs; reports return in epoch order and equal the
    sequential :meth:`Emulation.run_scan_epochs` output exactly.

    With ``fast=True`` each epoch is columnarized once here and
    spilled through a :class:`SlabChannel`, so workers memmap their
    epoch instead of unpickling Session object graphs. ``chunksize``
    batches epochs per worker round-trip (default
    :meth:`ParallelSweepRunner.auto_chunksize`).
    """
    runner = ParallelSweepRunner(jobs)
    node_order = tuple(state.nids_nodes)
    channels: List[SlabChannel] = []
    try:
        points = []
        for epoch in epochs:
            trace: Union[List[Session], str]
            if fast:
                channel = SlabChannel(PacketBatch.from_sessions(
                    list(epoch), classifier, node_order, hash_seed))
                channels.append(channel)
                trace = channel.path
            else:
                trace = list(epoch)
            points.append((state, configs, classifier, hash_seed,
                           trace, threshold, class_gateway, fast))
        return runner.map(_scan_epoch_worker, points,
                          chunksize=chunksize)
    finally:
        for channel in channels:
            channel.close()
