"""Figure 11 — maximum compute load vs MaxLinkLoad (DC capacity 10x).

Sweeps the allowed replication link load from 0 to 1 for each topology.
The paper's shape: steep improvement up to around MaxLinkLoad = 0.4,
then diminishing returns — at that point the datacenter's load already
matches the maximum interior NIDS load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)

DEFAULT_LINK_LOADS: Tuple[float, ...] = (
    0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0)


@dataclass
class Fig11Series:
    """One topology's sweep: max load per MaxLinkLoad value."""

    topology: str
    link_loads: List[float]
    max_loads: List[float]

    def knee_gain(self, knee: float = 0.4) -> float:
        """Improvement still available after the knee (paper: small)."""
        at_knee = dict(zip(self.link_loads, self.max_loads))[knee]
        best = min(self.max_loads)
        return at_knee - best


def run_fig11(topologies: Optional[Sequence[str]] = None,
              link_loads: Sequence[float] = DEFAULT_LINK_LOADS,
              dc_capacity_factor: float = 10.0) -> List[Fig11Series]:
    """Sweep MaxLinkLoad for each topology."""
    series = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        # One formulation per topology; each sweep step patches the
        # link bounds of the compiled LP and re-solves warm.
        problem = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=link_loads[0])
        maxima = []
        for limit in link_loads:
            result = problem.resolve(max_link_load=limit)
            maxima.append(result.load_cost)
        series.append(Fig11Series(name, list(link_loads), maxima))
    return series


def format_fig11(series: Sequence[Fig11Series]) -> str:
    headers = ["Topology"] + [f"{x:.2f}" for x in series[0].link_loads]
    rows = [[s.topology] + [f"{v:.3f}" for v in s.max_loads]
            for s in series]
    return format_table(
        headers, rows,
        title="Figure 11: max compute load vs MaxLinkLoad (DC=10x)")
