"""Figure 12 — datacenter load vs maximum interior NIDS load.

For four configurations (MaxLinkLoad in {0.1, 0.4} x DC capacity in
{2x, 10x}), plots ``DCLoad - MaxNIDSLoad``. The paper's shape: at low
link load and high DC capacity the datacenter is underutilized (large
negative gap); with more allowed link load or a smaller datacenter the
gap closes to ~0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)

DEFAULT_CONFIGS: Tuple[Tuple[float, float], ...] = (
    (0.1, 2.0), (0.1, 10.0), (0.4, 2.0), (0.4, 10.0))


@dataclass
class Fig12Row:
    """One topology's DC-load gaps across the four configurations."""

    topology: str
    gaps: Dict[Tuple[float, float], float]  # (link load, DC cap) -> gap


def run_fig12(topologies: Optional[Sequence[str]] = None,
              configs: Sequence[Tuple[float, float]] = DEFAULT_CONFIGS
              ) -> List[Fig12Row]:
    """Compute DCLoad - MaxNIDSLoad per topology and configuration."""
    rows = []
    for name in topologies or evaluation_topologies():
        gaps: Dict[Tuple[float, float], float] = {}
        for max_link_load, dc_factor in configs:
            setup = setup_topology(name, dc_capacity_factor=dc_factor)
            result = ReplicationProblem(
                setup.state, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=max_link_load).solve()
            gaps[(max_link_load, dc_factor)] = (
                result.dc_load() - result.max_load(exclude_dc=True))
        rows.append(Fig12Row(name, gaps))
    return rows


def format_fig12(rows: Sequence[Fig12Row]) -> str:
    configs = sorted(rows[0].gaps)
    headers = ["Topology"] + [f"MLL={c[0]:.1f},DC={c[1]:.0f}x"
                              for c in configs]
    body = [[r.topology] + [f"{r.gaps[c]:+.3f}" for c in configs]
            for r in rows]
    return format_table(
        headers, body,
        title="Figure 12: DCLoad - MaxNIDSLoad per configuration")
