"""Sharded-controller optimality gap and solve-time speedup.

The sharded control plane (:mod:`repro.core.controller.sharded`)
trades optimality for scalability: per-region LPs with a bounded
coordination loop instead of one global LP per refresh. This
experiment quantifies both sides of the trade. For each topology it

- solves the global replication LP once (the optimality oracle and
  the wall-time baseline), then
- for each region count runs the sharded planner — per-region solves
  concurrent by default — and reports the relative **LoadCost gap**
  against the global optimum, the **coordination rounds** used, the
  wall-clock **speedup** of the full sharded plan over the global
  solve, and the partition shape (region node counts).

The gap of the most-sharded run is published on the
``controller.shard.gap`` gauge so dashboards track it alongside the
solver health metrics. Wall-clock numbers are reported for operators;
everything else (gaps, rounds, partitions) is deterministic for a
given seed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import GlobalPlanner, ShardedPlanner
from repro.core.mirrors import MirrorPolicy
from repro.experiments.common import format_table, setup_topology
from repro.obs import get_registry

DEFAULT_REGIONS: Tuple[int, ...] = (2, 3, 4)
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("sprint", "level3", "ntt")
DEFAULT_MIRROR = "dc"
DEFAULT_DC_CAPACITY_FACTOR = 1.0

_MIRRORS = {
    "none": MirrorPolicy.none,
    "dc": MirrorPolicy.datacenter,
    "one-hop": lambda: MirrorPolicy.neighbors(1),
    "two-hop": lambda: MirrorPolicy.neighbors(2),
    "dc+one-hop": lambda: MirrorPolicy.datacenter_plus_neighbors(1),
}


@dataclass
class ShardGapPoint:
    """One region count's row of the gap curve."""

    regions: int
    load_cost: float
    gap: float
    rounds: int
    lp_solves: int
    region_sizes: List[int]
    solve_wall_seconds: float
    speedup: float

    def to_dict(self) -> Dict:
        return {
            "regions": self.regions,
            "load_cost": self.load_cost,
            "gap": self.gap,
            "rounds": self.rounds,
            "lp_solves": self.lp_solves,
            "region_sizes": list(self.region_sizes),
            "solve_wall_seconds": self.solve_wall_seconds,
            "speedup": self.speedup,
        }


@dataclass
class ShardGapSeries:
    """One topology's sharded-vs-global comparison."""

    topology: str
    mirror: str
    max_link_load: float
    seed: int
    global_load_cost: float
    global_wall_seconds: float
    points: List[ShardGapPoint]

    def point(self, regions: int) -> ShardGapPoint:
        for pt in self.points:
            if pt.regions == regions:
                return pt
        raise KeyError(f"no point for {regions} regions")

    def to_dict(self) -> Dict:
        return {
            "topology": self.topology,
            "mirror": self.mirror,
            "max_link_load": self.max_link_load,
            "seed": self.seed,
            "global_load_cost": self.global_load_cost,
            "global_wall_seconds": self.global_wall_seconds,
            "points": [pt.to_dict() for pt in self.points],
        }


def _gap_one(name: str, regions: Sequence[int], mirror: str,
             max_link_load: float,
             dc_capacity_factor: Optional[float], seed: int,
             jobs: Optional[int]) -> ShardGapSeries:
    needs_dc = mirror in ("dc", "dc+one-hop")
    setup = setup_topology(
        name, dc_capacity_factor=dc_capacity_factor
        if needs_dc else None)
    state = setup.state

    oracle = GlobalPlanner(state, mirror_policy=_MIRRORS[mirror](),
                           max_link_load=max_link_load)
    start = time.perf_counter()
    global_outcome = oracle.plan(setup.classes)
    global_wall = time.perf_counter() - start
    global_cost = global_outcome.result.load_cost

    metrics = get_registry()
    points: List[ShardGapPoint] = []
    for count in regions:
        planner = ShardedPlanner(
            state, mirror_policy=_MIRRORS[mirror](),
            max_link_load=max_link_load, num_regions=count,
            seed=seed, jobs=jobs)
        outcome, wall = planner.timed_plan(setup.classes)
        gap = ((outcome.result.load_cost - global_cost) / global_cost
               if global_cost > 0 else 0.0)
        metrics.gauge("controller.shard.gap", gap)
        assert planner.partition is not None
        points.append(ShardGapPoint(
            regions=count,
            load_cost=outcome.result.load_cost,
            gap=gap,
            rounds=planner.last_rounds,
            lp_solves=planner.solve_count,
            region_sizes=[len(region.nodes)
                          for region in planner.partition.regions],
            solve_wall_seconds=wall,
            speedup=global_wall / wall if wall > 0 else 0.0))
    return ShardGapSeries(
        topology=name, mirror=mirror, max_link_load=max_link_load,
        seed=seed, global_load_cost=global_cost,
        global_wall_seconds=global_wall, points=points)


def run_shard_gap(
        topologies: Optional[Sequence[str]] = None,
        regions: Sequence[int] = DEFAULT_REGIONS,
        mirror: str = DEFAULT_MIRROR,
        max_link_load: float = 0.4,
        dc_capacity_factor: Optional[float] =
        DEFAULT_DC_CAPACITY_FACTOR,
        seed: int = 0,
        jobs: Optional[int] = None) -> List[ShardGapSeries]:
    """Compare the sharded planner to the global LP per topology.

    Args:
        topologies: topology names (default sprint/level3/ntt — the
            three largest, where decomposition matters most).
        regions: region counts to sweep.
        mirror: replication shape (needs a DC for ``dc`` variants).
        seed: partitioner seed, forwarded to every sharded run.
        jobs: per-region solver threads (``None`` = one per region up
            to the CPU count; 1 = serial).
    """
    if mirror not in _MIRRORS:
        raise ValueError(f"unknown mirror {mirror!r}; choose from "
                         f"{sorted(_MIRRORS)}")
    if not regions:
        raise ValueError("need at least one region count")
    for count in regions:
        if count < 1:
            raise ValueError("region counts must be >= 1")
    return [_gap_one(name, regions, mirror, max_link_load,
                     dc_capacity_factor, seed, jobs)
            for name in (topologies or DEFAULT_TOPOLOGIES)]


def shard_gap_to_json(series: Sequence[ShardGapSeries],
                      indent: Optional[int] = 2) -> str:
    """The comparison as a JSON document (the CI artifact format)."""
    return json.dumps({
        "schema": 1,
        "experiment": "shard-gap",
        "series": [s.to_dict() for s in series],
    }, indent=indent, sort_keys=True)


def format_shard_gap(series: Sequence[ShardGapSeries]) -> str:
    blocks = []
    for entry in series:
        rows = []
        for pt in entry.points:
            rows.append([
                str(pt.regions),
                f"{pt.load_cost:.4f}",
                f"{100.0 * pt.gap:.2f}%",
                str(pt.rounds),
                str(pt.lp_solves),
                "/".join(str(size) for size in pt.region_sizes),
                f"{pt.solve_wall_seconds:.2f}s",
                f"{pt.speedup:.2f}x",
            ])
        blocks.append(format_table(
            ["Regions", "LoadCost", "Gap", "Rounds", "Solves",
             "Sizes", "Wall", "Speedup"],
            rows,
            title=f"sharded control plane on {entry.topology} "
                  f"({entry.mirror}, MaxLinkLoad "
                  f"{entry.max_link_load:g}, global LoadCost "
                  f"{entry.global_load_cost:.4f} in "
                  f"{entry.global_wall_seconds:.2f}s)"))
    return "\n\n".join(blocks)
