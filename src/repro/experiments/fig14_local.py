"""Figure 14 — local one- and two-hop replication (no datacenter).

Compares pure on-path distribution against replication restricted to
1-hop / 2-hop neighbor mirror sets, MaxLinkLoad = 0.4. The paper's
shape: one-hop offload already buys up to ~5x over on-path-only, and
two hops add little beyond one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)

FIG14_POLICIES = (
    ("path-no-replicate", MirrorPolicy.none()),
    ("one-hop", MirrorPolicy.neighbors(hops=1)),
    ("two-hop", MirrorPolicy.neighbors(hops=2)),
)


@dataclass
class Fig14Row:
    """One topology's max load per local-offload policy."""

    topology: str
    max_loads: Dict[str, float]

    def one_hop_gain(self) -> float:
        return (self.max_loads["path-no-replicate"] /
                self.max_loads["one-hop"])

    def two_hop_extra_gain(self) -> float:
        """How much two-hop improves over one-hop (paper: little)."""
        return self.max_loads["one-hop"] / self.max_loads["two-hop"]


def run_fig14(topologies: Optional[Sequence[str]] = None,
              max_link_load: float = 0.4) -> List[Fig14Row]:
    """Evaluate local-offload policies per topology (no DC)."""
    rows = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name)
        loads = {}
        for label, policy in FIG14_POLICIES:
            result = ReplicationProblem(
                setup.state, mirror_policy=policy,
                max_link_load=max_link_load).solve()
            loads[label] = result.load_cost
        rows.append(Fig14Row(name, loads))
    return rows


def format_fig14(rows: Sequence[Fig14Row]) -> str:
    labels = [label for label, _ in FIG14_POLICIES]
    headers = ["Topology"] + labels + ["1-hop gain"]
    body = [[r.topology] + [f"{r.max_loads[l]:.3f}" for l in labels] +
            [f"{r.one_hop_gain():.2f}x"] for r in rows]
    return format_table(
        headers, body,
        title="Figure 14: local 1/2-hop replication "
              "(MaxLinkLoad=0.4, no DC)")
