"""Experiment runners — one per table/figure of the paper's evaluation.

Each ``run_*`` function returns structured rows; each ``format_*``
renders them as an aligned text table for the benchmark harness to
print. See DESIGN.md's experiment index and EXPERIMENTS.md for
paper-vs-measured comparisons.
"""

from repro.experiments.common import (
    TopologySetup,
    asymmetric_classes,
    evaluation_topologies,
    format_table,
    full_scale,
    quartiles,
    setup_topology,
)
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.fig10_emulation import (
    Fig10Result,
    format_fig10,
    run_fig10,
)
from repro.experiments.fig11_linkload import (
    Fig11Series,
    format_fig11,
    run_fig11,
)
from repro.experiments.fig12_dcgap import Fig12Row, format_fig12, run_fig12
from repro.experiments.fig13_architectures import (
    Fig13Row,
    format_fig13,
    run_fig13,
)
from repro.experiments.fig14_local import Fig14Row, format_fig14, run_fig14
from repro.experiments.fig15_variability import (
    Fig15Row,
    format_fig15,
    run_fig15,
)
from repro.experiments.parallel import (
    ParallelSweepRunner,
    run_scan_epoch_sweep,
)
from repro.experiments.fig16_17_asymmetry import (
    AsymmetryPoint,
    format_fig16,
    format_fig17,
    run_fig16_17,
)
from repro.experiments.fig18_beta import (
    Fig18Series,
    format_fig18,
    run_fig18,
)
from repro.experiments.fig19_imbalance import (
    Fig19Row,
    format_fig19,
    run_fig19,
)
from repro.experiments.ablations import (
    DCCapacitySeries,
    PlacementRow,
    format_dc_capacity,
    format_placement,
    run_dc_capacity_ablation,
    run_placement_ablation,
)
from repro.experiments.budget_sweep import (
    BudgetPoint,
    BudgetSweepSeries,
    format_budget_sweep,
    realized_link_loads,
    realized_node_loads,
    run_budget_sweep,
    sweep_to_json,
)
from repro.experiments.shard_gap import (
    ShardGapPoint,
    ShardGapSeries,
    format_shard_gap,
    run_shard_gap,
    shard_gap_to_json,
)
from repro.experiments.sketch_gap import (
    DEFAULT_WIDTHS,
    SketchGapPoint,
    SketchGapSeries,
    format_sketch_gap,
    realized_load_cost,
    run_sketch_gap,
    sketch_gap_to_json,
)
from repro.experiments.strategy_ablation import (
    StrategyRow,
    format_strategies,
    run_strategy_ablation,
)
from repro.experiments.extensions_ablations import (
    CombinedRow,
    FailureRow,
    format_failures,
    run_failure_ablation,
    LinkCostRow,
    NIPSRow,
    SlackRow,
    format_combined,
    format_link_cost,
    format_nips,
    format_slack,
    run_combined_ablation,
    run_link_cost_ablation,
    run_nips_ablation,
    run_slack_ablation,
)

__all__ = [
    "AsymmetryPoint",
    "BudgetPoint",
    "BudgetSweepSeries",
    "CombinedRow",
    "format_budget_sweep",
    "realized_link_loads",
    "realized_node_loads",
    "run_budget_sweep",
    "sweep_to_json",
    "DCCapacitySeries",
    "LinkCostRow",
    "FailureRow",
    "NIPSRow",
    "SlackRow",
    "format_failures",
    "run_failure_ablation",
    "ShardGapPoint",
    "ShardGapSeries",
    "format_shard_gap",
    "run_shard_gap",
    "shard_gap_to_json",
    "DEFAULT_WIDTHS",
    "SketchGapPoint",
    "SketchGapSeries",
    "format_sketch_gap",
    "realized_load_cost",
    "run_sketch_gap",
    "sketch_gap_to_json",
    "StrategyRow",
    "format_strategies",
    "run_strategy_ablation",
    "format_combined",
    "format_link_cost",
    "format_nips",
    "format_slack",
    "run_combined_ablation",
    "run_link_cost_ablation",
    "run_nips_ablation",
    "run_slack_ablation",
    "Fig10Result",
    "Fig11Series",
    "Fig12Row",
    "Fig13Row",
    "Fig14Row",
    "Fig15Row",
    "Fig18Series",
    "Fig19Row",
    "ParallelSweepRunner",
    "PlacementRow",
    "Table1Row",
    "TopologySetup",
    "asymmetric_classes",
    "evaluation_topologies",
    "format_dc_capacity",
    "format_fig10",
    "format_fig11",
    "format_fig12",
    "format_fig13",
    "format_fig14",
    "format_fig15",
    "format_fig16",
    "format_fig17",
    "format_fig18",
    "format_fig19",
    "format_placement",
    "format_table",
    "format_table1",
    "full_scale",
    "quartiles",
    "run_dc_capacity_ablation",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16_17",
    "run_fig18",
    "run_fig19",
    "run_placement_ablation",
    "run_scan_epoch_sweep",
    "run_table1",
    "setup_topology",
]
