"""Table 1 — time to compute the optimal solution per topology.

The paper reports CPLEX solve times for the replication and
aggregation formulations on eight PoP-level topologies (0.02s-1.59s).
We report the HiGHS solve time plus the model-build time separately so
the reproduction's overheads are visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.aggregation import AggregationProblem
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)


@dataclass
class Table1Row:
    """One topology's solve-time measurements."""

    topology: str
    num_pops: int
    replication_solve_s: float
    replication_build_s: float
    aggregation_solve_s: float
    aggregation_build_s: float


def run_table1(topologies: Optional[Sequence[str]] = None,
               dc_capacity_factor: float = 10.0,
               max_link_load: float = 0.4) -> List[Table1Row]:
    """Measure LP build+solve time for both formulations per topology."""
    rows = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        replication = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=max_link_load)
        start = time.perf_counter()
        # Table 1 measures the *cold* build per topology; each loop
        # iteration builds a fresh problem.  # repro-lint: allow[HYG001]
        replication.build_model()
        rep_build = time.perf_counter() - start
        rep_result = replication.solve()

        agg_setup = setup_topology(name)  # aggregation has no DC
        aggregation = AggregationProblem(agg_setup.state, beta=0.0)
        start = time.perf_counter()
        # Same deliberate cold build.  # repro-lint: allow[HYG001]
        aggregation.build_model()
        agg_build = time.perf_counter() - start
        agg_result = aggregation.solve()

        rows.append(Table1Row(
            topology=name,
            num_pops=setup.topology.num_nodes,  # base PoPs (no DC)
            replication_solve_s=rep_result.stats.solve_seconds,
            replication_build_s=rep_build,
            aggregation_solve_s=agg_result.stats.solve_seconds,
            aggregation_build_s=agg_build))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    return format_table(
        ["Topology", "#PoPs", "Repl solve (s)", "Repl build (s)",
         "Aggr solve (s)", "Aggr build (s)"],
        [[r.topology, r.num_pops,
          f"{r.replication_solve_s:.3f}", f"{r.replication_build_s:.3f}",
          f"{r.aggregation_solve_s:.3f}", f"{r.aggregation_build_s:.3f}"]
         for r in rows],
        title="Table 1: time to compute the optimal solution")
